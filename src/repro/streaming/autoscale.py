"""Elastic autoscaling control plane: policies, supervisor, shed tier.

The paper's timeliness claim (Sec 4.1) is that an AR backend must keep
overlay updates fresh under bursty, city-scale load — flash crowds and
diurnal mobility.  This module closes the loop over mechanisms the repo
already has: the metrics registry exposes live per-operator gauges, a
:class:`~repro.streaming.execution.ParallelCheckpoint` restores at any
parallelism, and the :class:`~repro.streaming.coordinator
.CheckpointCoordinator` finalizes consistent snapshots while data is in
flight.

Three layers, separable and separately tested:

1. **Policies** — pure decision functions (``decide(signals,
   evals_since_change) -> ScalingDecision``) with hysteresis bands,
   cooldown windows, and min/max parallelism clamps.  Table-tested in
   isolation; no executor needed.
2. **Autoscaler** — watches per-operator gauges in a
   :class:`~repro.util.metrics.MetricsRegistry` (``op.processed``,
   ``source.backlog``, ``sink.watermark_lag_s``), derives utilization
   and backlog-trend signals from *counter deltas on SimClock* — never
   wall-clock — and asks the policy for per-operator targets.
3. **ScalingSupervisor** — executes a rescale as a four-phase state
   machine, ``decide -> savepoint -> recompile -> restore``:
   stop-with-savepoint through the coordinator (a barrier-aligned
   checkpoint of the *running* job), a fresh physical plan from
   :func:`~repro.streaming.execution.compile_execution_graph` at the new
   widths, and a restore of the finalized checkpoint into it.  Chaos can
   kill the supervisor at any phase (``rescale_crash`` via
   :meth:`~repro.chaos.injector.FaultInjector.before_rescale`); recovery
   restores the *old* executor from the last finalized checkpoint and
   retries the rescale, so a crash mid-rescale never loses or duplicates
   committed output.

When even the maximum parallelism cannot keep up, the supervisor falls
back to the **load-shedding tier** (the render compositor's shedding
generalized to operators): a deterministic content-hash filter at the
source admission boundary (see ``ParallelExecutor.set_shedding``), with
shed counts flowing through the existing drop-accounting path and
rewinding with checkpoints, so exactly-once for committed records holds
under shedding too.

Everything runs on :class:`~repro.util.clock.SimClock` (the coordinator
advances it one second per macro cycle) and every signal is a
deterministic count, so an autoscaled run — rescales included — is
bit-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..util.clock import SimClock
from ..util.errors import (
    BrokerDown,
    ChaosError,
    CheckpointError,
    ConfigError,
    CoordinatorDown,
    OperatorCrash,
)
from ..util.metrics import MetricsRegistry
from .coordinator import CheckpointCoordinator, CheckpointStore
from .execution import ParallelCheckpoint, ParallelExecutor
from .graph import JobGraph
from .shuffle import DEFAULT_KEY_GROUPS

__all__ = [
    "OperatorSignals",
    "ScalingDecision",
    "ScalingPolicy",
    "UtilizationTargetPolicy",
    "GradientPolicy",
    "SchedulePolicy",
    "ShedPolicy",
    "Autoscaler",
    "RescaleEvent",
    "AutoscaleReport",
    "ScalingSupervisor",
    "run_autoscaled",
]


# -- signals and decisions ---------------------------------------------------


@dataclass(frozen=True)
class OperatorSignals:
    """One operator's view of the world at one evaluation point.

    utilization      per-subtask processing rate over rated capacity
                     (1.0 = every subtask saturated); from ``op.processed``
                     gauge deltas, so it is exact and deterministic
    backlog          elements arrived (by sim-time) but not yet pulled,
                     attributed to every operator of the job (they all
                     feel the same ingest pressure)
    backlog_trend    backlog delta since the previous evaluation
    watermark_lag_s  event-time lag between source frontier and the
                     job's sinks (freshness of results)
    eval_index       ordinal of this evaluation (SchedulePolicy keys
                     planned rescales on it)
    """

    operator: str
    parallelism: int
    utilization: float
    backlog: float = 0.0
    backlog_trend: float = 0.0
    watermark_lag_s: float = 0.0
    eval_index: int = 0


@dataclass(frozen=True)
class ScalingDecision:
    """A policy's verdict for one operator at one evaluation."""

    operator: str
    current: int
    target: int
    reason: str

    @property
    def is_change(self) -> bool:
        return self.target != self.current


# -- policies ----------------------------------------------------------------


class ScalingPolicy:
    """Base contract: a *pure* per-operator decision function.

    ``decide(signals, evals_since_change)`` maps one operator's signals
    to a target parallelism.  ``evals_since_change`` is how many
    evaluations have passed since this operator's width last changed;
    policies hold while it is below ``cooldown`` so a rescale's replay
    transient cannot trigger a second rescale (flapping).  Policies hold
    no mutable state — the :class:`Autoscaler` owns the bookkeeping —
    which is what makes them table-testable.
    """

    min_parallelism: int = 1
    max_parallelism: int = 8
    cooldown: int = 2

    def _validate_bounds(self) -> None:
        if self.min_parallelism < 1:
            raise ConfigError("min_parallelism must be >= 1")
        if self.max_parallelism < self.min_parallelism:
            raise ConfigError("max_parallelism must be >= min_parallelism")
        if self.cooldown < 0:
            raise ConfigError("cooldown must be >= 0")

    def clamp(self, parallelism: int) -> int:
        return max(self.min_parallelism,
                   min(self.max_parallelism, int(parallelism)))

    def hold(self, signals: OperatorSignals, reason: str) -> ScalingDecision:
        return ScalingDecision(signals.operator, signals.parallelism,
                               signals.parallelism, reason)

    def decide(self, signals: OperatorSignals,
               evals_since_change: int) -> ScalingDecision:
        raise NotImplementedError


@dataclass(frozen=True)
class UtilizationTargetPolicy(ScalingPolicy):
    """Scale so per-subtask utilization lands near ``target``.

    The hysteresis band ``[low, high]`` brackets the target: utilization
    inside the band is a no-op, above ``high`` scales up to
    ``ceil(p * u / target)``, below ``low`` scales down toward the same
    formula (never below ``p - 1`` per step is *not* enforced — the
    formula may halve in one step; the cooldown window is what prevents
    oscillation).  All decisions clamp to ``[min_parallelism,
    max_parallelism]``.
    """

    target: float = 0.65
    high: float = 0.85
    low: float = 0.35
    min_parallelism: int = 1
    max_parallelism: int = 8
    cooldown: int = 2

    def __post_init__(self) -> None:
        self._validate_bounds()
        if not 0.0 < self.low < self.target < self.high:
            raise ConfigError(
                f"need 0 < low < target < high, got low={self.low} "
                f"target={self.target} high={self.high}")

    def decide(self, signals: OperatorSignals,
               evals_since_change: int) -> ScalingDecision:
        if evals_since_change < self.cooldown:
            return self.hold(signals, "cooldown")
        p = signals.parallelism
        u = signals.utilization
        if u > self.high:
            want = self.clamp(math.ceil(p * u / self.target))
            if want > p:
                return ScalingDecision(
                    signals.operator, p, want,
                    f"utilization {u:.2f} above high band {self.high}")
            return self.hold(signals, "at-max")
        if u < self.low:
            want = self.clamp(min(p - 1,
                                  math.ceil(p * max(u, 1e-9) / self.target)))
            if want < p:
                return ScalingDecision(
                    signals.operator, p, want,
                    f"utilization {u:.2f} below low band {self.low}")
            return self.hold(signals, "at-min")
        return self.hold(signals, "in-band")


@dataclass(frozen=True)
class GradientPolicy:
    """Scale on the *sign* of the backlog gradient.

    A growing backlog (trend above ``up_slope`` elements/eval) means the
    job is underprovisioned regardless of utilization — multiply width
    by ``factor``.  A shrinking backlog (trend below ``down_slope``,
    which must be negative) means headroom — divide by ``factor``.
    Trends inside the deadband hold.  Useful when rated capacity is
    unknown: the gradient needs no capacity model, only arrival counts.
    """

    up_slope: float = 1.0
    down_slope: float = -1.0
    factor: float = 2.0
    min_parallelism: int = 1
    max_parallelism: int = 8
    cooldown: int = 2

    # reuse the clamp/hold/validation helpers without dataclass
    # inheritance (frozen dataclass bases with defaults fight field
    # ordering); the contract is duck-typed on `decide`.
    _validate_bounds = ScalingPolicy._validate_bounds
    clamp = ScalingPolicy.clamp
    hold = ScalingPolicy.hold

    def __post_init__(self) -> None:
        self._validate_bounds()
        if self.up_slope <= 0 or self.down_slope >= 0:
            raise ConfigError(
                "need up_slope > 0 and down_slope < 0 (a deadband "
                f"around zero), got {self.up_slope}/{self.down_slope}")
        if self.factor <= 1.0:
            raise ConfigError("factor must be > 1")

    def decide(self, signals: OperatorSignals,
               evals_since_change: int) -> ScalingDecision:
        if evals_since_change < self.cooldown:
            return self.hold(signals, "cooldown")
        p = signals.parallelism
        trend = signals.backlog_trend
        if trend > self.up_slope:
            want = self.clamp(math.ceil(p * self.factor))
            if want > p:
                return ScalingDecision(
                    signals.operator, p, want,
                    f"backlog growing ({trend:+.1f}/eval)")
            return self.hold(signals, "at-max")
        if trend < self.down_slope:
            want = self.clamp(math.floor(p / self.factor))
            if want < p:
                return ScalingDecision(
                    signals.operator, p, want,
                    f"backlog shrinking ({trend:+.1f}/eval)")
            return self.hold(signals, "at-min")
        return self.hold(signals, "steady")


@dataclass(frozen=True)
class SchedulePolicy:
    """Planned rescales at fixed evaluation indices.

    ``schedule`` maps ``eval_index -> {operator: target}``.  Signals are
    ignored; this is the deterministic policy the chaos sweeps use so a
    rescale happens at a known point regardless of load.  An empty
    schedule is the fixed-parallelism baseline.
    """

    schedule: dict[int, dict[str, int]] = field(default_factory=dict)
    min_parallelism: int = 1
    max_parallelism: int = 1024
    cooldown: int = 0

    _validate_bounds = ScalingPolicy._validate_bounds
    clamp = ScalingPolicy.clamp
    hold = ScalingPolicy.hold

    def __post_init__(self) -> None:
        self._validate_bounds()
        for step, targets in self.schedule.items():
            for op, width in targets.items():
                if width < 1:
                    raise ConfigError(
                        f"scheduled width {width} for {op!r} at eval "
                        f"{step} must be >= 1")

    def decide(self, signals: OperatorSignals,
               evals_since_change: int) -> ScalingDecision:
        want = self.schedule.get(signals.eval_index, {}).get(
            signals.operator)
        if want is None or want == signals.parallelism:
            return self.hold(signals, "no-op")
        return ScalingDecision(signals.operator, signals.parallelism,
                               self.clamp(want),
                               f"scheduled at eval {signals.eval_index}")


@dataclass(frozen=True)
class ShedPolicy:
    """Latency-SLO load-shedding tier configuration.

    When the projected drain time of a source's backlog (backlog over
    current intake capacity, in sim-seconds) exceeds ``trigger_wait_s``,
    the supervisor activates deterministic shedding on that source with
    ratio ``keep/mod``; it deactivates below ``release_wait_s``
    (hysteresis, so the tier does not flap at the boundary).  The tier
    is the last resort for when rescaling cannot keep up — policies
    should set ``trigger_wait_s`` well above the latency SLO so scaling
    gets the first shot.
    """

    trigger_wait_s: float
    release_wait_s: float
    keep: int = 1
    mod: int = 2

    def __post_init__(self) -> None:
        if self.trigger_wait_s < self.release_wait_s:
            raise ConfigError("trigger_wait_s must be >= release_wait_s")
        if self.mod < 1 or not 0 <= self.keep <= self.mod:
            raise ConfigError(
                f"shed ratio needs 0 <= keep <= mod, got "
                f"{self.keep}/{self.mod}")


# -- the autoscaler (registry watcher) ---------------------------------------


class Autoscaler:
    """Derives :class:`OperatorSignals` from registry gauges and asks
    the policy for per-operator targets.

    Watches the *live* gauges the executor now refreshes every macro
    cycle (``op.processed`` per operator, ``source.backlog`` published
    by the supervisor, ``sink.watermark_lag_s``).  Utilization is the
    per-subtask processed-delta per cycle over ``rated_capacity``
    (elements one subtask is rated to process per cycle — the
    supervisor passes its source batch size).  All state the policy
    contract externalizes lives here: previous counter readings, the
    per-operator evaluations-since-change counters, and the decision
    log.
    """

    def __init__(self, policy: Any, *, rated_capacity: float) -> None:
        if rated_capacity <= 0:
            raise ConfigError("rated_capacity must be > 0")
        self.policy = policy
        self.rated_capacity = float(rated_capacity)
        self.decisions: list[ScalingDecision] = []
        self._prev_processed: dict[str, float] = {}
        self._prev_backlog: dict[str, float] = {}
        self._evals_since_change: dict[str, int] = {}
        self._eval_index = 0

    @staticmethod
    def _read(registry: MetricsRegistry, name: str, **labels: Any) -> float:
        value = registry.gauge(name, **labels).value
        return 0.0 if math.isnan(value) else float(value)

    def collect(self, registry: MetricsRegistry,
                parallelism: dict[str, int], operators: list[str],
                cycles: float, backlog: float,
                watermark_lag_s: float) -> dict[str, OperatorSignals]:
        """Build one evaluation's signals from the registry.

        ``cycles`` is how many macro cycles elapsed since the previous
        evaluation (the denominator of the processing rate);
        ``backlog`` is the job-wide ingest backlog the supervisor
        computed from its arrival model.
        """
        signals: dict[str, OperatorSignals] = {}
        for op in operators:
            processed = self._read(registry, "op.processed", op=op)
            prev = self._prev_processed.get(op, processed)
            # A restore rewinds the processed gauge below the previous
            # reading; clamp the delta at zero (replay is not new work).
            delta = max(0.0, processed - prev)
            self._prev_processed[op] = processed
            p = max(1, parallelism.get(op, 1))
            rate = delta / max(1.0, cycles)
            utilization = rate / (p * self.rated_capacity)
            trend = backlog - self._prev_backlog.get(op, backlog)
            self._prev_backlog[op] = backlog
            signals[op] = OperatorSignals(
                operator=op, parallelism=p, utilization=utilization,
                backlog=backlog, backlog_trend=trend,
                watermark_lag_s=watermark_lag_s,
                eval_index=self._eval_index)
        return signals

    def evaluate(self, signals: dict[str, OperatorSignals]
                 ) -> dict[str, int]:
        """One evaluation: run the policy per operator, return the
        changed targets (empty dict = no rescale wanted)."""
        cooldown = int(getattr(self.policy, "cooldown", 0))
        targets: dict[str, int] = {}
        for op in sorted(signals):
            sig = signals[op]
            since = self._evals_since_change.get(op, cooldown)
            decision = self.policy.decide(sig, since)
            self.decisions.append(decision)
            if decision.is_change:
                targets[op] = decision.target
                self._evals_since_change[op] = 0
            else:
                self._evals_since_change[op] = since + 1
        self._eval_index += 1
        return targets


# -- the scaling supervisor --------------------------------------------------


@dataclass
class RescaleEvent:
    """One completed live rescale."""

    eval_index: int
    savepoint_id: int
    old: dict[str, int]
    new: dict[str, int]
    #: source elements re-read because the savepoint cut preceded the
    #: old executor's read positions (the rescale's replay cost)
    replayed: int
    #: phase-crash retries this rescale needed before completing
    attempts: int = 1


@dataclass
class AutoscaleReport:
    """What happened during an autoscaled run."""

    sink_values: dict[str, list[Any]]
    rescales: list[RescaleEvent] = field(default_factory=list)
    rescale_attempts: int = 0
    rescale_crashes: int = 0
    crashes: int = 0
    coordinator_crashes: int = 0
    broker_faults: int = 0
    checkpoints: int = 0
    aborted: int = 0
    full_restores: int = 0
    replayed_total: int = 0
    shed_total: int = 0
    dropped_overflow: int = 0
    #: (eval_index, {node: width}) after every completed rescale
    parallelism_trace: list[tuple[int, dict[str, int]]] = \
        field(default_factory=list)
    #: per committed result: sim-time commit latency vs event time
    latencies: list[float] = field(default_factory=list)
    slo_s: float | None = None
    trace: list = field(default_factory=list)

    @property
    def failures(self) -> int:
        return (self.crashes + self.coordinator_crashes
                + self.broker_faults)

    @property
    def slo_compliance(self) -> float:
        """Fraction of committed results within the latency SLO."""
        if self.slo_s is None or not self.latencies:
            return 1.0
        within = sum(1 for lat in self.latencies if lat <= self.slo_s)
        return within / len(self.latencies)

    def latency_p99(self) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), 99))

    @property
    def max_width(self) -> int:
        widths = [max(p.values()) for _, p in self.parallelism_trace]
        return max(widths) if widths else 0


class ScalingSupervisor:
    """Drives an autoscaled job: run, observe, decide, rescale, shed.

    The rescale state machine (each phase is a chaos crash site):

    - **decide**   — the policy produced changed targets
    - **savepoint**— stop-with-savepoint: wait out any in-progress
      checkpoint, trigger a fresh barrier cut, drive drain cycles until
      the coordinator finalizes it
    - **recompile**— build a fresh :class:`ParallelExecutor` (a new
      physical plan) at the new widths from the same logical job
    - **restore**  — restore the finalized savepoint into the new plan
      and hand the coordinator over (listeners survive, checkpoint ids
      stay monotonic through the shared store)

    A crash at any phase recovers the *old* executor from the last
    finalized checkpoint and re-attempts the rescale at the next
    evaluation — pending targets are sticky, so "rescale completes
    under chaos" is a liveness property the elasticity gate asserts.
    All load signals are deterministic: arrival counts come from a
    sorted timestamp array against the coordinator's SimClock (one
    second per macro cycle), never from wall time.
    """

    def __init__(self, job: JobGraph, policy: Any, *,
                 parallelism: int | dict[str, int] = 1,
                 injector: Any = None,
                 batch_mode: bool = True, chaining: bool = True,
                 columnar: bool | None = None,
                 num_key_groups: int = DEFAULT_KEY_GROUPS,
                 source_batch: int = 32, step_cycles: int = 2,
                 interval_cycles: int = 4,
                 heartbeat_timeout_s: float = 60.0,
                 metrics: MetricsRegistry | None = None,
                 slo_s: float | None = None,
                 shed_policy: ShedPolicy | None = None,
                 store: CheckpointStore | None = None,
                 max_failures: int = 1000,
                 savepoint_max_cycles: int = 256) -> None:
        self.job = job
        self.policy = policy
        self.injector = injector
        self.batch_mode = batch_mode
        self.chaining = chaining
        self.columnar = columnar
        self.num_key_groups = num_key_groups
        self.source_batch = source_batch
        self.step_cycles = step_cycles
        self.interval_cycles = interval_cycles
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.shed_policy = shed_policy
        self.max_failures = max_failures
        self.savepoint_max_cycles = savepoint_max_cycles
        self.store = store if store is not None else CheckpointStore()
        self.clock = SimClock()
        self.operators = list(job.operators)
        self.current: dict[str, int] = self._normalize(parallelism)
        self.executor = self._build_executor(self.current)
        self.coordinator = self._build_coordinator()
        self.autoscaler = Autoscaler(policy,
                                     rated_capacity=float(source_batch))
        self.report = AutoscaleReport(sink_values={}, slo_s=slo_s)
        self._prior = {"finalized": 0, "aborted": 0}
        self._pending_targets: dict[str, int] | None = None
        self._rescale_attempts_current = 0
        self._committed_seen: dict[str, int] = {}
        self._shedding_active: set[str] = set()
        #: per-source sorted arrival timestamps (built lazily; the
        #: deterministic arrival model behind backlog and shed control)
        self._arrivals: dict[str, np.ndarray] = {}
        self._initial = self.executor.checkpoint()

    # -- plan construction ---------------------------------------------------

    def _normalize(self, parallelism: int | dict[str, int]
                   ) -> dict[str, int]:
        """One explicit width per node (operators and sources)."""
        names = self.operators + list(self.job.sources)
        if isinstance(parallelism, int):
            widths = {name: parallelism for name in names}
        else:
            default = parallelism.get("default", 1)
            widths = {name: int(parallelism.get(name, default))
                      for name in names}
        return self._clamp_widths(widths)

    def _clamp_widths(self, widths: dict[str, int]) -> dict[str, int]:
        """Quantize per-operator targets to valid *scaling units*.

        Keyed operators (shuffle boundaries) rescale independently,
        clamped to the key-group count.  Sources follow the widest
        requested operator, bounded by their split count — ingest
        capacity is what rescaling exists to change.  Non-keyed
        operators (the chainable head) always follow the source width:
        a head narrower than its source would merge the source
        subtasks' output in coarse per-subtask chunks, and a watermark
        generator downstream of that merge can see event time leap
        beyond the allowed lateness — dropping records a uniform plan
        keeps.  Keeping head and source equal keeps them chained (1:1
        edges, no merge), which is the engine's tested equivalence
        contract.
        """
        out = dict(widths)
        width = max((out[name] for name in self.operators), default=1)
        for name, spec in self.job.sources.items():
            splits = spec.splits if spec.splits is not None else 1
            out[name] = max(1, min(width, splits))
        source_width = max((out[name] for name in self.job.sources),
                           default=1)
        for name, op in self.job.operators.items():
            if op.requires_shuffle:
                out[name] = min(out[name], self.num_key_groups)
            else:
                out[name] = source_width
        return out

    def _build_executor(self, widths: dict[str, int]) -> ParallelExecutor:
        return ParallelExecutor(
            self.job, dict(widths), num_key_groups=self.num_key_groups,
            batch_mode=self.batch_mode, chaining=self.chaining,
            columnar=self.columnar, injector=self.injector,
            metrics=self.metrics, transactional_sinks=True)

    def _build_coordinator(self) -> CheckpointCoordinator:
        return CheckpointCoordinator(
            self.executor, store=self.store, clock=self.clock,
            interval_cycles=self.interval_cycles,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            injector=self.injector, metrics=self.metrics)

    # -- deterministic load model --------------------------------------------

    def _arrival_array(self, name: str) -> np.ndarray:
        arr = self._arrivals.get(name)
        if arr is None:
            ts = self.executor.source_item_timestamps(name)
            arr = np.sort(np.asarray(ts, dtype=np.float64))
            self._arrivals[name] = arr
        return arr

    def _backlog(self) -> float:
        """Items whose event time has passed on the sim clock but which
        no source subtask has pulled yet.  Element timestamps double as
        arrival times: the clock advances one second per macro cycle,
        so intake capacity is ``source_parallelism * source_batch``
        items per second — precisely the knob rescaling turns."""
        now = self.clock.now
        total = 0.0
        for name in self.job.sources:
            arr = self._arrival_array(name)
            arrived = float(np.searchsorted(arr, now, side="right"))
            pulled = float(self.executor.source_pulled(name))
            backlog = max(0.0, arrived - pulled)
            self.metrics.gauge("source.backlog", source=name).set(backlog)
            total += backlog
        return total

    def _watermark_lag(self) -> float:
        lag = 0.0
        for name in self.job.sinks:
            value = self.metrics.gauge("sink.watermark_lag_s",
                                       sink=name).value
            if not math.isnan(value):
                lag = max(lag, value)
        return lag

    def _observe_latencies(self) -> None:
        """Commit-time latency per newly committed sink element:
        sim-clock now minus the element's event timestamp (clamped at
        zero — results cannot be early, only late)."""
        now = self.clock.now
        for name, sink in self.executor.sinks.items():
            committed = sink.values
            seen = self._committed_seen.get(name, 0)
            if len(committed) < seen:  # restore truncated visibility
                self._committed_seen[name] = len(committed)
                continue
            for element in sink.committed[seen:]:
                self.report.latencies.append(
                    max(0.0, now - element.timestamp))
            self._committed_seen[name] = len(committed)

    def _shed_control(self) -> None:
        """The latency-SLO shed tier: activate deterministic shedding
        when the projected backlog drain time exceeds the trigger,
        release below the hysteresis floor."""
        policy = self.shed_policy
        if policy is None:
            return
        for name in self.job.sources:
            backlog = self.metrics.gauge("source.backlog",
                                         source=name).value
            if math.isnan(backlog):
                continue
            p_src = self.current.get(name, 1)
            capacity = max(1.0, p_src * float(self.source_batch))
            projected_wait = backlog / capacity
            if name not in self._shedding_active \
                    and projected_wait > policy.trigger_wait_s:
                self.executor.set_shedding(name, policy.keep, policy.mod)
                self._shedding_active.add(name)
            elif name in self._shedding_active \
                    and projected_wait < policy.release_wait_s:
                self.executor.clear_shedding(name)
                self._shedding_active.discard(name)

    # -- recovery ------------------------------------------------------------

    def _check_budget(self) -> None:
        if self.report.failures > self.max_failures:
            raise ChaosError(
                f"gave up after {self.report.failures} failures; the "
                "fault plan appears to re-fire indefinitely")

    def _full_equiv(self, checkpoint: ParallelCheckpoint) -> int:
        total = 0
        for source, splits in \
                self.executor.source_positions_snapshot().items():
            recorded = checkpoint.source_positions.get(source, {})
            for split, pos in splits.items():
                total += max(0, pos - recorded.get(split, 0))
        return total

    def _recover(self) -> None:
        """Full restore of the current executor from the last finalized
        checkpoint (or the initial snapshot)."""
        checkpoint = self.store.latest()
        target = checkpoint if checkpoint is not None else self._initial
        replayed = self._full_equiv(target)
        while True:
            try:
                self.executor.restore(target)
            except BrokerDown:
                self.report.broker_faults += 1
                self._check_budget()
                continue
            break
        self.coordinator.monitor.reset_all()
        self.report.full_restores += 1
        self.report.replayed_total += replayed
        # shedding activation state follows the restored plans
        self._shedding_active = {
            name for name in self.executor.shed_state_snapshot()["plans"]}

    def _rebuild_coordinator(self) -> None:
        self.coordinator.abandon_pending()
        self._prior["finalized"] += self.coordinator.finalized
        self._prior["aborted"] += self.coordinator.aborted
        listeners = list(self.coordinator.listeners)
        self.coordinator = self._build_coordinator()
        self.coordinator.listeners.extend(listeners)

    # -- the rescale state machine -------------------------------------------

    def _phase(self, phase: str) -> None:
        if self.injector is not None:
            self.injector.before_rescale(phase)

    def _drive_savepoint(self) -> ParallelCheckpoint:
        """Stop-with-savepoint: finish any checkpoint already being
        assembled, then cut a fresh one and drain until it finalizes.
        The job does not stop — drain cycles move in-flight data and
        barriers without pulling new source input, exactly like
        ``final_checkpoint`` but mid-job."""
        budget = self.savepoint_max_cycles
        while self.coordinator.in_progress is not None and budget > 0:
            self.executor.drain_for_coordinator()
            self.coordinator.on_cycle_end(self.executor)
            budget -= 1
        if self.coordinator.in_progress is not None:
            raise CheckpointError(
                "savepoint blocked: a prior checkpoint never finalized")
        cid = self.coordinator.trigger(self.executor)
        while self.coordinator.in_progress is not None and budget > 0:
            self.executor.drain_for_coordinator()
            self.coordinator.on_cycle_end(self.executor)
            budget -= 1
        savepoint = self.store.latest()
        if savepoint is None or savepoint.checkpoint_id != cid:
            raise CheckpointError(
                f"stop-with-savepoint {cid} did not finalize within "
                f"{self.savepoint_max_cycles} drain cycles")
        return savepoint

    def _rescale(self, targets: dict[str, int]) -> RescaleEvent | None:
        old = dict(self.current)
        new = self._clamp_widths({**old, **targets})
        if new == old:
            return None

        self._phase("decide")
        self._phase("savepoint")
        savepoint = self._drive_savepoint()

        self._phase("recompile")
        replacement = self._build_executor(new)

        self._phase("restore")
        while True:
            try:
                stats = replacement.restore(savepoint)
            except BrokerDown:
                self.report.broker_faults += 1
                self._check_budget()
                continue
            break

        # adopt: the old executor (and its coordinator incarnation) are
        # gone; listeners and the store carry over, ids stay monotonic
        self._prior["finalized"] += self.coordinator.finalized
        self._prior["aborted"] += self.coordinator.aborted
        listeners = list(self.coordinator.listeners)
        self.executor = replacement
        self.current = new
        self.coordinator = self._build_coordinator()
        self.coordinator.listeners.extend(listeners)
        self._retire_subtask_gauges(old, new)
        self.report.replayed_total += stats["replayed_elements"]
        # committed visibility was rewound to the savepoint's projected
        # output; re-sync the latency cursor so nothing double-counts
        for name, sink in self.executor.sinks.items():
            self._committed_seen[name] = min(
                self._committed_seen.get(name, 0), len(sink.values))
        self._shedding_active = {
            name for name in replacement.shed_state_snapshot()["plans"]}
        return RescaleEvent(
            eval_index=self.autoscaler._eval_index,
            savepoint_id=savepoint.checkpoint_id,
            old=old, new=new,
            replayed=stats["replayed_elements"],
            attempts=self._rescale_attempts_current)

    def _retire_subtask_gauges(self, old: dict[str, int],
                               new: dict[str, int]) -> None:
        """Recompile keeps one MetricsRegistry across executors, so
        per-subtask gauges of clones a narrowing rescale removed (e.g.
        ``subtask.processed{op=window_sum[3]}`` after 4→2) would linger
        at their last value in every later snapshot and skew skew/
        utilization reads.  Retire exactly the removed indices; widened
        operators re-instantiate lazily on the next publish."""
        per_subtask = ("subtask.processed", "op.batch_size",
                       "checkpoint.alignment_cycles", "checkpoint.unaligned")
        for name, old_w in old.items():
            for idx in range(new.get(name, old_w), old_w):
                for family in per_subtask:
                    self.metrics.retire(family, op=f"{name}[{idx}]")

    def _try_rescale(self, targets: dict[str, int]) -> None:
        self.report.rescale_attempts += 1
        self._rescale_attempts_current += 1
        try:
            event = self._rescale(targets)
        except OperatorCrash:
            # supervisor or subtask died mid-rescale: the old executor
            # recovers from the last finalized checkpoint and the
            # targets stay pending for the next evaluation
            self.report.rescale_crashes += 1
            self.report.crashes += 1
            self._check_budget()
            self._pending_targets = dict(targets)
            self._recover()
        except CoordinatorDown:
            self.report.rescale_crashes += 1
            self.report.coordinator_crashes += 1
            self._check_budget()
            self._pending_targets = dict(targets)
            self._rebuild_coordinator()
        except BrokerDown:
            self.report.broker_faults += 1
            self._check_budget()
            self._pending_targets = dict(targets)
            self._recover()
        else:
            self._pending_targets = None
            self._rescale_attempts_current = 0
            if event is not None:
                self.report.rescales.append(event)
                self.report.parallelism_trace.append(
                    (event.eval_index, dict(self.current)))
                self.metrics.counter("autoscaler.rescales").inc()
                self.metrics.gauge("autoscaler.width").set(
                    max(self.current.values()))

    # -- the control loop ----------------------------------------------------

    def _evaluate(self) -> dict[str, int]:
        if self._pending_targets is not None:
            return dict(self._pending_targets)
        backlog = self._backlog()
        lag = self._watermark_lag()
        signals = self.autoscaler.collect(
            self.metrics, self.current, self.operators,
            cycles=float(self.step_cycles), backlog=backlog,
            watermark_lag_s=lag)
        return self.autoscaler.evaluate(signals)

    def run(self) -> AutoscaleReport:
        """Run the job to completion under the control loop."""
        report = self.report
        self._shed_control_initial()
        while True:
            try:
                self.executor.run(source_batch=self.source_batch,
                                  max_cycles=self.step_cycles)
                if self.executor.done:
                    self.coordinator.final_checkpoint(self.executor)
                    self._observe_latencies()
                    break
            except OperatorCrash:
                report.crashes += 1
                self._check_budget()
                self._recover()
                continue
            except CoordinatorDown:
                report.coordinator_crashes += 1
                self._check_budget()
                self._rebuild_coordinator()
                continue
            except BrokerDown:
                report.broker_faults += 1
                self._check_budget()
                self._recover()
                continue
            dead = self.coordinator.dead_subtasks()
            if dead:
                report.crashes += 1
                self._check_budget()
                self._recover()
                continue
            self._observe_latencies()
            targets = self._evaluate()
            self._shed_control()
            if targets:
                self._try_rescale(targets)
        report.checkpoints = (self._prior["finalized"]
                              + self.coordinator.finalized)
        report.aborted = self._prior["aborted"] + self.coordinator.aborted
        report.shed_total = self.executor.shed_elements
        report.dropped_overflow = self.executor.dropped_overflow
        report.sink_values = {name: list(sink.values)
                              for name, sink in self.executor.sinks.items()}
        if self.injector is not None:
            report.trace = list(self.injector.trace)
        return report

    def _shed_control_initial(self) -> None:
        """A trigger threshold of zero means "shed from the start" —
        the deterministic activation the shed equivalence suite needs
        (both the golden and the chaos run shed the same set from
        element zero)."""
        policy = self.shed_policy
        if policy is None or policy.trigger_wait_s > 0:
            return
        for name in self.job.sources:
            self.executor.set_shedding(name, policy.keep, policy.mod)
            self._shedding_active.add(name)
        # checkpoint zero must carry the plans so any restore — initial
        # included — re-activates them
        self._initial = self.executor.checkpoint()


def run_autoscaled(job: JobGraph, policy: Any,
                   injector: Any = None, **kwargs: Any) -> AutoscaleReport:
    """Convenience wrapper: build a :class:`ScalingSupervisor` and run.

    ``kwargs`` pass through to the supervisor constructor; the common
    shape is ``run_autoscaled(job, SchedulePolicy({...}), injector,
    parallelism=1, batch_mode=True, chaining=True)``.
    """
    supervisor = ScalingSupervisor(job, policy, injector=injector, **kwargs)
    return supervisor.run()
