"""Unit tests: heavy hitters, exponential mechanism, timestamp seek."""

import numpy as np
import pytest

from repro.analytics import HeavyHitters
from repro.eventlog import Consumer, LogCluster, Producer, TopicConfig
from repro.privacy import (
    BudgetAccountant,
    exponential_mechanism,
    private_top_k,
)
from repro.util.errors import BudgetExhausted, ConfigError, PrivacyError
from repro.util.rng import make_rng


class TestHeavyHitters:
    def test_finds_zipf_head(self):
        rng = make_rng(0)
        hh = HeavyHitters(k=5, epsilon=0.005)
        ranks = np.arange(1, 201, dtype=float)
        weights = ranks ** -1.5
        weights /= weights.sum()
        for _ in range(20_000):
            hh.add(f"key-{int(rng.choice(200, p=weights)):03d}")
        top_keys = [key for key, _est in hh.top()]
        # The true head (key-000..key-004 by construction) dominates.
        assert "key-000" in top_keys
        assert "key-001" in top_keys
        assert len(set(top_keys) & {f"key-{i:03d}" for i in range(8)}) >= 4

    def test_estimates_never_underestimate(self):
        hh = HeavyHitters(k=3, epsilon=0.01)
        for _ in range(50):
            hh.add("a")
        for _ in range(10):
            hh.add("b")
        assert hh.estimate("a") >= 50
        assert hh.estimate("b") >= 10

    def test_top_sorted_descending(self):
        hh = HeavyHitters(k=5)
        for key, n in (("x", 30), ("y", 20), ("z", 10)):
            for _ in range(n):
                hh.add(key)
        top = hh.top()
        estimates = [est for _k, est in top]
        assert estimates == sorted(estimates, reverse=True)
        assert top[0][0] == "x"

    def test_memory_bounded(self):
        hh = HeavyHitters(k=10, epsilon=0.01)
        for i in range(5_000):
            hh.add(f"unique-{i}")
        assert len(hh.top()) == 10
        assert hh.memory_cells < 10_000  # far below key cardinality

    def test_weighted_add(self):
        hh = HeavyHitters(k=2)
        hh.add("big", count=100)
        hh.add("small")
        assert hh.top()[0][0] == "big"

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigError):
            HeavyHitters(k=0)


class TestExponentialMechanism:
    def test_prefers_high_scores(self):
        rng = make_rng(1)
        scores = {"best": 100.0, "mid": 50.0, "worst": 0.0}
        picks = [exponential_mechanism(scores, epsilon=1.0, rng=rng)
                 for _ in range(300)]
        assert picks.count("best") > 250

    def test_low_epsilon_near_uniform(self):
        rng = make_rng(2)
        scores = {"a": 100.0, "b": 0.0}
        picks = [exponential_mechanism(scores, epsilon=0.001, rng=rng)
                 for _ in range(1000)]
        share = picks.count("a") / 1000
        assert 0.4 < share < 0.6

    def test_charges_accountant(self):
        rng = make_rng(3)
        accountant = BudgetAccountant(epsilon=0.15)
        exponential_mechanism({"a": 1.0}, 0.1, rng, accountant=accountant)
        with pytest.raises(BudgetExhausted):
            exponential_mechanism({"a": 1.0}, 0.1, rng,
                                  accountant=accountant)

    def test_empty_candidates_rejected(self):
        with pytest.raises(PrivacyError):
            exponential_mechanism({}, 1.0, make_rng(0))

    def test_private_top_k_high_epsilon_matches_truth(self):
        rng = make_rng(4)
        scores = {f"k{i}": float(100 - i * 10) for i in range(10)}
        picks = private_top_k(scores, k=3, epsilon=50.0, rng=rng)
        assert set(picks) == {"k0", "k1", "k2"}

    def test_private_top_k_no_duplicates(self):
        rng = make_rng(5)
        scores = {f"k{i}": float(i) for i in range(20)}
        picks = private_top_k(scores, k=10, epsilon=0.1, rng=rng)
        assert len(picks) == len(set(picks)) == 10

    def test_private_top_k_utility_degrades_with_epsilon(self):
        scores = {f"k{i}": float(100 - i) for i in range(50)}
        truth = {f"k{i}" for i in range(10)}

        def accuracy(epsilon, seed):
            rng = make_rng(seed)
            hits = 0
            for trial in range(30):
                picks = private_top_k(scores, k=10, epsilon=epsilon,
                                      rng=rng)
                hits += len(set(picks) & truth)
            return hits / (30 * 10)

        assert accuracy(100.0, 6) > accuracy(0.01, 7) + 0.2

    def test_k_too_large_rejected(self):
        with pytest.raises(PrivacyError):
            private_top_k({"a": 1.0}, k=2, epsilon=1.0, rng=make_rng(0))


class TestSeekToTimestamp:
    def _cluster(self, n=50, partitions=3):
        cluster = LogCluster(1)
        cluster.create_topic(TopicConfig("t", partitions=partitions,
                                         replication=1))
        producer = Producer(cluster)
        for i in range(n):
            producer.send("t", {"i": i}, key=f"k{i % 7}",
                          timestamp=float(i))
        return cluster

    def test_seek_reads_only_newer(self):
        cluster = self._cluster()
        consumer = Consumer(cluster, "t")
        consumer.seek_to_timestamp(30.0)
        rows = consumer.poll(max_records=100)
        assert rows
        assert all(r.timestamp >= 30.0 for r in rows)
        assert {r.value["i"] for r in rows} == set(range(30, 50))

    def test_seek_to_zero_reads_everything(self):
        cluster = self._cluster()
        consumer = Consumer(cluster, "t")
        consumer.poll(max_records=100)  # drain first
        consumer.seek_to_timestamp(0.0)
        assert len(consumer.poll(max_records=100)) == 50

    def test_seek_past_end_reads_nothing(self):
        cluster = self._cluster()
        consumer = Consumer(cluster, "t")
        consumer.seek_to_timestamp(1e9)
        assert consumer.poll() == []

    def test_seek_after_retention(self):
        cluster = LogCluster(1)
        cluster.create_topic(TopicConfig("t", partitions=1, replication=1,
                                         retention_seconds=20.0))
        producer = Producer(cluster)
        for i in range(50):
            producer.send("t", i, timestamp=float(i))
        cluster.run_retention(now=50.0)  # drops ts < 30
        consumer = Consumer(cluster, "t")
        consumer.seek_to_timestamp(10.0)  # before the retained range
        rows = consumer.poll(max_records=100)
        assert [r.value for r in rows] == list(range(30, 50))
