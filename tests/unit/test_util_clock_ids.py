"""Unit tests: SimClock, IdFactory, EventBus, metrics."""

import math

import pytest

from repro.util import (
    Counter,
    EventBus,
    IdFactory,
    MetricsRegistry,
    SimClock,
    Summary,
)
from repro.util.errors import ClockError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_advance_zero_allowed(self):
        clock = SimClock(3.0)
        assert clock.advance(0.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.9)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(5.0)
        assert clock.advance_to(5.0) == 5.0


class TestIdFactory:
    def test_sequential_per_namespace(self):
        factory = IdFactory()
        assert factory.next("task") == "task-0000"
        assert factory.next("task") == "task-0001"

    def test_namespaces_independent(self):
        factory = IdFactory()
        factory.next("a")
        assert factory.next("b") == "b-0000"

    def test_next_int(self):
        factory = IdFactory()
        assert factory.next_int("n") == 0
        assert factory.next_int("n") == 1

    def test_peek_does_not_consume(self):
        factory = IdFactory()
        assert factory.peek("x") == 0
        assert factory.peek("x") == 0
        factory.next("x")
        assert factory.peek("x") == 1


class TestEventBus:
    def test_publish_delivers_to_subscriber(self):
        bus = EventBus()
        got = []
        bus.subscribe("topic", got.append)
        delivered = bus.publish("topic", 42)
        assert got == [42]
        assert delivered == 1

    def test_publish_no_subscribers(self):
        assert EventBus().publish("nobody", 1) == 0

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        unsub = bus.subscribe("t", got.append)
        unsub()
        bus.publish("t", 1)
        assert got == []

    def test_unsubscribe_idempotent(self):
        bus = EventBus()
        unsub = bus.subscribe("t", lambda _x: None)
        unsub()
        unsub()  # must not raise

    def test_publish_count(self):
        bus = EventBus()
        bus.publish("t")
        bus.publish("t")
        assert bus.publish_count("t") == 2

    def test_handlers_called_in_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("t", lambda _x: order.append("first"))
        bus.subscribe("t", lambda _x: order.append("second"))
        bus.publish("t")
        assert order == ["first", "second"]


class TestMetrics:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_summary_statistics(self):
        summary = Summary()
        for value in [1.0, 2.0, 3.0, 4.0]:
            summary.observe(value)
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.percentile(50) == 2.5

    def test_summary_empty_is_nan(self):
        assert math.isnan(Summary().mean)

    def test_registry_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.summary("s") is registry.summary("s")

    def test_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.summary("s").observe(2.0)
        snap = registry.snapshot()
        assert snap["c"] == 3.0
        assert snap["g"] == 1.5
        assert snap["s.mean"] == 2.0
