"""Crowdsourced environment modelling (Section 3.2).

"Google Earth allows individuals to contribute digital 3D counterparts
of real constructions ... building a 3D environmental model on a global
scale in a crowdsourcing way.  Aggregating and compiling the redundant
fragmented data helps us to build a detailed and complete environmental
model."

Contributors submit noisy, sometimes-wrong box models of buildings
(position/extent errors, occasional gross outliers, wrong-building
mislabels).  :class:`CrowdModel` aggregates per-building contributions
with a component-wise median — robust to the outlier fraction — and
reports model error against ground truth, the quantity the crowdsourcing
claim rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import SensorError

__all__ = ["BoxModel", "Contribution", "CrowdModel"]


@dataclass(frozen=True)
class BoxModel:
    """An axis-aligned building model: centre + full extents, metres."""

    cx: float
    cy: float
    width: float
    depth: float
    height: float

    def __post_init__(self) -> None:
        if min(self.width, self.depth, self.height) <= 0:
            raise SensorError("box extents must be positive")

    def error_to(self, other: "BoxModel") -> float:
        """Mean absolute parameter error (metres) to another model."""
        a = np.array([self.cx, self.cy, self.width, self.depth,
                      self.height])
        b = np.array([other.cx, other.cy, other.width, other.depth,
                      other.height])
        return float(np.abs(a - b).mean())


@dataclass(frozen=True)
class Contribution:
    """One contributor's submitted model for one building."""

    building_id: str
    contributor: str
    model: BoxModel


class CrowdModel:
    """Aggregates contributions into consensus building models."""

    def __init__(self) -> None:
        self._contributions: dict[str, list[Contribution]] = {}

    def submit(self, contribution: Contribution) -> None:
        self._contributions.setdefault(contribution.building_id,
                                       []).append(contribution)

    def contribution_count(self, building_id: str) -> int:
        return len(self._contributions.get(building_id, ()))

    def buildings(self) -> list[str]:
        return sorted(self._contributions)

    def consensus(self, building_id: str) -> BoxModel:
        """Component-wise median of all contributions for a building."""
        rows = self._contributions.get(building_id)
        if not rows:
            raise SensorError(f"no contributions for {building_id!r}")
        stack = np.array([[c.model.cx, c.model.cy, c.model.width,
                           c.model.depth, c.model.height] for c in rows])
        med = np.median(stack, axis=0)
        return BoxModel(cx=float(med[0]), cy=float(med[1]),
                        width=float(max(med[2], 1e-6)),
                        depth=float(max(med[3], 1e-6)),
                        height=float(max(med[4], 1e-6)))

    @staticmethod
    def simulate_contributions(truth: BoxModel, n: int,
                               rng: np.random.Generator,
                               position_sigma: float = 2.0,
                               extent_sigma: float = 1.0,
                               outlier_rate: float = 0.1,
                               outlier_scale: float = 10.0,
                               ) -> list[BoxModel]:
        """Noisy contributions: Gaussian errors plus gross outliers."""
        if n < 1:
            raise SensorError("need at least one contribution")
        models = []
        for _ in range(n):
            gross = rng.random() < outlier_rate
            scale = outlier_scale if gross else 1.0
            models.append(BoxModel(
                cx=truth.cx + float(rng.normal(0, position_sigma * scale)),
                cy=truth.cy + float(rng.normal(0, position_sigma * scale)),
                width=max(0.5, truth.width
                          + float(rng.normal(0, extent_sigma * scale))),
                depth=max(0.5, truth.depth
                          + float(rng.normal(0, extent_sigma * scale))),
                height=max(0.5, truth.height
                           + float(rng.normal(0, extent_sigma * scale)))))
        return models
