"""Lightweight metric accumulators used across subsystems and benches.

Three primitives cover everything the experiments need:

- :class:`Counter` — monotonically increasing event counts.
- :class:`Gauge` — a last-value-wins sample.
- :class:`Summary` — streaming mean/min/max/percentiles over samples
  (stores samples; our runs are bounded so this is simpler and exact).

A :class:`MetricsRegistry` namespaces them so one object threads through
a pipeline.  The registry is *typed*: a metric family name belongs to
exactly one kind for the registry's lifetime — re-using ``"x"`` as both
a counter and a gauge raises :class:`~repro.util.errors.MetricsError`
instead of letting ``snapshot()`` silently overwrite one with the other.
Families take optional labels (``registry.counter("op.processed",
op="double")``), rendered Prometheus-style as
``op.processed{op=double}`` in snapshots.
"""

from __future__ import annotations

import math

import numpy as np

from .errors import MetricsError

__all__ = ["Counter", "Gauge", "Summary", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase")
        self.value += amount


class Gauge:
    """Last observed value.

    A gauge that was never ``set()`` reads as NaN but is *skipped* by
    :meth:`MetricsRegistry.snapshot` — a registered-but-unset gauge used
    to leak ``nan`` into snapshots, which ``json.dumps`` serializes as
    an invalid bare ``NaN`` token.
    """

    def __init__(self) -> None:
        self.value: float = math.nan
        self.updated = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated = True

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge relative to its current value (0 if unset)."""
        base = self.value if self.updated else 0.0
        self.set(base + amount)


class Summary:
    """Exact summary statistics over observed samples.

    The sample list is converted to a numpy array lazily and the array
    is cached — repeated ``mean``/``total``/``percentile`` reads between
    observations no longer pay an O(n) list->array conversion each call.
    ``observe`` invalidates the cache.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._array: np.ndarray | None = None

    def observe(self, value: float) -> None:
        self._samples.append(float(value))
        self._array = None

    def observe_many(self, values) -> None:
        """Bulk observe — one C-level extend for a whole delivery batch
        (the columnar sink path records per-element lag samples without
        a per-element call)."""
        self._samples.extend(float(v) for v in values)
        self._array = None

    def reset(self) -> None:
        """Drop all observations (for reusing one Summary across runs)."""
        self._samples.clear()
        self._array = None

    def _as_array(self) -> np.ndarray:
        if self._array is None:
            self._array = np.asarray(self._samples, dtype=np.float64)
        return self._array

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return float(self._as_array().mean()) if self._samples else math.nan

    @property
    def minimum(self) -> float:
        # Through the cached array: min()/max() on the Python list would
        # rescan all samples on every read, turning hot-loop metric
        # reads back into O(n) work the cache exists to avoid.
        return float(self._as_array().min()) if self._samples else math.nan

    @property
    def maximum(self) -> float:
        return float(self._as_array().max()) if self._samples else math.nan

    @property
    def total(self) -> float:
        return float(self._as_array().sum()) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """q in [0, 100]."""
        if not self._samples:
            return math.nan
        return float(np.percentile(self._as_array(), q))

    def samples(self) -> list[float]:
        return list(self._samples)


def _render_key(name: str, labels: dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Typed namespace of counters/gauges/summaries, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._summaries: dict[str, Summary] = {}
        # family name -> kind; one kind per name for the registry's life
        self._kinds: dict[str, str] = {}

    def _key(self, kind: str, name: str, labels: dict[str, object]) -> str:
        registered = self._kinds.setdefault(name, kind)
        if registered != kind:
            raise MetricsError(
                f"metric {name!r} is already registered as a {registered}; "
                f"cannot re-use the name as a {kind}")
        return _render_key(name, labels)

    def counter(self, name: str, **labels: object) -> Counter:
        key = self._key("counter", name, labels)
        return self._counters.setdefault(key, Counter())

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = self._key("gauge", name, labels)
        return self._gauges.setdefault(key, Gauge())

    def summary(self, name: str, **labels: object) -> Summary:
        key = self._key("summary", name, labels)
        return self._summaries.setdefault(key, Summary())

    def retire(self, name: str, **labels: object) -> bool:
        """Drop one metric *instance* (family + exact label set) from
        the registry, so it stops appearing in snapshots.

        This exists for topology changes: after a live rescale narrows
        an operator, the per-subtask instances of removed clones (e.g.
        ``subtask.processed{op=window_sum[3]}`` after a 4→2 rescale)
        would otherwise linger at their last value and skew any
        consumer averaging over snapshot entries.  The family's kind
        registration stays — the name can be re-instantiated later (a
        scale back up).  Returns ``True`` if an instance was removed.
        """
        kind = self._kinds.get(name)
        if kind is None:
            return False
        store = {"counter": self._counters, "gauge": self._gauges,
                 "summary": self._summaries}[kind]
        return store.pop(_render_key(name, labels), None) is not None

    def snapshot(self) -> dict[str, float]:
        """Flat name->value view.

        Counters always appear; gauges only once ``set()`` (a never-set
        gauge would inject NaN and break JSON export); summaries report
        ``.count`` always and ``.mean``/``.p50``/``.p99`` once they hold
        at least one sample.
        """
        out: dict[str, float] = {}
        out.update({k: float(c.value) for k, c in self._counters.items()})
        out.update({k: g.value for k, g in self._gauges.items()
                    if g.updated})
        for key, s in self._summaries.items():
            out[f"{key}.count"] = float(s.count)
            if s.count:
                out[f"{key}.mean"] = s.mean
                out[f"{key}.p50"] = s.percentile(50.0)
                out[f"{key}.p99"] = s.percentile(99.0)
        return out
