"""Unit tests: implicit source union in the executor; offload fallback
when tiers fail."""

from repro.offload import GreedyLatency, OffloadPlanner, vision_pipeline
from repro.simnet import LINK_PRESETS, NodeSpec, Topology
from repro.streaming import Element, Executor, JobBuilder
from repro.util.rng import make_rng
from repro.vision.tracker import StageProfile


class TestSourceUnion:
    def test_two_sources_into_one_operator(self):
        """Two edges into a single-input operator behave as a union."""
        a = [Element(value=("a", i), timestamp=float(i)) for i in range(3)]
        b = [Element(value=("b", i), timestamp=float(i)) for i in range(4)]
        builder = JobBuilder("union")
        op = builder.source("a", a).map(lambda v: v, name="merge")
        builder._add_edge("b", "merge", None)
        builder.source("b", b)
        op.sink("out")
        sinks = Executor(builder.build()).run()
        assert len(sinks["out"]) == 7
        tags = {v[0] for v in sinks["out"].values}
        assert tags == {"a", "b"}

    def test_union_preserves_all_elements(self):
        streams = {f"s{i}": [Element(value=i * 100 + j, timestamp=float(j))
                             for j in range(5)] for i in range(3)}
        builder = JobBuilder("union3")
        first = None
        for name, elements in sorted(streams.items()):
            handle = builder.source(name, elements)
            if first is None:
                first = handle.map(lambda v: v, name="merge")
            else:
                builder._add_edge(name, "merge", None)
        first.sink("out")
        sinks = Executor(builder.build()).run()
        assert sorted(sinks["out"].values) == sorted(
            v.value for vs in streams.values() for v in vs)


class TestOffloadFailover:
    def _planner(self):
        topology = Topology(make_rng(0))
        topology.add_node(NodeSpec("device", cpu_hz=2e9, role="device"))
        topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
        topology.add_node(NodeSpec("cloud", cpu_hz=64e9, role="cloud"))
        topology.add_link("device", "edge", LINK_PRESETS["wifi"])
        topology.add_link("edge", "cloud", LINK_PRESETS["wan"])
        return topology, OffloadPlanner(topology, "device")

    def _profile(self):
        return StageProfile(pixels=1280 * 720, features=800, matches=300,
                            ransac_iterations=200)

    def test_greedy_uses_edge_when_up(self):
        _topology, planner = self._planner()
        decision = GreedyLatency().decide(planner,
                                          vision_pipeline(self._profile()))
        assert decision.outcome.tier_node in ("edge", "cloud")

    def test_greedy_falls_back_to_local_when_all_tiers_down(self):
        topology, planner = self._planner()
        topology.fail_node("edge")
        topology.fail_node("cloud")
        decision = GreedyLatency().decide(planner,
                                          vision_pipeline(self._profile()))
        assert decision.outcome.is_local

    def test_greedy_recovers_when_tier_returns(self):
        topology, planner = self._planner()
        topology.fail_node("edge")
        topology.fail_node("cloud")
        pipeline = vision_pipeline(self._profile())
        assert GreedyLatency().decide(planner, pipeline).outcome.is_local
        topology.recover_node("edge")
        assert not GreedyLatency().decide(planner,
                                          pipeline).outcome.is_local

    def test_edge_down_routes_to_cloud_fails_gracefully(self):
        """Edge down also severs the only path to the cloud — greedy
        must notice the cloud is unreachable, not crash."""
        topology, planner = self._planner()
        topology.fail_node("edge")
        decision = GreedyLatency().decide(planner,
                                          vision_pipeline(self._profile()))
        assert decision.outcome.is_local
