"""Ablation A6: the shared edge under contention.

Section 4.1 leans on the cloud's "theoretically infinite computing
capability" — but a real edge tier is a finite queue.  We admit N
concurrent AR users, each submitting offloaded frame work to an 8-core
edge, and measure the latency knee: below saturation the time cap holds;
past it, queueing delay destroys exactly the guarantee offloading was
meant to buy.
"""

import numpy as np

from repro.simnet import ProcessingQueue, QueuedTask, Simulator
from repro.util.rng import make_rng

from tableprint import print_table

EDGE_CORES = 8
FRAME_SERVICE_S = 0.012  # remote compute + jitter, from the T1 pricing
FPS = 30.0
DURATION_S = 10.0
USERS = [4, 8, 16, 21, 24, 32]
DEADLINE_S = 1.0 / 30.0


def run_experiment():
    rows = []
    for n_users in USERS:
        rng = make_rng(91)
        sim = Simulator()
        queue = ProcessingQueue(sim, cores=EDGE_CORES, name="edge")
        for user in range(n_users):
            offset = float(rng.uniform(0, 1.0 / FPS))
            t = offset
            while t < DURATION_S:
                service = float(rng.gamma(4.0, FRAME_SERVICE_S / 4.0))
                sim.schedule_at(t, lambda s=service, u=user: queue.submit(
                    QueuedTask(name=f"u{u}", service_time=s)))
                t += 1.0 / FPS
        sim.run()
        sojourns = np.array([task.sojourn_time
                             for task in queue.completed])
        utilization = (n_users * FPS * FRAME_SERVICE_S) / EDGE_CORES
        rows.append([n_users, utilization,
                     float(np.mean(sojourns) * 1000),
                     float(np.percentile(sojourns, 95) * 1000),
                     float(np.mean(sojourns > DEADLINE_S))])
    return rows


def bench_a6_edge_contention(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A6  ablation: shared edge under contention "
        f"({EDGE_CORES} cores, {FRAME_SERVICE_S * 1000:.0f} ms/frame, "
        f"{FPS:.0f} fps/user)",
        ["users", "offered load / capacity", "mean sojourn ms",
         "p95 sojourn ms", "deadline miss rate"],
        rows,
        note="the 'fixed time cap' of Sec 4.1 holds only below the "
             "saturation knee (~22 users here); past it queueing delay "
             "grows without bound")
    meany = [r[2] for r in rows]
    misses = [r[4] for r in rows]
    # Below saturation, the edge adds almost no queueing delay.
    light = rows[0]
    assert light[1] < 0.5
    assert light[2] < FRAME_SERVICE_S * 1000 * 1.5
    assert light[4] < 0.02  # only service-time tail, no queueing
    # Past the knee, sojourn and misses explode.
    heavy = rows[-1]
    assert heavy[1] > 1.0
    assert heavy[2] > 5 * light[2]
    assert heavy[4] > 0.5
    # Monotone degradation with load (0.5 ms sampling tolerance).
    assert all(b >= a - 0.5 for a, b in zip(meany, meany[1:]))
    assert all(b >= a - 0.02 for a, b in zip(misses, misses[1:]))
