"""Coordinated-checkpoint chaos: exactly-once under in-flight snapshots.

The invariant, stronger than :mod:`test_parallel_chaos`'s: with
checkpoints taken *while data is in flight* (barrier alignment, 2PC
sinks) and recovery that may be *regional* (only the failed subtask's
failover region restarts), any seeded schedule of subtask crashes,
mid-snapshot crashes, coordinator crashes, fail-silent stalls and
network faults (delay / duplicate / reorder / partition on channels)
must yield transactional-sink output equal to the fault-free run — no
element lost, none exposed twice.

Crash-only schedules replay deterministically, so raw sink order is
compared.  Network faults and stalls legitimately shift *when* windows
fire (permuting cross-subtask interleave at a merge sink), so those
sweeps compare :func:`~repro.chaos.harness.canonical_sinks` — exact on
values and multiplicities, forgiving of interleave.

A couple of fixed-schedule smokes stay unmarked for tier 1; the sweeps
are ``chaos``-marked and run via ``make chaos-parallel``.
"""

import pytest

from repro.chaos import (
    SITE_CHANNEL,
    SITE_COORDINATOR,
    SITE_OPERATOR,
    SITE_STALL,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    canonical_sinks,
    fault_free_sinks,
    reference_events,
    reference_job,
    reference_operator_names,
    run_coordinated,
    two_region_job,
)
from repro.eventlog.broker import LogCluster, TopicConfig
from repro.streaming import JobBuilder, SchedulePolicy, ScalingSupervisor, ShedPolicy
from repro.streaming.txn_sink import TransactionalLogSink

MODES = ((False, False), (True, False), (True, True))
SOURCE_BATCH = 16


def _run(build, plan, *, parallelism=2, exact=True, batch_mode=True,
         chaining=True, **kwargs):
    golden = fault_free_sinks(build, parallelism=parallelism,
                              source_batch=SOURCE_BATCH,
                              batch_mode=batch_mode, chaining=chaining)
    injector = FaultInjector(plan) if plan is not None else None
    report = run_coordinated(build(), injector, parallelism=parallelism,
                             source_batch=SOURCE_BATCH,
                             batch_mode=batch_mode, chaining=chaining,
                             **kwargs)
    if plan is not None:
        # network faults and short stalls fire without raising, so the
        # injector trace — not report.failures — is the fired predicate
        assert report.trace, f"schedule {plan.name} never fired"
    if exact:
        assert report.sink_values == golden, (
            f"coordinated recovery diverged (plan="
            f"{plan.name if plan else 'none'}, parallelism={parallelism})")
    else:
        assert canonical_sinks(report.sink_values) \
            == canonical_sinks(golden), (
                f"exactly-once violated (plan="
                f"{plan.name if plan else 'none'}, "
                f"parallelism={parallelism})")
    return report


class TestCoordinatedSmoke:
    """Unmarked: the coordinated machinery stays inside tier 1."""

    def test_no_faults_all_modes(self):
        events = reference_events(seed=3, n=200)
        for batch_mode, chaining in MODES:
            report = _run(lambda: reference_job(events), None,
                          batch_mode=batch_mode, chaining=chaining,
                          interval_cycles=2)
            assert report.checkpoints >= 1

    def test_subtask_and_coordinator_crash(self):
        events = reference_events(seed=3, n=200)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=40,
                      target="window_sum[1]"),
            FaultSpec("coordinator_crash", SITE_COORDINATOR, at=1),
        ), name="coordinated-smoke")
        report = _run(lambda: reference_job(events), plan,
                      interval_cycles=2)
        assert report.crashes == 1
        assert report.coordinator_crashes == 1
        assert report.aborted >= 1

    def test_regional_recovery_replays_less(self):
        # the two-region plan: a crash in pipeline A must not rewind
        # pipeline B, and must replay strictly less than a full restart
        def build():
            return two_region_job(reference_events(seed=11, n=200),
                                  reference_events(seed=13, n=200))

        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=150,
                      target="window_a"),
        ), name="regional-smoke")
        report = _run(build, plan, interval_cycles=2)
        assert report.regional_restores == 1
        assert report.full_restores == 0
        assert report.replayed_total < report.replayed_full_equiv


@pytest.mark.chaos
class TestCoordinatedCrashSweeps:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_crash_schedules(self, seed):
        events = reference_events(seed=seed % 3, n=240)
        plan = FaultPlan.random(
            seed + 700, horizon=70,
            operators=reference_operator_names(), crashes=2,
            torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0,
            barrier_crashes=1, coordinator_crashes=1,
            name=f"coordinated-{seed}")
        _run(lambda: reference_job(events), plan, interval_cycles=2)

    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_all_parallelisms_and_modes(self, parallelism):
        events = reference_events(seed=7, n=240)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=19,
                      target="window_sum"),
            FaultSpec("barrier_crash", "streaming.barrier", at=1,
                      target="double"),
            FaultSpec("coordinator_crash", SITE_COORDINATOR, at=2),
        ), name=f"modes-p{parallelism}")
        for batch_mode, chaining in MODES:
            _run(lambda: reference_job(events), plan,
                 parallelism=parallelism, batch_mode=batch_mode,
                 chaining=chaining, interval_cycles=2)


@pytest.mark.chaos
class TestNetworkFaultSweeps:
    @pytest.mark.parametrize("seed", range(6))
    def test_channel_faults_masked(self, seed):
        # delay / duplicate / reorder / partition on physical channels:
        # the reliable-transport layer masks them, exactly-once holds
        events = reference_events(seed=seed % 3, n=240)
        plan = FaultPlan.random(
            seed + 900, horizon=60,
            operators=reference_operator_names(), crashes=0,
            torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0,
            channel_faults=4, name=f"net-{seed}")
        _run(lambda: reference_job(events), plan, exact=False,
             interval_cycles=2)

    @pytest.mark.parametrize("seed", range(4))
    def test_crashes_and_network_together(self, seed):
        events = reference_events(seed=seed % 2, n=240)
        plan = FaultPlan.random(
            seed + 1100, horizon=60,
            operators=reference_operator_names(), crashes=1,
            torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0,
            channel_faults=3, coordinator_crashes=1,
            name=f"net-crash-{seed}")
        _run(lambda: reference_job(events), plan, exact=False,
             interval_cycles=2)

    def test_unaligned_checkpoints_under_partition(self):
        # a partitioned channel stalls alignment past the escape hatch:
        # the snapshot goes unaligned, spilling in-flight items — and
        # output must still be exactly-once
        events = reference_events(seed=4, n=240)
        plan = FaultPlan(specs=(
            FaultSpec("channel_partition", SITE_CHANNEL, at=8, count=2,
                      param=3),
            FaultSpec("operator_crash", SITE_OPERATOR, at=140,
                      target="window_sum"),
        ), name="unaligned")
        _run(lambda: reference_job(events), plan, exact=False,
             interval_cycles=2, unaligned_after=2)


@pytest.mark.chaos
class TestFailureDetector:
    def test_stalled_subtask_detected_and_recovered(self):
        # fail-silent: the subtask neither drains nor heartbeats; only
        # the deadline detector can notice, and recovery must still be
        # exactly-once
        events = reference_events(seed=6, n=240)
        plan = FaultPlan(specs=(
            FaultSpec("subtask_stall", SITE_STALL, at=6, count=12,
                      target="window_sum[0]"),
        ), name="stall")
        report = _run(lambda: reference_job(events), plan, exact=False,
                      interval_cycles=2, heartbeat_timeout_s=4.0)
        assert report.dead_detected >= 1

    @pytest.mark.parametrize("seed", range(3))
    def test_stall_sweeps(self, seed):
        events = reference_events(seed=seed, n=240)
        # the stall counter ticks once per macro cycle per subtask, so
        # the horizon must sit inside the run's ~15-cycle span
        plan = FaultPlan.random(
            seed + 1300, horizon=12,
            operators=reference_operator_names(), crashes=0,
            torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0,
            stalls=1, name=f"stall-{seed}")
        _run(lambda: reference_job(events), plan, exact=False,
             interval_cycles=2, heartbeat_timeout_s=4.0)


@pytest.mark.chaos
class TestRegionalRecoverySweeps:
    @pytest.mark.parametrize("seed", range(4))
    def test_regional_beats_full_restart(self, seed):
        def build():
            return two_region_job(
                reference_events(seed=seed * 2 + 1, n=200),
                reference_events(seed=seed * 2 + 2, n=200))

        # at=70: inside every subtask's per-identity item count (each of
        # the 2 subtasks sees ~100 of the 200 source elements)
        target = ("window_a", "window_b", "double_a", "shift_b")[seed % 4]
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=70,
                      target=target),
        ), name=f"regional-{seed}")
        # canonical compare: the surviving region is *not* rewound, so
        # its subtasks' merge interleave at the sink may shift relative
        # to the fault-free run — content stays exactly-once
        report = _run(build, plan, exact=False, interval_cycles=2)
        assert report.regional_restores >= 1
        assert report.replayed_total < report.replayed_full_equiv

    def test_log_cut_makes_connected_plan_regional(self):
        # the reference plan is one component, but declaring the edge
        # into the keyed window replayable cuts it into two regions
        events = reference_events(seed=8, n=240)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=160,
                      target="window_sum"),
        ), name="log-cut")
        golden = fault_free_sinks(lambda: reference_job(events),
                                  parallelism=2, source_batch=SOURCE_BATCH)
        injector = FaultInjector(plan)
        report = run_coordinated(
            reference_job(events), injector, parallelism=2,
            source_batch=SOURCE_BATCH, interval_cycles=2,
            replayable={("by_key", "window_sum")})
        # the cut region has no source to rewind, so recovery falls
        # back to a full restore — but correctness must hold either way
        assert canonical_sinks(report.sink_values) == canonical_sinks(golden)


SHED = ShedPolicy(trigger_wait_s=0.0, release_wait_s=0.0, keep=2, mod=3)


def _shed_run(plan, *, seed=7, n=400, schedule=None, **kwargs):
    """A coordinated run with always-on deterministic shedding (the
    trigger threshold of zero activates the tier from element zero, so
    the golden and the chaos run shed the identical subset)."""
    events = reference_events(seed=seed, n=n, keys=4)
    injector = FaultInjector(plan) if plan is not None else None
    supervisor = ScalingSupervisor(
        reference_job(events, splits=4),
        SchedulePolicy(schedule or {}), injector=injector,
        parallelism=1, source_batch=32, shed_policy=SHED, **kwargs)
    return supervisor.run()


class TestShedExactlyOnceSmoke:
    """Unmarked: the shed tier's accounting stays inside tier 1."""

    def test_shed_plus_committed_accounts_for_every_element(self):
        # passthrough job: every admitted element reaches the sink, so
        # committed + shed must partition the input exactly, and the
        # shed set never leaks into the transactional sink
        events = reference_events(seed=5, n=300, keys=4)
        total = len(events)
        builder = JobBuilder("shed-passthrough")
        (builder.source("events", events, splits=4)
                .map(lambda v: v, name="ident")
                .sink("out"))
        supervisor = ScalingSupervisor(
            builder.build(), SchedulePolicy({}), parallelism=1,
            source_batch=32, shed_policy=SHED)
        report = supervisor.run()
        committed = len(report.sink_values["out"])
        assert report.shed_total > 0
        assert committed + report.shed_total == total
        # shed elements flow through the shared drop-accounting path
        assert report.dropped_overflow >= report.shed_total


@pytest.mark.chaos
class TestShedExactlyOnceUnderChaos:
    """Shedding must preserve exactly-once for *committed* records:
    shed elements appear only in drop accounting, never partially in a
    transactional sink — across crashes, coordinator loss and rescales
    (checkpoints carry the shed plans and counts; restores rewind
    them)."""

    def _golden(self, seed=7, n=400):
        report = _shed_run(None, seed=seed, n=n)
        return canonical_sinks(report.sink_values), report.shed_total

    @pytest.mark.parametrize("seed", range(4))
    def test_crash_schedules_shed_identically(self, seed):
        golden, golden_shed = self._golden(seed=seed % 3)
        plan = FaultPlan.random(
            seed + 2100, horizon=60,
            operators=reference_operator_names(), crashes=2,
            torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0,
            coordinator_crashes=1, name=f"shed-{seed}")
        report = _shed_run(plan, seed=seed % 3)
        assert canonical_sinks(report.sink_values) == golden
        assert report.shed_total == golden_shed

    def test_shedding_survives_a_live_rescale(self):
        golden, golden_shed = self._golden()
        plan = FaultPlan(specs=(
            FaultSpec("rescale_crash", "streaming.rescale", at=0,
                      target="restore"),
        ), name="shed-rescale")
        report = _shed_run(plan, schedule={1: {"window_sum": 2}})
        assert len(report.rescales) == 1
        assert canonical_sinks(report.sink_values) == golden
        assert report.shed_total == golden_shed


@pytest.mark.chaos
class TestTransactionalLogMirror:
    def test_exactly_once_into_the_log_across_coordinator_crashes(self):
        events = reference_events(seed=12, n=240)
        golden = fault_free_sinks(lambda: reference_job(events),
                                  parallelism=2, source_batch=SOURCE_BATCH)
        cluster = LogCluster(num_brokers=3)
        cluster.create_topic(TopicConfig("mirror", partitions=2,
                                         replication=2))
        mirror = TransactionalLogSink(cluster, "mirror", "out")

        def wire(coordinator):
            mirror.fence()
            coordinator.listeners.append(
                lambda cid, sink, committed:
                    mirror.on_checkpoint_committed(cid, committed))

        plan = FaultPlan(specs=(
            FaultSpec("coordinator_crash", SITE_COORDINATOR, at=1),
            FaultSpec("operator_crash", SITE_OPERATOR, at=60,
                      target="window_sum"),
        ), name="log-mirror")
        injector = FaultInjector(plan)
        report = run_coordinated(reference_job(events), injector,
                                 parallelism=2, source_batch=SOURCE_BATCH,
                                 interval_cycles=2, on_coordinator=wire)
        assert report.coordinator_crashes == 1 and report.crashes == 1
        assert report.sink_values == golden
        logged = []
        for p in range(cluster.partition_count("mirror")):
            for _offset, record in cluster.read("mirror", p, 0,
                                                max_records=100_000):
                logged.append(record.value)
        expected = sorted(repr(v) for v in golden["out"])
        assert sorted(repr(v) for v in logged) == expected
