"""Resilient offload execution: timeouts, dropouts, breakers, fallback."""

import pytest

from repro.chaos import SITE_OFFLOAD, FaultInjector, FaultPlan, FaultSpec
from repro.offload import (
    AlwaysRemote,
    GreedyLatency,
    OffloadPlanner,
    OffloadRunner,
    vision_pipeline,
)
from repro.offload.tasks import StageProfile
from repro.simnet.network import LINK_PRESETS
from repro.simnet.topology import NodeSpec, Topology
from repro.util.clock import SimClock
from repro.util.errors import OffloadError
from repro.util.rng import RngRegistry


def _planner(seed=0):
    rngs = RngRegistry(seed)
    topology = Topology(rngs.get("net"))
    topology.add_node(NodeSpec("device", cpu_hz=2e9, role="device"))
    topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
    topology.add_node(NodeSpec("cloud", cpu_hz=64e9, role="cloud"))
    topology.add_link("device", "edge", LINK_PRESETS["wifi"])
    topology.add_link("edge", "cloud", LINK_PRESETS["wan"])
    return OffloadPlanner(topology, "device")


def _pipeline():
    return vision_pipeline(StageProfile(pixels=320 * 240, features=200,
                                        matches=80, ransac_iterations=50))


def _injector(*specs):
    return FaultInjector(FaultPlan(specs=tuple(specs)))


class TestOffloadRunner:
    def test_clean_frame_runs_remote_undegraded(self):
        runner = OffloadRunner(_planner(), clock=SimClock())
        result = runner.execute(_pipeline())
        assert result.tier == "edge"
        assert not result.degraded
        assert [a.ok for a in result.attempts] == [True]

    def test_timeout_retries_same_tier_then_succeeds(self):
        injector = _injector(
            FaultSpec("task_timeout", SITE_OFFLOAD, at=0, target="edge"))
        runner = OffloadRunner(_planner(), injector=injector,
                               clock=SimClock())
        result = runner.execute(_pipeline())
        assert result.timeouts == 1
        assert result.tier == "edge"  # the bounded retry recovered it
        assert not result.degraded
        assert [(a.tier, a.ok) for a in result.attempts] == [
            ("edge", False), ("edge", True)]

    def test_persistent_timeouts_degrade_to_local(self):
        injector = _injector(
            FaultSpec("task_timeout", SITE_OFFLOAD, at=0, count=50))
        runner = OffloadRunner(_planner(), injector=injector,
                               clock=SimClock())
        result = runner.execute(_pipeline())
        assert result.tier == "device"
        assert result.degraded
        assert result.outcome.is_local
        assert runner.degraded_frames == 1

    def test_dropout_excludes_tier_immediately(self):
        injector = _injector(
            FaultSpec("tier_dropout", SITE_OFFLOAD, at=0, target="edge"))
        runner = OffloadRunner(_planner(), injector=injector,
                               clock=SimClock())
        result = runner.execute(_pipeline())
        assert result.dropouts == 1
        # One failed edge attempt, then the next-best plan (never edge).
        assert result.attempts[0].tier == "edge"
        assert all(a.tier != "edge" for a in result.attempts[1:])
        assert result.attempts[-1].ok

    def test_deadline_prices_slow_plans_as_timeouts(self):
        # 1 microsecond: no remote plan can land in time.
        runner = OffloadRunner(_planner(), deadline_s=1e-6,
                               clock=SimClock())
        result = runner.execute(_pipeline())
        assert result.tier == "device"
        assert result.degraded
        assert result.timeouts > 0

    def test_breaker_opens_after_repeated_failures(self):
        injector = _injector(
            FaultSpec("task_timeout", SITE_OFFLOAD, at=0, count=1000,
                      target="edge"))
        runner = OffloadRunner(_planner(), injector=injector,
                               clock=SimClock(), failure_threshold=3,
                               reset_timeout_s=1e9)
        for _ in range(3):
            runner.execute(_pipeline())
        assert runner.breaker("edge").state == "open"
        # With edge's breaker open it is not even attempted any more.
        result = runner.execute(_pipeline())
        assert all(a.tier != "edge" for a in result.attempts)

    def test_fixed_policy_on_dead_tier_degrades(self):
        planner = _planner()
        planner.topology.node("edge").up = False
        runner = OffloadRunner(planner, policy=AlwaysRemote("edge"),
                               clock=SimClock())
        result = runner.execute(_pipeline())
        assert result.tier == "device"
        assert not result.degraded  # no failed attempts, just no tier

    def test_clock_advances_by_execution_time(self):
        clock = SimClock()
        runner = OffloadRunner(_planner(), clock=clock)
        result = runner.execute(_pipeline())
        assert clock.now == pytest.approx(result.outcome.latency_s)

    def test_deterministic_attempt_sequence(self):
        def run():
            injector = _injector(
                FaultSpec("task_timeout", SITE_OFFLOAD, at=0, count=2),
                FaultSpec("tier_dropout", SITE_OFFLOAD, at=3))
            runner = OffloadRunner(_planner(), injector=injector,
                                   clock=SimClock())
            attempts = []
            for _ in range(3):
                result = runner.execute(_pipeline())
                attempts.extend((a.tier, a.ok) for a in result.attempts)
            return attempts, injector.trace_tuples()

        assert run() == run()

    def test_validation(self):
        with pytest.raises(OffloadError):
            OffloadRunner(_planner(), deadline_s=0.0)
        with pytest.raises(OffloadError):
            OffloadRunner(_planner(), max_attempts_per_tier=0)

    def test_policy_tiers_restored_after_execute(self):
        policy = GreedyLatency(tiers=["cloud"])
        runner = OffloadRunner(_planner(), policy=policy, clock=SimClock())
        runner.execute(_pipeline())
        assert policy.tiers == ["cloud"]
