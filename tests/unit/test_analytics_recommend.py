"""Unit tests: recommenders, context ranker, anomaly, correlation."""

import math

import pytest

from repro.analytics import (
    ContextRanker,
    EwmaDetector,
    Interaction,
    ItemCFRecommender,
    LiftMiner,
    PopularityRecommender,
    StreamingPearson,
    ThresholdDetector,
    hit_rate,
    precision_at_k,
)
from repro.util.errors import ConfigError
from repro.util.rng import make_rng


def _feed(recommender, rows):
    for user, item in rows:
        recommender.add(Interaction(user=user, item=item))


class TestPopularityRecommender:
    def test_ranks_by_popularity(self):
        rec = PopularityRecommender()
        _feed(rec, [("u1", "a"), ("u2", "a"), ("u3", "b")])
        items = [i for i, _s in rec.recommend("u9", k=2)]
        assert items == ["a", "b"]

    def test_excludes_seen(self):
        rec = PopularityRecommender()
        _feed(rec, [("u1", "a"), ("u2", "a"), ("u1", "b")])
        items = [i for i, _s in rec.recommend("u1", k=5)]
        assert "a" not in items and "b" not in items

    def test_include_seen_flag(self):
        rec = PopularityRecommender()
        _feed(rec, [("u1", "a")])
        items = [i for i, _s in rec.recommend("u1", k=5,
                                              exclude_seen=False)]
        assert items == ["a"]


class TestItemCF:
    def test_cooccurring_items_recommended(self):
        rec = ItemCFRecommender()
        # a and b co-occur for many users; u_new saw only a.
        for i in range(10):
            _feed(rec, [(f"u{i}", "a"), (f"u{i}", "b")])
        _feed(rec, [("u_new", "a")])
        items = [i for i, _s in rec.recommend("u_new", k=3)]
        assert items[0] == "b"

    def test_similarity_symmetric(self):
        rec = ItemCFRecommender()
        _feed(rec, [("u1", "a"), ("u1", "b"), ("u2", "a")])
        assert rec.similarity("a", "b") == pytest.approx(
            rec.similarity("b", "a"))

    def test_similarity_bounded(self):
        rec = ItemCFRecommender()
        for i in range(5):
            _feed(rec, [(f"u{i}", "a"), (f"u{i}", "b")])
        assert 0.0 < rec.similarity("a", "b") <= 1.0 + 1e-9

    def test_no_similarity_without_cooccurrence(self):
        rec = ItemCFRecommender()
        _feed(rec, [("u1", "a"), ("u2", "b")])
        assert rec.similarity("a", "b") == 0.0

    def test_personalization_differs_across_users(self):
        rec = ItemCFRecommender()
        for i in range(5):
            _feed(rec, [(f"x{i}", "a"), (f"x{i}", "a2")])
            _feed(rec, [(f"y{i}", "b"), (f"y{i}", "b2")])
        _feed(rec, [("ua", "a"), ("ub", "b")])
        rec_a = [i for i, _s in rec.recommend("ua", k=1)]
        rec_b = [i for i, _s in rec.recommend("ub", k=1)]
        assert rec_a == ["a2"]
        assert rec_b == ["b2"]

    def test_unknown_user_gets_nothing(self):
        rec = ItemCFRecommender()
        _feed(rec, [("u1", "a")])
        assert rec.recommend("stranger", k=5) == []


class TestContextRanker:
    def test_proximity_boosts_near_items(self):
        ranker = ContextRanker(proximity_scale=10.0)
        candidates = [("far", 1.0), ("near", 1.0)]
        ranked = ranker.rank("u", candidates,
                             distances={"far": 100.0, "near": 1.0})
        assert ranked[0][0] == "near"

    def test_gaze_boost_decays(self):
        ranker = ContextRanker(recency_tau=10.0)
        ranker.observe_gaze("u", "seen", timestamp=0.0)
        early = ranker.rank("u", [("seen", 1.0), ("other", 1.0)], now=1.0)
        late = ranker.rank("u", [("seen", 1.0), ("other", 1.0)], now=1000.0)
        assert early[0][0] == "seen"
        assert late[0][1] == pytest.approx(late[1][1], abs=1e-3)

    def test_k_truncates(self):
        ranker = ContextRanker()
        assert len(ranker.rank("u", [("a", 1.0), ("b", 2.0)], k=1)) == 1


class TestMetricsHelpers:
    def test_precision_at_k(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 2) == 0.5
        assert precision_at_k([], {"a"}, 3) == 0.0

    def test_precision_bad_k(self):
        with pytest.raises(ConfigError):
            precision_at_k(["a"], {"a"}, 0)

    def test_hit_rate(self):
        assert hit_rate(["a", "b"], {"b"}, 2) == 1.0
        assert hit_rate(["a", "b"], {"z"}, 2) == 0.0


class TestEwmaDetector:
    def test_flags_large_jump_after_warmup(self):
        detector = EwmaDetector(alpha=0.1, threshold=4.0, warmup=10)
        rng = make_rng(0)
        for i in range(100):
            detector.add(10.0 + float(rng.normal(0, 0.5)), timestamp=i)
        alarm = detector.add(30.0, timestamp=100)
        assert alarm is not None
        assert alarm.score > 4.0

    def test_quiet_during_warmup(self):
        detector = EwmaDetector(warmup=50)
        for i in range(20):
            detector.add(100.0 if i == 10 else 0.0, timestamp=i)
        assert detector.alarms == []

    def test_stable_signal_no_alarms(self):
        detector = EwmaDetector(alpha=0.05, threshold=4.0, warmup=10)
        rng = make_rng(1)
        for i in range(500):
            detector.add(float(rng.normal(5, 1)), timestamp=i)
        assert len(detector.alarms) <= 3  # ~4-sigma false-alarm budget

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigError):
            EwmaDetector(alpha=0.0)


class TestThresholdDetector:
    def test_breach_high(self):
        detector = ThresholdDetector(low=0.0, high=10.0)
        assert detector.add(11.0, timestamp=1.0) is not None
        assert detector.add(5.0) is None

    def test_breach_low(self):
        detector = ThresholdDetector(low=0.0, high=10.0)
        alarm = detector.add(-2.0)
        assert alarm is not None
        assert alarm.score == pytest.approx(2.0)

    def test_needs_at_least_one_bound(self):
        with pytest.raises(ConfigError):
            ThresholdDetector()

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigError):
            ThresholdDetector(low=10.0, high=0.0)


class TestStreamingPearson:
    def test_perfect_positive(self):
        corr = StreamingPearson()
        for i in range(50):
            corr.add(i, 2 * i + 1)
        assert corr.correlation() == pytest.approx(1.0)

    def test_perfect_negative(self):
        corr = StreamingPearson()
        for i in range(50):
            corr.add(i, -i)
        assert corr.correlation() == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        corr = StreamingPearson()
        rng = make_rng(4)
        for _ in range(2000):
            corr.add(float(rng.normal()), float(rng.normal()))
        assert abs(corr.correlation()) < 0.1

    def test_insufficient_data_nan(self):
        corr = StreamingPearson()
        corr.add(1, 1)
        assert math.isnan(corr.correlation())

    def test_constant_series_nan(self):
        corr = StreamingPearson()
        for i in range(10):
            corr.add(1.0, float(i))
        assert math.isnan(corr.correlation())


class TestLiftMiner:
    def test_positive_association(self):
        miner = LiftMiner(min_support=0.1, min_confidence=0.1)
        for _ in range(8):
            miner.add_basket(["bread", "butter"])
        for _ in range(2):
            miner.add_basket(["bread"])
            miner.add_basket(["milk"])
        rules = miner.rules()
        rule = next(r for r in rules if r.antecedent == "butter"
                    and r.consequent == "bread")
        assert rule.lift > 1.0
        assert rule.confidence == pytest.approx(1.0)

    def test_support_floor_filters(self):
        miner = LiftMiner(min_support=0.5, min_confidence=0.1)
        miner.add_basket(["a", "b"])
        for _ in range(9):
            miner.add_basket(["c"])
        assert miner.rules() == []

    def test_empty_basket_ignored(self):
        miner = LiftMiner()
        miner.add_basket([])
        assert miner.baskets == 0

    def test_rules_limit(self):
        miner = LiftMiner(min_support=0.01, min_confidence=0.01)
        miner.add_basket(["a", "b", "c"])
        assert len(miner.rules(limit=2)) == 2
