"""Crash-consistent recovery harness for streaming jobs under chaos.

The harness runs a job the way a supervised production deployment
would: make progress, take an aligned checkpoint whenever quiescent,
and on a crash restore the last checkpoint and replay.  Sources rewind
by position (the event log replays by offset), so the recovery
invariant the whole chaos suite enforces is:

    for any seeded fault schedule, the sinks after recovery are
    **bit-identical** to the fault-free run.

``run_with_recovery`` is that supervisor loop; ``reference_job`` builds
the canonical pipeline (watermarks -> map -> filter -> key_by -> window
sum) used by the equivalence suites, and ``reference_events`` its
seeded input — shared here so tests, the robustness gate and benchmarks
all agree on what "the reference pipeline" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..streaming.element import Element
from ..streaming.graph import JobBuilder, JobGraph
from ..streaming.runtime import Executor
from ..streaming.windows import TumblingWindows
from ..util.errors import (
    BrokerDown,
    ChaosError,
    CheckpointError,
    CoordinatorDown,
    DataFaultError,
    OperatorCrash,
)
from ..util.rng import make_rng
from .injector import FaultInjector
from .plan import FaultPlan

__all__ = ["RecoveryReport", "run_with_recovery", "reference_events",
           "reference_job", "reference_operator_names", "fault_free_sinks",
           "CoordinatedReport", "run_coordinated", "two_region_job",
           "canonical_sinks"]


@dataclass
class RecoveryReport:
    """What happened during a supervised run."""

    sink_values: dict[str, list[Any]]
    crashes: int = 0
    broker_faults: int = 0
    #: escalated data faults (FAIL/RETRY policy exhausted) the
    #: supervisor restarted from — the flapping-detection feedstock
    data_failures: int = 0
    checkpoints: int = 0
    restores: int = 0
    trace: list = field(default_factory=list)

    @property
    def failures(self) -> int:
        return self.crashes + self.broker_faults + self.data_failures


def run_with_recovery(job: JobGraph, injector: FaultInjector | None = None,
                      *, batch_mode: bool = True, chaining: bool = True,
                      parallelism: int | dict[str, int] | None = None,
                      source_batch: int = 64, checkpoint_every: int = 1,
                      max_failures: int = 1000, tracer: Any = None,
                      metrics: Any = None, profiler: Any = None,
                      restart_budget: Any = None) -> RecoveryReport:
    """Run ``job`` to completion, checkpointing and restoring on faults.

    Catches :class:`OperatorCrash` (injected or organic operator death)
    and :class:`BrokerDown` (log-backed source hitting an unavailable
    partition; the retry advances the fault window) and restores the
    latest checkpoint.  ``max_failures`` bounds pathological plans —
    the deterministic schedule cannot re-fire a passed fault, so any
    finite plan terminates well below it.

    ``parallelism`` (``None`` = the classic single-instance executor)
    supervises a :class:`~repro.streaming.execution.ParallelExecutor`
    instead: same loop, same recovery invariant, but crash sites are
    per subtask (target ``"window_sum[1]"`` to kill one clone,
    ``"window_sum"`` to match any of them).

    ``tracer``/``metrics``/``profiler`` (duck-typed, see
    :mod:`repro.obs`) thread straight through to the executor; the
    harness adds a ``supervised`` span around the whole run with one
    event per crash/broker fault, so a chaos trace shows recovery
    structure, and reuses the profiler's registry for ``chaos.*``
    counters.

    ``restart_budget`` (a :class:`~repro.streaming.errors.RestartBudget`)
    is consulted before every restore: it accounts the attempt, sleeps a
    seeded backoff, and raises
    :class:`~repro.util.errors.RestartsExhausted` once the budget is
    spent or the job is flapping (repeated restarts with no new
    checkpoint) — the supervisor then terminates instead of masking a
    permanently poisoned job.
    """
    if parallelism is None:
        executor: Any = Executor(job, batch_mode=batch_mode,
                                 chaining=chaining, injector=injector,
                                 tracer=tracer, metrics=metrics,
                                 profiler=profiler)
    else:
        from ..streaming.execution import ParallelExecutor
        executor = ParallelExecutor(job, parallelism,
                                    batch_mode=batch_mode,
                                    chaining=chaining, injector=injector,
                                    tracer=tracer, metrics=metrics,
                                    profiler=profiler)
    report = RecoveryReport(sink_values={})
    supervised = (tracer.start_span(f"supervised:{job.name}")
                  if tracer is not None else None)

    def _check_budget() -> None:
        if report.failures > max_failures:
            raise ChaosError(
                f"gave up after {report.failures} failures; the fault "
                "plan appears to re-fire indefinitely")

    def _fault(kind: str) -> None:
        if supervised is not None:
            supervised.add_event("fault", kind=kind)
        if metrics is not None:
            metrics.counter("chaos.faults", kind=kind).inc()

    progress_mark = {"checkpoints": 0}

    def _account(exc: Exception) -> None:
        """Consume one restart attempt; raises RestartsExhausted when
        the budget is spent or the job is flapping."""
        if restart_budget is None:
            return
        made = report.checkpoints > progress_mark["checkpoints"]
        progress_mark["checkpoints"] = report.checkpoints
        restart_budget.on_failure(exc, made_progress=made)

    def _restore(checkpoint: Any) -> None:
        # Restoring a log-backed source re-reads the log, so the restore
        # itself can land in an unavailability window; the counters only
        # move forward, so retrying walks out of any finite window.
        while True:
            try:
                executor.restore(checkpoint)
            except BrokerDown as exc:
                report.broker_faults += 1
                _fault("broker")
                _check_budget()
                _account(exc)
                continue
            report.restores += 1
            return

    def _supervise() -> None:
        # Checkpoint zero: the initial state is always a valid restore
        # point, so a crash before the first aligned snapshot restarts
        # from scratch.
        last: Any = executor.checkpoint()
        report.checkpoints += 1
        while True:
            try:
                executor.run(source_batch=source_batch,
                             max_cycles=checkpoint_every)
            except OperatorCrash as exc:
                report.crashes += 1
                _fault("crash")
                _check_budget()
                _account(exc)
                _restore(last)
                continue
            except DataFaultError as exc:
                # An injected data fault escalated through a FAIL or
                # exhausted RETRY policy: the task died on a poisoned
                # record.  Restoring rewinds the data-fault counters, so
                # replay re-poisons the *same* record — a persistent
                # fault loops here until the restart budget's flapping
                # detection (no new checkpoint between failures) makes
                # it terminal.
                report.data_failures += 1
                _fault("data")
                _check_budget()
                _account(exc)
                _restore(last)
                continue
            except BrokerDown as exc:
                report.broker_faults += 1
                _fault("broker")
                _check_budget()
                _account(exc)
                # The source fetch hit a fault window; restoring resets
                # in-flight state, then the retry re-reads the log.
                _restore(last)
                continue
            if executor.done:
                break
            last = executor.checkpoint()
            report.checkpoints += 1

    if supervised is not None:
        with tracer.activate(supervised):
            _supervise()
        supervised.set_attr("crashes", report.crashes)
        supervised.set_attr("broker_faults", report.broker_faults)
        supervised.set_attr("checkpoints", report.checkpoints)
        supervised.set_attr("restores", report.restores)
        supervised.end()
    else:
        _supervise()
    report.sink_values = {name: list(buf.values)
                          for name, buf in executor.sinks.items()}
    if injector is not None:
        report.trace = list(injector.trace)
    return report


# -- coordinated checkpoints -------------------------------------------------


@dataclass
class CoordinatedReport:
    """What happened during a coordinator-supervised run."""

    sink_values: dict[str, list[Any]]
    crashes: int = 0
    coordinator_crashes: int = 0
    broker_faults: int = 0
    #: escalated data faults the supervisor restarted from
    data_failures: int = 0
    dead_detected: int = 0
    checkpoints: int = 0
    aborted: int = 0
    regional_restores: int = 0
    full_restores: int = 0
    #: checkpoints the store quarantined for failing integrity checks
    integrity_failures: int = 0
    #: elements actually replayed across all recoveries
    replayed_total: int = 0
    #: of which, by regional restores only
    replayed_regional: int = 0
    #: what whole-job restarts would have replayed at the same recovery
    #: points (the counterfactual the MTTR gate compares against)
    replayed_full_equiv: int = 0
    trace: list = field(default_factory=list)

    @property
    def failures(self) -> int:
        return (self.crashes + self.coordinator_crashes
                + self.broker_faults + self.data_failures
                + self.dead_detected)

    @property
    def restores(self) -> int:
        return self.regional_restores + self.full_restores


def run_coordinated(job: JobGraph, injector: FaultInjector | None = None,
                    *, parallelism: int | dict[str, int] = 2,
                    batch_mode: bool = True, chaining: bool = True,
                    source_batch: int = 64, step_cycles: int = 1,
                    interval_cycles: int = 4,
                    unaligned_after: int | None = None,
                    heartbeat_timeout_s: float = 5.0,
                    replayable: frozenset | set = frozenset(),
                    store: Any = None, max_failures: int = 1000,
                    tracer: Any = None, metrics: Any = None,
                    profiler: Any = None, on_coordinator: Any = None,
                    restart_budget: Any = None) -> CoordinatedReport:
    """Supervise a parallel job under coordinated checkpoints.

    Unlike :func:`run_with_recovery` — which only checkpoints when the
    job is quiescent — this supervisor attaches a
    :class:`~repro.streaming.coordinator.CheckpointCoordinator` that
    snapshots *while data is in flight* via barrier alignment, commits
    sink output through 2PC, and recovers regionally:

    - :class:`OperatorCrash` (mid-batch, per-item, or mid-snapshot via
      ``barrier_crash``) restores only the failed subtask's failover
      region when the plan decomposes; otherwise the whole job.
    - :class:`CoordinatorDown` abandons the in-progress checkpoint and
      rebuilds the coordinator from the store — subtask state is intact,
      so no executor restore happens at all.
    - A fail-silent subtask (``subtask_stall``) is caught by the
      heartbeat detector and treated as a crash of that subtask.

    ``on_coordinator`` (if given) is called with the coordinator after
    construction — the place to register commit listeners such as
    :class:`~repro.streaming.txn_sink.TransactionalLogSink`.  Listeners
    survive coordinator rebuilds.

    ``restart_budget`` bounds recovery exactly as in
    :func:`run_with_recovery` (backoff runs on this supervisor's
    simulated clock; "progress" means a newly finalized checkpoint).

    When the plan carries data faults, or the job dead-letters into the
    transactional DLQ, recovery always restores the *whole* job: a
    regional restore cannot rewind data-fault counters outside the
    region, and the DLQ's committed projection spans every dead-letter
    feeder — partial rewinds would break the exactly-once accounting
    between sink, DLQ and fault windows.
    """
    from ..streaming.coordinator import (
        CheckpointCoordinator,
        CheckpointStore,
        failover_region_of,
    )
    from ..streaming.execution import ParallelExecutor
    from ..util.clock import SimClock

    executor = ParallelExecutor(job, parallelism, batch_mode=batch_mode,
                                chaining=chaining, injector=injector,
                                tracer=tracer, metrics=metrics,
                                profiler=profiler,
                                transactional_sinks=True,
                                unaligned_after=unaligned_after)
    store = store if store is not None else CheckpointStore()
    clock = SimClock()
    if restart_budget is not None:
        restart_budget.bind_clock(clock)
    from ..streaming.errors import DLQ_SINK
    force_full = (DLQ_SINK in executor.sinks
                  or (injector is not None
                      and getattr(injector, "has_data_faults", False)))

    def _build_coordinator() -> CheckpointCoordinator:
        return CheckpointCoordinator(
            executor, store=store, clock=clock,
            interval_cycles=interval_cycles,
            heartbeat_timeout_s=heartbeat_timeout_s,
            injector=injector, metrics=metrics)

    coordinator = _build_coordinator()
    if on_coordinator is not None:
        on_coordinator(coordinator)
    report = CoordinatedReport(sink_values={})
    prior = {"finalized": 0, "aborted": 0}
    supervised = (tracer.start_span(f"coordinated:{job.name}")
                  if tracer is not None else None)
    initial = executor.checkpoint()
    total_nodes = (len(executor.graph.nodes)
                   + len(executor.graph.source_parallelism)
                   + len(job.sinks))

    def _check_budget() -> None:
        if report.failures > max_failures:
            raise ChaosError(
                f"gave up after {report.failures} failures; the fault "
                "plan appears to re-fire indefinitely")

    def _fault(kind: str) -> None:
        if supervised is not None:
            supervised.add_event("fault", kind=kind)
        if metrics is not None:
            metrics.counter("chaos.faults", kind=kind).inc()

    progress_mark = {"finalized": 0}

    def _account(exc: Exception) -> None:
        """Consume one restart attempt against the budget; progress
        means a checkpoint finalized since the previous failure."""
        if restart_budget is None:
            return
        finalized = prior["finalized"] + coordinator.finalized
        made = finalized > progress_mark["finalized"]
        progress_mark["finalized"] = finalized
        restart_budget.on_failure(exc, made_progress=made)

    def _full_equiv(checkpoint: Any) -> int:
        """What a whole-job restart to ``checkpoint`` would replay."""
        total = 0
        for source, splits in executor.source_positions_snapshot().items():
            recorded = checkpoint.source_positions.get(source, {})
            for split, pos in splits.items():
                total += max(0, pos - recorded.get(split, 0))
        return total

    def _rebuild_coordinator() -> None:
        # Counters accumulate across incarnations: the replacement
        # coordinator starts at zero, but the checkpoints the dead one
        # finalized (and the pending one it abandoned) still happened.
        nonlocal coordinator
        coordinator.abandon_pending()
        prior["finalized"] += coordinator.finalized
        prior["aborted"] += coordinator.aborted
        listeners = list(coordinator.listeners)
        coordinator = _build_coordinator()
        coordinator.listeners.extend(listeners)

    def _recover(op_name: str | None) -> None:
        checkpoint = store.latest()
        target = checkpoint if checkpoint is not None else initial
        full_equiv = _full_equiv(target)
        region = None
        if checkpoint is not None and op_name is not None \
                and not force_full:
            try:
                candidate = failover_region_of(executor.graph, op_name,
                                               replayable)
            except CheckpointError:
                candidate = None
            # Regional restore needs the region to contain its own
            # sources (its input replays from them) and to be a strict
            # subset — a region spanning the whole plan is just a full
            # restore with extra bookkeeping.
            if (candidate is not None and len(candidate) < total_nodes
                    and candidate
                    & set(executor.graph.source_parallelism)):
                region = candidate
        while True:
            # A log-backed source restore re-reads the log, so the
            # restore itself can land in an unavailability window; the
            # counters only move forward, so retrying walks out.
            try:
                if region is not None:
                    stats = executor.restore_region(target, region)
                    replayed = stats["replayed_elements"]
                    report.regional_restores += 1
                    report.replayed_regional += replayed
                else:
                    executor.restore(target)
                    replayed = full_equiv
                    report.full_restores += 1
                    coordinator.monitor.reset_all()
            except BrokerDown as exc:
                report.broker_faults += 1
                _fault("broker")
                _check_budget()
                _account(exc)
                continue
            break
        report.replayed_total += replayed
        report.replayed_full_equiv += full_equiv
        if metrics is not None:
            metrics.summary("recovery.replayed_elements").observe(replayed)
            metrics.summary("recovery.replay_saved").observe(
                full_equiv - replayed)

    def _supervise() -> None:
        while True:
            try:
                executor.run(source_batch=source_batch,
                             max_cycles=step_cycles)
                if executor.done:
                    coordinator.final_checkpoint(executor)
                    return
            except OperatorCrash as crash:
                report.crashes += 1
                _fault("crash")
                _check_budget()
                _account(crash)
                _recover(getattr(crash, "op_name", None))
                continue
            except DataFaultError as exc:
                # Escalated poisoned record (see run_with_recovery):
                # restore rewinds data-fault counters, so a persistent
                # fault re-fires until the budget escalates.
                report.data_failures += 1
                _fault("data")
                _check_budget()
                _account(exc)
                _recover(None)
                continue
            except CoordinatorDown as exc:
                report.coordinator_crashes += 1
                _fault("coordinator")
                _check_budget()
                _account(exc)
                _rebuild_coordinator()
                continue
            except BrokerDown as exc:
                report.broker_faults += 1
                _fault("broker")
                _check_budget()
                _account(exc)
                _recover(None)
                continue
            dead = coordinator.dead_subtasks()
            if dead:
                report.dead_detected += 1
                _fault("dead")
                _check_budget()
                _account(OperatorCrash(f"fail-silent subtask {dead[0]!r}",
                                       op_name=dead[0]))
                _recover(dead[0])

    if supervised is not None:
        with tracer.activate(supervised):
            _supervise()
        supervised.set_attr("crashes", report.crashes)
        supervised.set_attr("coordinator_crashes",
                            report.coordinator_crashes)
        supervised.set_attr("regional_restores", report.regional_restores)
        supervised.set_attr("full_restores", report.full_restores)
        supervised.set_attr("replayed_total", report.replayed_total)
        supervised.end()
    else:
        _supervise()
    report.checkpoints = prior["finalized"] + coordinator.finalized
    report.aborted = prior["aborted"] + coordinator.aborted
    report.integrity_failures = getattr(store, "integrity_failures", 0)
    report.sink_values = {name: list(sink.values)
                          for name, sink in executor.sinks.items()}
    if injector is not None:
        report.trace = list(injector.trace)
    return report


# -- the reference pipeline -------------------------------------------------


def reference_events(seed: int = 0, n: int = 400,
                     keys: int = 4) -> list[Element]:
    """Seeded out-of-order keyed events for the reference pipeline."""
    rng = make_rng((int(seed), 0xE7E27))
    events = []
    for i in range(n):
        ts = float(i) * 0.25 + float(rng.uniform(-1.5, 1.5))
        events.append(Element(
            value={"k": int(rng.integers(0, keys)),
                   "v": float(rng.uniform(0.0, 10.0))},
            timestamp=max(0.0, ts)))
    return events


def reference_job(elements_or_source: Any,
                  max_lateness: float = 5.0,
                  window_s: float = 10.0,
                  splits: int | None = None) -> JobGraph:
    """watermarks -> map -> filter -> key_by -> window(sum) -> sink.

    The linear head is chainable, the window is a shuffle point, so one
    graph exercises per-item, batched and chained execution paths.
    ``splits`` pins the source's split count independently of source
    parallelism — required for rescaling tests, where a checkpoint can
    only restore into a plan with the same splits.
    """
    builder = JobBuilder("chaos-reference")
    (builder.source("events", elements_or_source, splits=splits)
            .with_watermarks(max_lateness, name="watermarks")
            .map(lambda v: {"k": v["k"], "v": v["v"] * 2.0}, name="double")
            .filter(lambda v: v["v"] >= 1.0, name="drop_tiny")
            .key_by(lambda v: v["k"], name="by_key")
            .window(TumblingWindows(window_s), "sum",
                    value_fn=lambda v: v["v"], name="window_sum")
            .sink("out"))
    return builder.build()


def reference_operator_names() -> tuple[str, ...]:
    """Crash targets in the reference job (kept in sync by tests)."""
    return ("watermarks", "double", "drop_tiny", "by_key", "window_sum")


def canonical_sinks(sink_values: dict[str, list[Any]]
                    ) -> dict[str, list[Any]]:
    """Order-insensitive canonical form of sink output.

    Crash recovery replays deterministically, so crash-only schedules
    reproduce the fault-free sink lists *exactly*.  Network faults
    (channel delay/partition) and fail-silent stalls legitimately shift
    *when* windows fire, which permutes the cross-subtask interleaving
    at a merge sink — content is still exactly-once (no loss, no
    duplicates, bit-identical values), only the arrival order differs,
    as on any real multi-partition sink.  Equivalence suites compare
    ``canonical_sinks(a) == canonical_sinks(b)``: it is exact on values
    and multiplicities while forgiving the interleaving.
    """
    return {name: sorted(values, key=repr)
            for name, values in sink_values.items()}


def two_region_job(events_a: Any, events_b: Any,
                   max_lateness: float = 5.0,
                   window_s: float = 10.0) -> JobGraph:
    """Two disjoint pipelines in one job: the canonical two-region plan.

    The pipelines share no edges, so :func:`failover_regions` splits
    them into independent restart units without any replayable-edge
    declaration — a crash in pipeline A replays only ``events_a`` while
    pipeline B keeps its state and position.  The recovery-MTTR gate
    asserts exactly that: regional replay strictly below what a
    whole-job restart would re-read.
    """
    builder = JobBuilder("two-region")
    (builder.source("events_a", events_a)
            .with_watermarks(max_lateness, name="wm_a")
            .map(lambda v: {"k": v["k"], "v": v["v"] * 2.0}, name="double_a")
            .key_by(lambda v: v["k"], name="by_key_a")
            .window(TumblingWindows(window_s), "sum",
                    value_fn=lambda v: v["v"], name="window_a")
            .sink("out_a"))
    (builder.source("events_b", events_b)
            .with_watermarks(max_lateness, name="wm_b")
            .map(lambda v: {"k": v["k"], "v": v["v"] + 1.0}, name="shift_b")
            .key_by(lambda v: v["k"], name="by_key_b")
            .window(TumblingWindows(window_s), "sum",
                    value_fn=lambda v: v["v"], name="window_b")
            .sink("out_b"))
    return builder.build()


def fault_free_sinks(build: Callable[[], JobGraph], *,
                     batch_mode: bool = True,
                     chaining: bool = True,
                     parallelism: int | dict[str, int] | None = None,
                     source_batch: int = 64) -> dict[str, list[Any]]:
    """The golden run: same job, no injector, straight execution."""
    if parallelism is None:
        executor: Any = Executor(build(), batch_mode=batch_mode,
                                 chaining=chaining)
    else:
        from ..streaming.execution import ParallelExecutor
        executor = ParallelExecutor(build(), parallelism,
                                    batch_mode=batch_mode,
                                    chaining=chaining)
    sinks = executor.run(source_batch=source_batch)
    return {name: list(buf.values) for name, buf in sinks.items()}
