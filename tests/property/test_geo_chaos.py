"""Geo chaos suite: exactly-once session output across zone handoff
and whole-region loss.

The property (the PR's acceptance bar): a keyed windowed job pinned to
an edge region — with its input topic asynchronously mirrored to the
core region — is subjected to (a) session handoffs that migrate keyed
operators across a zone boundary mid-job, with operator and
coordinator crashes landing before, during, and after the move, and
(b) a whole-region loss that the :class:`~repro.geo.RegionController`
must detect from simnet heartbeats and survive by failing over to the
replica cluster.  At parallelism 1, 2 and 4 the committed sink output
is **bit-identical** to the fault-free run, and failover restores from
a finalized checkpoint so it replays **strictly less** than a full
restart of the replica.

Marked ``geo``: run via ``make geo`` / ``tools/check_geo.py``,
excluded from tier 1.  The fast placement/controller seams stay
covered in tier 1 by ``tests/unit/test_geo_placement.py`` and
``tests/unit/test_offload_tiers.py``.
"""

import pytest

from repro.chaos import (
    SITE_COORDINATOR,
    SITE_OPERATOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    canonical_sinks,
    fault_free_sinks,
)
from repro.eventlog import LogCluster, Producer, TopicConfig
from repro.geo import GeoDeployment
from repro.simnet import (
    FailureInjector,
    RegionFailureEvent,
    Simulator,
    region_topology,
)
from repro.streaming import JobBuilder, parallel_log_source
from repro.streaming.placement import placement_from_topology
from repro.streaming.windows import TumblingWindows
from repro.util.rng import make_rng

pytestmark = pytest.mark.geo

TOPIC = "geo.events"
N_RECORDS = 240
KEYS = 8
PINS = {TOPIC: "edge-a", "by_key": "edge-a",
        "window_sum": "edge-a", "out": "edge-a"}
MOVABLE = ("by_key", "window_sum", "out")


def _fill(cluster: LogCluster) -> None:
    cluster.create_topic(TopicConfig(name=TOPIC, partitions=4))
    producer = Producer(cluster, idempotent=True)
    for i in range(N_RECORDS):
        producer.send(TOPIC, {"k": i % KEYS, "v": float(i)},
                      key=f"k-{i % KEYS}", timestamp=float(i))


def _build_job(cluster: LogCluster):
    builder = JobBuilder("geo-chaos")
    factory, splits = parallel_log_source(cluster, TOPIC)
    (builder.source(TOPIC, splits=splits, split_factory=factory)
            .key_by(lambda v: v["k"], name="by_key")
            .window(TumblingWindows(20.0), "sum",
                    value_fn=lambda v: v["v"], name="window_sum")
            .sink("out"))
    for node, region in PINS.items():
        builder.pin_region(node, region)
    # the edge a zone handoff may stretch across regions — declared up
    # front, per the job-graph contract (cross-region is never inferred)
    builder.declare_cross_region(TOPIC, "by_key")
    return builder.build()


def _golden(parallelism: int):
    primary = LogCluster(num_brokers=1)
    _fill(primary)
    return canonical_sinks(fault_free_sinks(
        lambda: _build_job(primary), parallelism=parallelism))


def _deployment(parallelism: int, *, injector=None,
                region_event: RegionFailureEvent | None = None,
                region_timeout_s: float = 2.0) -> GeoDeployment:
    primary = LogCluster(num_brokers=1)
    standby = LogCluster(num_brokers=1)
    _fill(primary)
    topo = region_topology(make_rng(11))
    sim = Simulator()
    if region_event is not None:
        FailureInjector(sim, topo).schedule_region(region_event)
    placement = placement_from_topology(topo, dict(PINS),
                                        default_region="core")
    return GeoDeployment(
        _build_job,
        primary_cluster=primary, standby_cluster=standby, topic=TOPIC,
        primary_region="edge-a", standby_region="core",
        placement=placement, parallelism=parallelism,
        source_batch=8, step_cycles=2, interval_cycles=2,
        region_timeout_s=region_timeout_s,
        injector=injector, topology=topo, simulator=sim,
        observer="core")


class TestZoneHandoff:
    """Keyed state follows the user across the zone boundary."""

    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_handoff_is_exactly_once(self, parallelism):
        golden = _golden(parallelism)
        deployment = _deployment(parallelism)

        def cross_zone(dep, step):
            if step == 1:
                dep.handoff(MOVABLE, "edge-b")

        report = deployment.run(on_step=cross_zone)
        assert canonical_sinks(report.sink_values) == golden
        assert len(report.handoffs) == 1
        handoff = report.handoffs[0]
        assert handoff.to_region == "edge-b"
        assert handoff.nodes == MOVABLE
        # the moved plan pays the declared cross-region link
        assert deployment.executor.cross_region_packets > 0

    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_handoff_under_crashes(self, parallelism):
        golden = _golden(parallelism)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=5,
                      target="window_sum"),
            FaultSpec("operator_crash", SITE_OPERATOR, at=40,
                      target="by_key"),
            FaultSpec("coordinator_crash", SITE_COORDINATOR, at=2),
        ))
        deployment = _deployment(parallelism,
                                 injector=FaultInjector(plan))

        def cross_zone(dep, step):
            if step == 2:
                dep.handoff(MOVABLE, "edge-b")

        report = deployment.run(on_step=cross_zone)
        assert canonical_sinks(report.sink_values) == golden
        assert report.crashes + report.coordinator_crashes > 0
        assert len(report.handoffs) == 1

    def test_handoff_back_and_forth(self):
        golden = _golden(2)
        deployment = _deployment(2)

        def roam(dep, step):
            if step == 1:
                dep.handoff(MOVABLE, "edge-b")
            elif step == 3:
                dep.handoff(MOVABLE, "edge-a")

        report = deployment.run(on_step=roam)
        assert canonical_sinks(report.sink_values) == golden
        assert [h.to_region for h in report.handoffs] == \
            ["edge-b", "edge-a"]


class TestRegionFailover:
    """Whole-region loss: detected by heartbeat, survived from the
    replica plus the newest covered checkpoint."""

    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_failover_is_exactly_once(self, parallelism):
        golden = _golden(parallelism)
        deployment = _deployment(
            parallelism,
            region_event=RegionFailureEvent("edge-a", down_at=4.0,
                                            up_at=1e9))
        report = deployment.run()
        assert canonical_sinks(report.sink_values) == golden
        failover = report.failover
        assert failover is not None
        assert failover.lost_region == "edge-a"
        assert failover.to_region == "core"
        assert deployment.active_region == "core"

    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_failover_replays_strictly_less_than_restart(
            self, parallelism):
        deployment = _deployment(
            parallelism,
            region_event=RegionFailureEvent("edge-a", down_at=4.0,
                                            up_at=1e9))
        report = deployment.run()
        failover = report.failover
        assert failover is not None
        assert failover.checkpoint_id is not None
        assert failover.full_restart_equiv == N_RECORDS
        assert failover.replayed < failover.full_restart_equiv
        assert failover.mttr_s > 0.0

    def test_failover_under_crashes(self):
        golden = _golden(2)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=8,
                      target="window_sum"),
            FaultSpec("coordinator_crash", SITE_COORDINATOR, at=1),
        ))
        deployment = _deployment(
            2, injector=FaultInjector(plan),
            region_event=RegionFailureEvent("edge-a", down_at=4.0,
                                            up_at=1e9))
        report = deployment.run()
        assert canonical_sinks(report.sink_values) == golden
        assert report.failover is not None
        assert report.crashes + report.coordinator_crashes > 0

    def test_mirror_caught_up_before_loss(self):
        deployment = _deployment(
            2, region_event=RegionFailureEvent("edge-a", down_at=4.0,
                                               up_at=1e9))
        report = deployment.run()
        # bounded-lag pumping had fully mirrored the topic
        assert report.mirror_pumped == N_RECORDS
        assert report.failover.mirror_lag in (
            None, {p: 0 for p in range(4)})

    def test_deterministic_across_runs(self):
        def once():
            deployment = _deployment(
                2, region_event=RegionFailureEvent("edge-a", down_at=4.0,
                                                   up_at=1e9))
            report = deployment.run()
            failover = report.failover
            return (canonical_sinks(report.sink_values),
                    failover.checkpoint_id, failover.replayed,
                    failover.mttr_s, report.steps)

        assert once() == once()


class TestHandoffThenFailover:
    def test_zone_move_then_region_loss(self):
        """A session roams to edge-b, then edge-a (source region) is
        lost: the failover must still be exactly-once."""
        golden = _golden(2)
        deployment = _deployment(
            2, region_event=RegionFailureEvent("edge-a", down_at=8.0,
                                               up_at=1e9))

        def roam(dep, step):
            if step == 0:
                dep.handoff(MOVABLE, "edge-b")

        report = deployment.run(on_step=roam)
        assert canonical_sinks(report.sink_values) == golden
        assert len(report.handoffs) == 1
        assert report.failover is not None
        # failover consolidates everything in the surviving region
        regions = set(deployment.executor.graph.node_regions.values())
        assert regions == {"core"}
