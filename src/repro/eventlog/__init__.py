"""Kafka-like partitioned, replicated event log (in-memory simulation)."""

from .broker import Broker, LogCluster, PartitionState, TopicConfig
from .consumer import Consumer, ConsumerGroup
from .mirror import ReplicatedTopic
from .partition import Partition
from .producer import Producer, stable_hash
from .record import ConsumedRecord, Record, estimate_size

__all__ = [
    "Broker",
    "LogCluster",
    "PartitionState",
    "TopicConfig",
    "ReplicatedTopic",
    "Consumer",
    "ConsumerGroup",
    "Partition",
    "Producer",
    "stable_hash",
    "Record",
    "ConsumedRecord",
    "estimate_size",
]
