"""Domain applications on the public API: retail, tourism, healthcare,
public services (paper Sections 3.1-3.4)."""

from .education import EducationApp, Lesson, ReviewOutcome, Student
from .healthcare import (
    CollaborativeStats,
    DetectionOutcome,
    HealthcareApp,
    RemoteDiagnosisStats,
)
from .public_services import (
    PublicServicesApp,
    RoleView,
    ScreeningResult,
    ThreatAssessment,
)
from .retail import RecommendationEval, RetailApp
from .tourism import GameStats, OverlayComparison, TourismApp

__all__ = [
    "EducationApp",
    "Lesson",
    "ReviewOutcome",
    "Student",
    "CollaborativeStats",
    "DetectionOutcome",
    "HealthcareApp",
    "RemoteDiagnosisStats",
    "PublicServicesApp",
    "RoleView",
    "ScreeningResult",
    "ThreatAssessment",
    "RecommendationEval",
    "RetailApp",
    "GameStats",
    "OverlayComparison",
    "TourismApp",
]
