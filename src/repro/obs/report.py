"""Span-tree assembly, critical-path extraction and text rendering.

Operates on the serialized span form (plain dicts, see
:func:`repro.obs.exporters.span_to_dict`) so it works identically on
live tracer output and on re-parsed JSON-lines files — the
``tools/trace_report.py`` CLI and the observability gate both build on
this module.
"""

from __future__ import annotations

from typing import Any, Iterable, TextIO

from .exporters import span_to_dict
from .trace import Span

__all__ = ["SpanNode", "build_tree", "critical_path", "render_tree",
           "tree_is_connected"]


class SpanNode:
    """One assembled tree node: a span dict plus its children."""

    __slots__ = ("span", "children")

    def __init__(self, span: dict[str, Any]) -> None:
        self.span = span
        self.children: list["SpanNode"] = []

    @property
    def name(self) -> str:
        return self.span["name"]

    @property
    def duration(self) -> float:
        end = self.span.get("end")
        return 0.0 if end is None else end - self.span["start"]

    @property
    def self_time(self) -> float:
        """Duration not covered by child durations (clamped at 0)."""
        return max(0.0, self.duration - sum(c.duration
                                            for c in self.children))

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def _as_dicts(spans: Iterable[Any]) -> list[dict[str, Any]]:
    return [span_to_dict(s) if isinstance(s, Span) else s for s in spans]


def build_tree(spans: Iterable[Any]) -> list[SpanNode]:
    """Assemble spans (dicts or :class:`Span` objects) into root nodes.

    A span whose parent is absent from the batch becomes a root — so a
    filtered export still renders instead of vanishing.  Children are
    ordered by (start, span_id) for deterministic output.
    """
    dicts = _as_dicts(spans)
    nodes = {d["span_id"]: SpanNode(d) for d in dicts}
    roots: list[SpanNode] = []
    for d in dicts:
        node = nodes[d["span_id"]]
        parent = d.get("parent_id")
        if parent is not None and parent in nodes:
            nodes[parent].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.span["start"], n.span["span_id"]))
    roots.sort(key=lambda n: (n.span["start"], n.span["span_id"]))
    return roots


def tree_is_connected(spans: Iterable[Any]) -> bool:
    """True when the batch forms a single tree (exactly one root and
    every parent reference resolves inside the batch)."""
    dicts = _as_dicts(spans)
    ids = {d["span_id"] for d in dicts}
    roots = 0
    for d in dicts:
        parent = d.get("parent_id")
        if parent is None:
            roots += 1
        elif parent not in ids:
            return False
    return roots == 1


def critical_path(root: SpanNode) -> list[SpanNode]:
    """Greedy longest-duration descent from ``root``.

    At every level the child with the largest duration is taken (ties
    broken by earliest start, then span id) — for stage-shaped traces
    this is the chain of spans that bounds end-to-end latency.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children,
                   key=lambda n: (n.duration, -n.span["start"]))
        path.append(node)
    return path


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.3f}ms"


def render_tree(roots: list[SpanNode], stream: TextIO,
                collapse_over: int = 4) -> None:
    """Print an indented span tree.

    Sibling groups sharing a name with more than ``collapse_over``
    members collapse into one aggregate line (count + total duration) —
    per-record produce/consume spans would otherwise drown the report.
    """

    def emit(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        stream.write(f"{indent}{node.name}  "
                     f"[{_format_duration(node.duration)}]"
                     f"{_attr_suffix(node)}\n")
        groups: dict[str, list[SpanNode]] = {}
        for child in node.children:
            groups.setdefault(child.name, []).append(child)
        for child in node.children:
            group = groups.get(child.name)
            if group is None:
                continue  # already emitted as an aggregate
            if len(group) > collapse_over:
                total = sum(c.duration for c in group)
                grandchildren = sum(len(c.children) for c in group)
                stream.write(f"{'  ' * (depth + 1)}{child.name} "
                             f"x{len(group)}  "
                             f"[total {_format_duration(total)}]"
                             + (f"  (+{grandchildren} linked spans)"
                                if grandchildren else "") + "\n")
                del groups[child.name]
            else:
                emit(child, depth + 1)

    def _attr_suffix(node: SpanNode) -> str:
        attrs = node.span.get("attrs") or {}
        if not attrs:
            return ""
        shown = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs)[:4])
        return f"  {{{shown}}}"

    for root in roots:
        emit(root, 0)
