"""Quickstart: the AR x Big-Data loop in ~60 lines.

Streams temperature readings from a building sensor grid into the event
log, window-aggregates them, binds the aggregates to spatial entities,
and renders a facility manager's AR view — hot spots prioritized.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ARBigDataPipeline, PipelineConfig
from repro.context import SemanticEntity
from repro.datagen import SensorGrid
from repro.util.rng import make_rng
from repro.vision import look_at


def main() -> None:
    pipeline = ARBigDataPipeline(PipelineConfig(seed=7))
    pipeline.create_topic("building.temps")

    # 1. A building instrumented with temperature sensors + one fault.
    rng = make_rng(7)
    grid = SensorGrid(rng, nx=10, ny=8)
    grid.add_hot_spot(6, 3, delta_c=12.0)  # overheating equipment

    # 2. Velocity: stream ten rounds of readings into the log.
    for round_idx in range(10):
        for reading in grid.read_all(t=round_idx * 30.0):
            pipeline.ingest("building.temps", reading,
                            key=reading["sensor"],
                            timestamp=reading["t"])
            if round_idx == 0:  # register each sensor as an entity once
                pipeline.add_entity(SemanticEntity(
                    entity_id=reading["sensor"], entity_type="sensor",
                    position=np.array([reading["x"], reading["y"], 3.0]),
                    name=reading["sensor"]))

    # 3. Analytics: mean temperature per sensor over 5-minute windows.
    results = pipeline.windowed_aggregate(
        "building.temps", key_fn=lambda v: v["sensor"],
        value_fn=lambda v: v["value"], window_s=300.0, aggregate="mean")
    print(f"windowed results: {len(results)} (sensors x windows)")

    # 4. Interpretation: bind hot readings to their physical anchors.
    pipeline.interpreter.register_default("temperature")
    hot = [r for r in results if r.value > 24.0]
    bound = pipeline.interpret_and_publish([
        {"tag": "temperature", "subject": r.key,
         "value": f"{r.value:.1f} C", "priority": r.value}
        for r in hot])
    print(f"hot sensors bound to AR anchors: {bound.bound} "
          f"(coverage {bound.coverage:.0%})")

    # 5. The AR view: a manager walks in and looks at the hot corner.
    session = pipeline.open_session("facility-manager")
    session.sync()
    pose = look_at(eye=[24.0, -15.0, 6.0], target=[24.0, 12.0, 3.0],
                   up=np.array([0.0, 0.0, 1.0]))
    frame = session.render(pose)
    print(f"overlay: {frame.drawn} labels drawn, "
          f"{frame.layout.overlapping} overlapping, "
          f"{frame.culled_offscreen} off-screen")
    hottest = max(frame.items, key=lambda i: i.label.priority)
    print(f"highest-priority annotation: {hottest.annotation_id} "
          f"at depth {hottest.depth_m:.1f} m")


if __name__ == "__main__":
    main()
