"""Operator state: keyed state with snapshot/restore.

Operators keep their mutable state in a :class:`KeyedState` so the
checkpoint coordinator can snapshot and restore the whole job.  Values
must be copyable via :func:`copy.deepcopy`; our state values are plain
dicts/lists/numbers so this is exact.
"""

from __future__ import annotations

import copy
from typing import Any, Callable

__all__ = ["KeyedState"]


class KeyedState:
    """Per-key mutable state with deep snapshot semantics."""

    def __init__(self, default_factory: Callable[[], Any] | None = None) -> None:
        self._data: dict[Any, Any] = {}
        self._default_factory = default_factory

    def get(self, key: Any) -> Any:
        if key not in self._data and self._default_factory is not None:
            self._data[key] = self._default_factory()
        return self._data.get(key)

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def remove(self, key: Any) -> None:
        self._data.pop(key, None)

    def keys(self) -> list[Any]:
        return list(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> dict[Any, Any]:
        """Deep copy of the full state."""
        return copy.deepcopy(self._data)

    def restore(self, snapshot: dict[Any, Any]) -> None:
        self._data = copy.deepcopy(snapshot)

    def clear(self) -> None:
        self._data.clear()
