"""Unit tests: geo utilities, sensor models, Kalman fusion, quadtree, POIs."""

import numpy as np
import pytest

from repro.sensors import (
    GpsSensor,
    ImuSensor,
    KalmanFusion,
    LocalProjection,
    Poi,
    PoiDatabase,
    QuadTree,
    SpatialPoint,
    geohash_decode,
    geohash_encode,
    haversine_m,
)
from repro.util.errors import ConfigError, SensorError, SpatialIndexError
from repro.util.geometry import Rect
from repro.util.rng import make_rng


class TestGeo:
    def test_haversine_zero(self):
        assert haversine_m(22.3, 114.2, 22.3, 114.2) == 0.0

    def test_haversine_known_distance(self):
        # One degree of latitude is ~111.2 km.
        d = haversine_m(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_projection_roundtrip(self):
        proj = LocalProjection(22.3, 114.2)
        x, y = proj.to_xy(22.31, 114.21)
        lat, lon = proj.to_latlon(x, y)
        assert lat == pytest.approx(22.31, abs=1e-9)
        assert lon == pytest.approx(114.21, abs=1e-9)

    def test_projection_agrees_with_haversine_locally(self):
        proj = LocalProjection(22.3, 114.2)
        x, y = proj.to_xy(22.305, 114.205)
        planar = float(np.hypot(x, y))
        true = haversine_m(22.3, 114.2, 22.305, 114.205)
        assert planar == pytest.approx(true, rel=0.01)

    def test_geohash_roundtrip_precision(self):
        lat, lon = 22.3193, 114.1694
        gh = geohash_encode(lat, lon, precision=9)
        lat2, lon2 = geohash_decode(gh)
        assert haversine_m(lat, lon, lat2, lon2) < 5.0

    def test_geohash_prefix_property(self):
        gh = geohash_encode(22.3193, 114.1694, precision=9)
        coarse = geohash_encode(22.3193, 114.1694, precision=4)
        assert gh.startswith(coarse)

    def test_geohash_invalid_char_rejected(self):
        with pytest.raises(ConfigError):
            geohash_decode("abc!")

    def test_geohash_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            geohash_encode(91.0, 0.0)


class TestGpsSensor:
    def test_noise_magnitude(self):
        gps = GpsSensor(make_rng(0), sigma_m=5.0)
        errors = []
        for i in range(500):
            fix = gps.read(float(i), 100.0, 200.0)
            errors.append(np.hypot(fix.x - 100.0, fix.y - 200.0))
        # Mean radial error of 2-D Gaussian = sigma * sqrt(pi/2).
        assert np.mean(errors) == pytest.approx(5.0 * np.sqrt(np.pi / 2),
                                                rel=0.15)

    def test_dropout_rate(self):
        gps = GpsSensor(make_rng(1), dropout=0.3)
        fixes = [gps.read(float(i), 0.0, 0.0) for i in range(1000)]
        drop_rate = sum(1 for f in fixes if f is None) / len(fixes)
        assert drop_rate == pytest.approx(0.3, abs=0.05)

    def test_track_length_mismatch_rejected(self):
        gps = GpsSensor(make_rng(0))
        with pytest.raises(SensorError):
            gps.track(np.arange(3), np.arange(2), np.arange(3))

    def test_invalid_params_rejected(self):
        with pytest.raises(SensorError):
            GpsSensor(make_rng(0), dropout=1.0)


class TestImuSensor:
    def test_bias_is_persistent(self):
        imu = ImuSensor(make_rng(2), noise_sigma=0.0, bias_sigma=0.1)
        r1 = imu.read(0.0, 0.0, 0.0)
        r2 = imu.read(1.0, 0.0, 0.0)
        assert r1.ax == r2.ax  # constant bias, zero noise
        assert r1.ax != 0.0

    def test_noise_zero_mean(self):
        imu = ImuSensor(make_rng(3), noise_sigma=0.05, bias_sigma=0.0)
        readings = [imu.read(float(i), 1.0, -1.0) for i in range(2000)]
        assert np.mean([r.ax for r in readings]) == pytest.approx(1.0,
                                                                  abs=0.01)


class TestKalmanFusion:
    def test_converges_to_static_position(self):
        gps = GpsSensor(make_rng(4), sigma_m=5.0)
        kf = KalmanFusion()
        for i in range(100):
            fix = gps.read(float(i), 50.0, -30.0)
            kf.update_gps(fix)
        x, y = kf.position
        assert np.hypot(x - 50.0, y + 30.0) < 2.0
        assert kf.position_uncertainty < 5.0

    def test_fused_error_below_raw_gps(self):
        # Constant-velocity target; KF should beat raw fixes.
        rng = make_rng(5)
        gps = GpsSensor(rng, sigma_m=8.0)
        kf = KalmanFusion(process_noise=0.05)
        raw_err, kf_err = [], []
        for i in range(300):
            t = float(i)
            true_x, true_y = 2.0 * t, 1.0 * t
            fix = gps.read(t, true_x, true_y)
            state = kf.update_gps(fix)
            if i > 50:
                raw_err.append(np.hypot(fix.x - true_x, fix.y - true_y))
                kf_err.append(np.hypot(state[0] - true_x,
                                       state[1] - true_y))
        assert np.mean(kf_err) < np.mean(raw_err)

    def test_velocity_estimated(self):
        rng = make_rng(6)
        gps = GpsSensor(rng, sigma_m=2.0)
        kf = KalmanFusion(process_noise=0.05)
        for i in range(200):
            t = float(i)
            kf.update_gps(gps.read(t, 3.0 * t, 0.0))
        vx, vy = kf.velocity
        assert vx == pytest.approx(3.0, abs=0.3)
        assert vy == pytest.approx(0.0, abs=0.3)

    def test_time_backwards_rejected(self):
        kf = KalmanFusion()
        kf.predict(5.0)
        with pytest.raises(SensorError):
            kf.predict(4.0)


class TestQuadTree:
    def _tree(self, n=200, seed=0):
        rng = make_rng(seed)
        tree = QuadTree(Rect(0, 0, 100, 100), bucket_size=8)
        points = [SpatialPoint(float(x), float(y), payload=i)
                  for i, (x, y) in enumerate(rng.uniform(0, 100,
                                                         size=(n, 2)))]
        for p in points:
            tree.insert(p)
        return tree, points

    def test_len(self):
        tree, points = self._tree()
        assert len(tree) == len(points)

    def test_out_of_bounds_rejected(self):
        tree = QuadTree(Rect(0, 0, 10, 10))
        with pytest.raises(SpatialIndexError):
            tree.insert(SpatialPoint(11.0, 5.0))

    def test_rect_query_matches_bruteforce(self):
        tree, points = self._tree()
        rect = Rect(20, 30, 25, 15)
        expected = {p.payload for p in points if rect.contains(p.x, p.y)}
        got = {p.payload for p in tree.query_rect(rect)}
        assert got == expected

    def test_radius_query_matches_bruteforce(self):
        tree, points = self._tree()
        cx, cy, r = 50.0, 50.0, 18.0
        expected = {p.payload for p in points
                    if (p.x - cx) ** 2 + (p.y - cy) ** 2 <= r * r}
        got = {p.payload for p in tree.query_radius(cx, cy, r)}
        assert got == expected

    def test_nearest_matches_bruteforce(self):
        tree, points = self._tree()
        got = tree.nearest(42.0, 13.0, k=5)
        expected = sorted(points,
                          key=lambda p: p.distance_sq(42.0, 13.0))[:5]
        assert [p.payload for p in got] == [p.payload for p in expected]

    def test_nearest_k_larger_than_size(self):
        tree = QuadTree(Rect(0, 0, 10, 10))
        tree.insert(SpatialPoint(1, 1))
        assert len(tree.nearest(0, 0, k=5)) == 1


class TestPoiDatabase:
    def _db(self):
        db = PoiDatabase(Rect(0, 0, 1000, 1000))
        db.add(Poi("p1", "Cafe A", "cafe", 100, 100, popularity=5))
        db.add(Poi("p2", "Cafe B", "cafe", 120, 100, popularity=9))
        db.add(Poi("p3", "Museum", "museum", 500, 500, popularity=7))
        return db

    def test_duplicate_id_rejected(self):
        db = self._db()
        with pytest.raises(SensorError):
            db.add(Poi("p1", "dup", "cafe", 1, 1))

    def test_within_radius_and_category(self):
        db = self._db()
        hits = db.within(100, 100, 50, category="cafe")
        assert [p.poi_id for p in hits] == ["p1", "p2"]

    def test_within_sorted_by_distance(self):
        db = self._db()
        hits = db.within(119, 100, 500)
        assert hits[0].poi_id == "p2"

    def test_nearest_with_category_filter(self):
        db = self._db()
        hits = db.nearest(100, 100, k=1, category="museum")
        assert [p.poi_id for p in hits] == ["p3"]

    def test_most_popular(self):
        db = self._db()
        assert [p.poi_id for p in db.most_popular(k=2)] == ["p2", "p3"]

    def test_categories(self):
        assert self._db().categories() == ["cafe", "museum"]
