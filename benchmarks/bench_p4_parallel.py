"""P4: parallel execution scaling — modelled speedup at parallelism 1/2/4.

The logical->physical compiler (:mod:`repro.streaming.execution`) turns
one job graph into N subtasks per operator with hash-partitioned keyed
shuffles.  Execution stays single-threaded and deterministic, so the
scaling quantity is the **modelled makespan**: per drain cycle, each
subtask index is a worker lane, lane busy time is measured, and the
cycle costs its busiest lane — what wall clock would be if the lanes
ran concurrently.  Elements/sec against that makespan is the modelled
throughput; the ratio to the parallelism-1 run is the scaling number
``tools/check_perf.py`` gates (parallelism 4 must model >= 1.5x on the
keyed-window workload — well under the ideal 4x, so channel/shuffle
overhead is allowed, but a plan that stops overlapping work fails).

Sinks must be bit-identical across parallelism (asserted): the source
is key-aligned (keys ride on the elements, the default partitioner
hashes them to splits), so per-key order — and float accumulation
order — is preserved no matter how many subtasks run.

By default results merge into ``BENCH_streaming.json`` under the
``"parallel"`` key, alongside the P1 throughput sections.
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.streaming import (
    Element,
    JobBuilder,
    ParallelExecutor,
    TumblingWindows,
)

import benchlib
from tableprint import print_table

N_EVENTS = 60_000
N_KEYS = 64
N_SPLITS = 4
SOURCE_BATCH = 2048
WINDOW_S = 5.0
PARALLELISMS = (1, 2, 4)


def _elements(n: int) -> list[Element]:
    rng = np.random.default_rng(23)
    values = rng.normal(10.0, 4.0, size=n)
    keys = rng.integers(0, N_KEYS, size=n)
    return [Element(value=float(v), timestamp=i * 0.01, key=int(k))
            for i, (v, k) in enumerate(zip(values, keys))]


def _build_job(elements: list[Element]):
    builder = JobBuilder("p4-parallel")
    (builder.source("events", elements, splits=N_SPLITS)
            .with_watermarks(0.5, emit_every=32)
            .map(lambda v: v * 1.5 + 1.0, name="scale")
            .filter(lambda v: v > 4.0, name="drop_small")
            .window(TumblingWindows(WINDOW_S), "sum", name="window_sum")
            .sink("out"))
    return builder.build()


def _canonical_sink(sink) -> list[tuple]:
    return sorted((float(r.key), r.window.start, float(r.value), r.count)
                  for r in sink.values)


def run_experiment(n_events: int = N_EVENTS, repeats: int = 3) -> dict:
    elements = _elements(n_events)
    outputs: dict[int, list[tuple]] = {}
    makespans: dict[int, float] = {}
    modeled: dict[int, float] = {}
    for p in PARALLELISMS:
        # Best-of-N on the modelled makespan: lane busy times are wall
        # measurements, and scheduler jitter lands on one lane at a
        # time, inflating the per-cycle max — the fastest repeat is the
        # least skewed.  Sinks must agree on every repeat.
        for r in range(repeats):
            executor = ParallelExecutor(_build_job(elements), p)
            executor.run(source_batch=SOURCE_BATCH)
            out = _canonical_sink(executor.sinks["out"])
            assert outputs.setdefault(p, out) == out, (
                f"parallelism {p} diverged between repeats")
            if r == 0 or executor.modeled_makespan_s < makespans[p]:
                makespans[p] = executor.modeled_makespan_s
                modeled[p] = executor.modeled_speedup
    base = outputs[PARALLELISMS[0]]
    for p in PARALLELISMS[1:]:
        assert outputs[p] == base, (
            f"parallelism {p} diverged from the single-instance sinks")
    eps = {p: n_events / makespans[p] for p in PARALLELISMS}
    return {
        "config": {"n_events": n_events, "n_keys": N_KEYS,
                   "splits": N_SPLITS, "source_batch": SOURCE_BATCH,
                   "window_s": WINDOW_S},
        "parallel": {
            **{f"eps_p{p}": eps[p] for p in PARALLELISMS},
            **{f"speedup_p{p}": eps[p] / eps[1] for p in PARALLELISMS},
            **{f"lane_overlap_p{p}": modeled[p] for p in PARALLELISMS},
            "window_results": len(base),
        },
    }


def report(results: dict) -> None:
    par = results["parallel"]
    print_table(
        "P4  parallel scaling "
        f"({results['config']['n_events']} events, keyed window sum, "
        f"{results['config']['splits']} source splits)",
        ["parallelism", "modelled eps", "speedup vs p=1", "lane overlap"],
        [[str(p), par[f"eps_p{p}"], par[f"speedup_p{p}"],
          par[f"lane_overlap_p{p}"]] for p in PARALLELISMS],
        note="bit-identical sinks across parallelism (asserted); "
             "gate: speedup_p4 >= 1.5 (tools/check_perf.py)")


def bench_p4_parallel(benchmark):
    """pytest-benchmark entry: smaller stream, same invariants."""
    results = benchmark.pedantic(lambda: run_experiment(20_000),
                                 rounds=1, iterations=1)
    report(results)
    assert results["parallel"]["speedup_p4"] >= 1.5


def main() -> None:
    args = benchlib.bench_parser(__doc__,
                                 events_default=N_EVENTS).parse_args()
    results = run_experiment(args.events)
    report(results)
    # The P1 sections are owned by bench_p1_throughput.py; this bench
    # owns only the "parallel" key.
    benchlib.merge_section(args.out, "parallel", results)


if __name__ == "__main__":
    main()
