"""Regression tests for the metrics-registry bugfix sweep.

Each class pins one fixed defect:

- cross-type name re-use used to let ``snapshot()`` silently overwrite
  one family with another — it now raises ``MetricsError``;
- a registered-but-never-set gauge used to leak ``NaN`` into snapshots
  (invalid JSON downstream) — it is now skipped until first ``set()``;
- ``Summary.minimum``/``maximum`` used to rescan the raw Python list on
  every read instead of the cached array;
- summary snapshots now expose ``.count``/``.p50``/``.p99``.
"""

import json
import math

import numpy as np
import pytest

from repro.util.errors import MetricsError
from repro.util.metrics import MetricsRegistry, Summary


class TestTypedRegistry:
    def test_cross_type_reuse_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError, match="already registered as a "
                                               "counter"):
            registry.gauge("x")
        with pytest.raises(MetricsError):
            registry.summary("x")

    def test_error_names_both_kinds(self):
        registry = MetricsRegistry()
        registry.summary("lat")
        with pytest.raises(MetricsError, match=r"'lat'.*summary.*counter"):
            registry.counter("lat")

    def test_labels_do_not_split_the_family_type(self):
        """The kind is per family name, not per labelled key."""
        registry = MetricsRegistry()
        registry.counter("ops", node="a")
        with pytest.raises(MetricsError):
            registry.gauge("ops", node="b")

    def test_same_kind_reuse_is_fine(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        registry.counter("ops").inc()
        assert registry.snapshot()["ops"] == 2.0


class TestLabels:
    def test_labels_render_sorted_prometheus_style(self):
        registry = MetricsRegistry()
        registry.counter("op.processed", op="double", stage=1).inc(7)
        assert registry.snapshot()[
            "op.processed{op=double,stage=1}"] == 7.0

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("n", k="a").inc(1)
        registry.counter("n", k="b").inc(2)
        snap = registry.snapshot()
        assert snap["n{k=a}"] == 1.0
        assert snap["n{k=b}"] == 2.0


class TestGaugeNaN:
    def test_unset_gauge_skipped_by_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("depth")  # registered, never set
        registry.counter("ok").inc()
        snap = registry.snapshot()
        assert "depth" not in snap
        json.dumps(snap, allow_nan=False)  # the regression: used to raise

    def test_set_gauge_appears(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4.0)
        assert registry.snapshot()["depth"] == 4.0

    def test_gauge_inc_from_unset_starts_at_zero(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.inc(2.0)
        gauge.inc(-0.5)
        assert registry.snapshot()["depth"] == 1.5


class TestSummarySnapshot:
    def test_count_p50_p99_keys(self):
        registry = MetricsRegistry()
        summary = registry.summary("lat", op="map")
        for v in range(1, 101):
            summary.observe(float(v))
        snap = registry.snapshot()
        assert snap["lat{op=map}.count"] == 100.0
        assert snap["lat{op=map}.p50"] == pytest.approx(50.5)
        assert snap["lat{op=map}.p99"] == pytest.approx(99.01)
        assert snap["lat{op=map}.mean"] == pytest.approx(50.5)

    def test_empty_summary_reports_count_only(self):
        registry = MetricsRegistry()
        registry.summary("lat")
        snap = registry.snapshot()
        assert snap == {"lat.count": 0.0}
        json.dumps(snap, allow_nan=False)


class TestSummaryMinMaxCache:
    def test_min_max_values(self):
        summary = Summary()
        for v in [3.0, -1.0, 7.0, 2.0]:
            summary.observe(v)
        assert summary.minimum == -1.0
        assert summary.maximum == 7.0

    def test_min_max_go_through_the_cached_array(self):
        """Regression: min/max used to rescan the raw list per read."""
        summary = Summary()
        summary.observe(1.0)
        summary.observe(5.0)
        array = summary._as_array()
        assert summary._array is not None
        assert summary.minimum == 1.0 and summary.maximum == 5.0
        assert summary._array is array  # reads did not drop the cache

    def test_observe_invalidates_cache(self):
        summary = Summary()
        summary.observe(1.0)
        assert summary.maximum == 1.0
        summary.observe(9.0)
        assert summary.maximum == 9.0
        assert isinstance(summary._as_array(), np.ndarray)

    def test_empty_min_max_are_nan(self):
        summary = Summary()
        assert math.isnan(summary.minimum)
        assert math.isnan(summary.maximum)


class TestRetire:
    def test_retire_drops_one_instance_keeps_family(self):
        registry = MetricsRegistry()
        registry.gauge("subtask.processed", op="win[0]").set(10.0)
        registry.gauge("subtask.processed", op="win[1]").set(20.0)
        assert registry.retire("subtask.processed", op="win[1]") is True
        snap = registry.snapshot()
        assert 'subtask.processed{op=win[0]}' in snap
        assert 'subtask.processed{op=win[1]}' not in snap
        # the family survives: the name can be re-instantiated
        registry.gauge("subtask.processed", op="win[1]").set(5.0)
        assert registry.snapshot()['subtask.processed{op=win[1]}'] == 5.0

    def test_retire_unknown_is_false(self):
        registry = MetricsRegistry()
        assert registry.retire("never.seen", op="x") is False
        registry.counter("hits").inc()
        assert registry.retire("hits", op="wrong-labels") is False
        assert registry.retire("hits") is True

    def test_retire_respects_kind(self):
        registry = MetricsRegistry()
        registry.counter("events", op="a").inc(3.0)
        assert registry.retire("events", op="a") is True
        assert "events{op=a}" not in registry.snapshot()
