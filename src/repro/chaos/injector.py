"""The fault injector: counted hooks + the chaos log-cluster wrapper.

:class:`FaultInjector` owns a :class:`~repro.chaos.plan.FaultPlan` and a
set of monotonically increasing occurrence counters, one per (site,
identity).  Production code passes through the hooks; when a counter
enters a scheduled spec's window the injector fires — raising the
injected failure or returning a corruption directive — and records a
:class:`~repro.chaos.plan.FaultEvent` in ``trace``.  Counters live for
the injector's lifetime (not per run), so a crash-and-restore replay
does not re-trigger the same fault: the schedule moves strictly
forward, exactly like real time does.

Injected failures reuse the production exception types
(:class:`BrokerDown`, :class:`OperatorCrash`, :class:`TaskTimeout`,
:class:`TierDropout`) so recovery code cannot special-case chaos.

:class:`ChaosLogCluster` wraps a :class:`~repro.eventlog.broker.LogCluster`
and threads the data plane through the injector: append unavailability
windows, torn appends (applied but unacknowledged), real broker
outages with leader failover, and duplicate delivery on fetch.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..eventlog.broker import LogCluster
from ..eventlog.record import Record
from ..streaming.batch import RecordBatch, items_weight, take_prefix
from ..streaming.chain import ChainedOperator
from ..streaming.element import Element, StreamItem
from ..streaming.operators import Operator
from ..util.errors import (
    BrokerDown,
    CoordinatorDown,
    OperatorCrash,
    TaskTimeout,
    TierDropout,
)
from .plan import (
    SITE_APPEND,
    SITE_BARRIER,
    SITE_CHANNEL,
    SITE_CHECKPOINT,
    SITE_COORDINATOR,
    SITE_DATA,
    SITE_FETCH,
    SITE_OFFLOAD,
    SITE_OPERATOR,
    SITE_RESCALE,
    SITE_STALL,
    SITE_STORE,
    FaultEvent,
    FaultPlan,
    FaultSpec,
)

__all__ = ["FaultInjector", "ChaosLogCluster"]


class FaultInjector:
    """Executes a fault plan against counted injection sites."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.trace: list[FaultEvent] = []
        self._counts: dict[tuple[str, str | None], int] = {}
        self._armed: list[FaultSpec] = list(plan.specs)
        #: broker_down specs progress through pending -> failed -> done
        self._broker_stage: dict[int, str] = {
            i: "pending" for i, s in enumerate(plan.specs)
            if s.kind == "broker_down"
        }
        #: cheap feature flags the executor checks on the hot path so
        #: plans without channel/stall faults pay nothing per batch
        self.has_channel_faults = any(
            s.site == SITE_CHANNEL for s in plan.specs)
        self.has_stalls = any(
            s.kind == "subtask_stall" for s in plan.specs)
        self.has_data_faults = any(
            s.site == SITE_DATA for s in plan.specs)
        #: stall specs that already logged their window-entry event
        self._stalls_fired: set[int] = set()

    # -- bookkeeping ---------------------------------------------------------

    def count(self, site: str, identity: str | None = None) -> int:
        """Current occurrence count for a (site, identity) counter."""
        return self._counts.get((site, identity), 0)

    def trace_tuples(self) -> list[tuple]:
        """The fired-fault trace in comparable form (for reproducibility
        assertions: same seed, same trace)."""
        return [e.as_tuple() for e in self.trace]

    def _fire(self, spec: FaultSpec, identity: str, occurrence: int,
              detail: str = "") -> None:
        self.trace.append(FaultEvent(kind=spec.kind, site=spec.site,
                                     identity=identity,
                                     occurrence=occurrence, detail=detail))
        if spec.one_shot():
            self._armed.remove(spec)

    def _advance(self, site: str,
                 idents: Iterable[str | None]) -> dict[str | None, int]:
        """Increment every identity counter for one site call; returns
        the pre-increment occurrence indices."""
        before: dict[str | None, int] = {}
        for ident in idents:
            key = (site, ident)
            before[ident] = self._counts.get(key, 0)
            self._counts[key] = before[ident] + 1
        return before

    def _matching(self, site: str, kind: str,
                  before: dict[str | None, int]) -> FaultSpec | None:
        """First armed window spec of ``kind`` whose target counter sits
        inside [at, end) for this call."""
        for spec in self._armed:
            if spec.site != site or spec.kind != kind:
                continue
            if spec.target not in before:
                continue
            occurrence = before[spec.target]
            if spec.at <= occurrence < spec.end:
                return spec
        return None

    # -- streaming operator site --------------------------------------------

    @staticmethod
    def _base_name(name: str) -> str:
        """Strip a parallel subtask suffix: ``window[1]`` -> ``window``.
        Physical operator clones in a parallel plan carry the subtask
        index in brackets (see ParallelExecutor); the logical name is
        everything before it."""
        if name.endswith("]"):
            base, bracket, idx = name.rpartition("[")
            if bracket and idx[:-1].isdigit():
                return base
        return name

    @classmethod
    def _member_names(cls, op: Operator) -> set[str]:
        names = {op.name}
        if isinstance(op, ChainedOperator):
            names.update(member.name for member in op.operators)
        # A spec targeting a logical operator name matches any of its
        # subtask clones; targeting "name[i]" pins one subtask (the
        # occurrence counters stay per clone either way — they key on
        # the physical op.name).
        for name in list(names):
            base = cls._base_name(name)
            if base != name:
                names.add(base)
        return names

    def _crash_candidates(self, idents: set[str],
                          below: int) -> list[FaultSpec]:
        return [s for s in self._armed
                if s.site == SITE_OPERATOR and s.kind == "operator_crash"
                and (s.target is None or s.target in idents)
                and s.at < below]

    def intercept_batch(self, op: Operator, items: Iterable[StreamItem],
                        process: Callable[[list[StreamItem]],
                                          list[StreamItem]],
                        ) -> list[StreamItem]:
        """Run ``process`` over a batch, possibly crashing mid-batch.

        The occurrence counter is per execution node and counts stream
        items *entering* the node (chain targets count items entering
        the chain).  A crash scheduled at index ``at`` processes the
        prefix for real — mutating operator state — then raises
        :class:`OperatorCrash`; the partial outputs are lost in flight,
        exactly like a process dying between state update and emit.
        """
        items = list(items)
        total = items_weight(items)
        key = (SITE_OPERATOR, op.name)
        c = self._counts.get(key, 0)
        candidates = self._crash_candidates(self._member_names(op),
                                            below=c + total)
        if candidates:
            spec = min(candidates, key=lambda s: s.at)
            k = max(0, spec.at - c)
            self._counts[key] = c + k
            if k:
                process(take_prefix(items, k))  # partial progress; lost
            self._fire(spec, identity=op.name, occurrence=max(c, spec.at),
                       detail=f"mid-batch k={k}/{total}")
            raise OperatorCrash(
                f"injected crash in {op.name!r} at item index "
                f"{max(c, spec.at)}", op_name=op.name)
        self._counts[key] = c + total
        return process(items)

    def before_item(self, op: Operator) -> None:
        """Per-item twin of :meth:`intercept_batch`: called before each
        item is dispatched in per-item execution mode."""
        key = (SITE_OPERATOR, op.name)
        c = self._counts.get(key, 0)
        candidates = self._crash_candidates(self._member_names(op),
                                            below=c + 1)
        if candidates:
            spec = min(candidates, key=lambda s: s.at)
            self._fire(spec, identity=op.name, occurrence=c,
                       detail="per-item")
            raise OperatorCrash(
                f"injected crash in {op.name!r} at item index {c}",
                op_name=op.name)
        self._counts[key] = c + 1

    # -- data-fault site -----------------------------------------------------

    def data_directives(self, op: Operator, items: Iterable[StreamItem],
                        ) -> dict[int, tuple[str, Any, str]] | None:
        """Hook on each batch of items entering one (member) operator.

        Returns ``{element offset within this call: (kind, param,
        detail)}`` for records a :data:`~repro.chaos.plan.SITE_DATA`
        spec poisons, or ``None`` for a clean batch.  The counter is per
        physical operator clone and counts *elements* (a columnar batch
        advances it by its row count; watermarks and markers weigh
        nothing), so per-item, batched, chained and columnar execution
        poison the same records.  Chains call this once per member, so
        a fault targeting a fused operator lands on that member's input
        exactly as it would unfused.

        Unlike crash counters, data counters rewind with checkpoints
        (see :meth:`data_counts` / :meth:`restore_data_counts`): a fault
        window names *records*, not wall-clock occurrences, so replay
        after a crash must re-poison the same records — that is what
        keeps committed output identical to a crash-free run under the
        same data faults.
        """
        key = (SITE_DATA, op.name)
        c = self._counts.get(key, 0)
        total = 0
        for item in items:
            if type(item) is RecordBatch:
                total += len(item)
            elif isinstance(item, Element):
                total += 1
        self._counts[key] = c + total
        if total == 0:
            return None
        idents = self._member_names(op)
        directives: dict[int, tuple[str, Any, str]] = {}
        for spec in self._armed:
            if spec.site != SITE_DATA:
                continue
            if spec.target is not None and spec.target not in idents:
                continue
            lo = max(spec.at, c)
            hi = min(spec.end, c + total)
            for occurrence in range(lo, hi):
                local = occurrence - c
                if local in directives:
                    continue
                detail = (f"injected {spec.kind} in {op.name!r} at "
                          f"element {occurrence}")
                directives[local] = (spec.kind, spec.param, detail)
                self._fire(spec, identity=op.name,
                           occurrence=occurrence, detail=detail)
        return directives or None

    def data_counts(self) -> dict[str, int]:
        """The data-site counters, for inclusion in a checkpoint."""
        return {ident: count
                for (site, ident), count in self._counts.items()
                if site == SITE_DATA and ident is not None}

    def restore_data_counts(self, counts: dict[str, int]) -> None:
        """Rewind the data-site counters to a checkpoint's cut."""
        for key in [k for k in self._counts if k[0] == SITE_DATA]:
            del self._counts[key]
        for ident, count in counts.items():
            self._counts[(SITE_DATA, ident)] = count

    # -- checkpoint-storage site ---------------------------------------------

    def after_finalize(self, store: Any, checkpoint_id: int) -> None:
        """Hook after the coordinator's atomic commit of a checkpoint.
        A ``checkpoint_corruption`` spec silently damages the *stored*
        checkpoint — payload or manifest per ``param`` — leaving
        detection to the store's verification at restore time."""
        before = self._advance(SITE_CHECKPOINT, (None,))
        spec = self._matching(SITE_CHECKPOINT, "checkpoint_corruption",
                              before)
        if spec is not None:
            mode = spec.param if spec.param is not None else "payload"
            self._fire(spec, identity="store",
                       occurrence=before[spec.target],
                       detail=f"checkpoint {checkpoint_id} {mode}")
            store.corrupt(checkpoint_id, str(mode))

    # -- checkpoint-protocol sites -------------------------------------------

    def on_channel_offer(self, down: str, idx: int, up: str,
                         up_idx: int) -> dict[str, Any]:
        """Hook on each batch offered onto a physical channel.  Returns
        network-fault directives for the executor to apply:

        ``reorder``    reverse the batch before enqueueing
        ``duplicate``  re-deliver the last *n* items after the batch
        ``hold``       withhold the batch for *n* drain cycles (delay
                       and partition are both modelled as holds —
                       a partition is just a longer outage window)
        """
        before = self._advance(SITE_CHANNEL, (
            None, down, f"{up}->{down}", f"{down}[{idx}]<-{up}[{up_idx}]"))
        directives: dict[str, Any] = {}
        spec = self._matching(SITE_CHANNEL, "channel_reorder", before)
        if spec is not None:
            self._fire(spec, identity=spec.target or "*",
                       occurrence=before[spec.target],
                       detail=f"reorder {up}[{up_idx}]->{down}[{idx}]")
            directives["reorder"] = True
        spec = self._matching(SITE_CHANNEL, "channel_duplicate", before)
        if spec is not None:
            depth = spec.param if spec.param is not None else 1
            self._fire(spec, identity=spec.target or "*",
                       occurrence=before[spec.target],
                       detail=f"dup {depth} {up}[{up_idx}]->{down}[{idx}]")
            directives["duplicate"] = depth
        for kind, stretch in (("channel_delay", 1), ("channel_partition", 2)):
            spec = self._matching(SITE_CHANNEL, kind, before)
            if spec is not None:
                cycles = (spec.param if spec.param is not None
                          else 1) * stretch
                self._fire(spec, identity=spec.target or "*",
                           occurrence=before[spec.target],
                           detail=f"hold {cycles} "
                                  f"{up}[{up_idx}]->{down}[{idx}]")
                directives["hold"] = max(directives.get("hold", 0), cycles)
        return directives

    def stall_check(self, op: Operator, subtask: str) -> bool:
        """Hook once per macro cycle per subtask: is it fail-silent
        right now?  A stalled subtask neither drains its channels nor
        heartbeats, so only the coordinator's failure detector — not the
        data plane — can notice it."""
        idents = self._member_names(op) | {subtask,
                                           self._base_name(subtask)}
        before = self._advance(SITE_STALL, [None, *sorted(idents)])
        spec = self._matching(SITE_STALL, "subtask_stall", before)
        if spec is None:
            return False
        marker = self.plan.specs.index(spec)
        if marker not in self._stalls_fired:
            self._stalls_fired.add(marker)
            self._fire(spec, identity=subtask,
                       occurrence=before[spec.target],
                       detail=f"stall window x{spec.count}")
        return True

    def before_snapshot(self, op: Operator, subtask: str,
                        checkpoint_id: int) -> None:
        """Hook before a subtask snapshots on barrier passage.  The
        occurrence counter counts snapshots taken per subtask; a
        ``barrier_crash`` kills the subtask at the worst possible
        moment — mid-checkpoint, after alignment."""
        idents = self._member_names(op) | {subtask,
                                           self._base_name(subtask)}
        before = self._advance(SITE_BARRIER, [None, *sorted(idents)])
        spec = self._matching(SITE_BARRIER, "barrier_crash", before)
        if spec is not None:
            self._fire(spec, identity=subtask,
                       occurrence=before[spec.target],
                       detail=f"checkpoint {checkpoint_id}")
            raise OperatorCrash(
                f"injected crash in {subtask!r} while snapshotting "
                f"checkpoint {checkpoint_id}", op_name=subtask)

    def before_finalize(self, checkpoint_id: int) -> None:
        """Hook before the coordinator finalizes a checkpoint.  A
        ``coordinator_crash`` here abandons the pending checkpoint:
        the store never flips the manifest, sinks abort their sealed
        transactions, and a rebuilt coordinator resumes from the last
        finalized checkpoint."""
        before = self._advance(SITE_COORDINATOR, (None,))
        spec = self._matching(SITE_COORDINATOR, "coordinator_crash", before)
        if spec is not None:
            self._fire(spec, identity="coordinator",
                       occurrence=before[spec.target],
                       detail=f"checkpoint {checkpoint_id}")
            raise CoordinatorDown(
                f"injected coordinator crash before finalizing "
                f"checkpoint {checkpoint_id}")

    def before_rescale(self, phase: str) -> None:
        """Hook at each phase entry of a live rescale (see
        :data:`~repro.chaos.plan.RESCALE_PHASES`).  The counters are per
        phase plus a global one, so a plan can kill the supervisor "on
        the second savepoint" or "on any third phase entry".  A
        ``rescale_crash`` raises :class:`OperatorCrash` with
        ``op_name=None`` — the supervisor recovers the *old* executor
        from the last finalized checkpoint and retries the rescale, the
        same way a real control plane restarts after dying mid-scale."""
        before = self._advance(SITE_RESCALE, (None, phase))
        spec = self._matching(SITE_RESCALE, "rescale_crash", before)
        if spec is not None:
            self._fire(spec, identity=f"rescale:{phase}",
                       occurrence=before[spec.target],
                       detail=f"phase {phase}")
            raise OperatorCrash(
                f"injected supervisor crash during rescale phase "
                f"{phase!r}", op_name=None)

    def before_store_phase(self, phase: str,
                           shard: str | None = None) -> None:
        """Hook at each phase of a serving-store epoch apply (see
        :data:`~repro.chaos.plan.STORE_PHASES`).  Counters run per phase
        plus a global one (plus per shard when given), so a plan can
        kill the store "on the second apply" or "during any compaction".
        A ``store_crash`` raises :class:`OperatorCrash` with
        ``op_name=None`` — the harness restores the whole job from the
        last finalized checkpoint, and because the store only installs
        an epoch atomically (stage off to the side, swap in one step),
        the re-driven commit stream applies exactly the missing delta."""
        idents: tuple[str | None, ...] = (None, phase)
        if shard is not None:
            idents = (None, phase, shard)
        before = self._advance(SITE_STORE, idents)
        spec = self._matching(SITE_STORE, "store_crash", before)
        if spec is not None:
            self._fire(spec, identity=f"store:{phase}",
                       occurrence=before[spec.target],
                       detail=f"phase {phase}"
                              + (f" shard {shard}" if shard else ""))
            raise OperatorCrash(
                f"injected store crash during {phase!r}", op_name=None)

    # -- eventlog sites ------------------------------------------------------

    @staticmethod
    def _log_idents(topic: str, partition: int) -> tuple[str | None, ...]:
        return (None, topic, f"{topic}[{partition}]")

    def before_append(self, cluster: LogCluster, topic: str,
                      partition: int) -> dict[str, Any]:
        """Hook before an append attempt.  May fail/recover brokers,
        raise :class:`BrokerDown` (unavailability window), or direct the
        caller to tear the append (apply it, then lose the ack)."""
        before = self._advance(SITE_APPEND, self._log_idents(topic,
                                                             partition))
        self._run_broker_events(cluster, before)
        window = self._matching(SITE_APPEND, "partition_unavailable", before)
        if window is not None:
            self._fire(window, identity=window.target or "*",
                       occurrence=before[window.target],
                       detail=f"append {topic}[{partition}]")
            raise BrokerDown(
                f"injected: {topic}[{partition}] unavailable for appends")
        directives: dict[str, Any] = {}
        for spec in list(self._armed):
            if (spec.site == SITE_APPEND and spec.kind == "torn_append"
                    and spec.target in before
                    and before[spec.target] >= spec.at):
                self._fire(spec, identity=spec.target or "*",
                           occurrence=before[spec.target],
                           detail=f"torn {topic}[{partition}]")
                directives["torn"] = True
                break
        return directives

    def _run_broker_events(self, cluster: LogCluster,
                           before: dict[str | None, int]) -> None:
        for i, spec in enumerate(self.plan.specs):
            if spec.kind != "broker_down" or spec.target not in before:
                continue
            stage = self._broker_stage[i]
            occurrence = before[spec.target]
            if stage == "pending" and occurrence >= spec.at:
                cluster.fail_broker(spec.param)
                self._broker_stage[i] = "failed"
                self.trace.append(FaultEvent(
                    kind="broker_down", site=SITE_APPEND,
                    identity=f"broker:{spec.param}", occurrence=occurrence,
                    detail="fail"))
                stage = "failed"
            if stage == "failed" and occurrence >= spec.end:
                cluster.recover_broker(spec.param)
                self._broker_stage[i] = "done"
                self.trace.append(FaultEvent(
                    kind="broker_down", site=SITE_APPEND,
                    identity=f"broker:{spec.param}", occurrence=occurrence,
                    detail="recover"))

    def finish_broker_events(self, cluster: LogCluster) -> None:
        """Recover every broker still failed by an outage spec — the
        chaos analogue of 'the ops team eventually shows up'.  Call when
        the workload that advances the append counter has ended."""
        for i, spec in enumerate(self.plan.specs):
            if spec.kind == "broker_down" and \
                    self._broker_stage.get(i) == "failed":
                cluster.recover_broker(spec.param)
                self._broker_stage[i] = "done"
                self.trace.append(FaultEvent(
                    kind="broker_down", site=SITE_APPEND,
                    identity=f"broker:{spec.param}",
                    occurrence=self.count(SITE_APPEND), detail="recover"))

    def before_fetch(self, topic: str, partition: int) -> int:
        """Hook before a fetch.  May raise :class:`BrokerDown` or return
        a rewind depth to re-serve already-delivered records (duplicate
        delivery, the at-least-once failure mode consumers must absorb)."""
        before = self._advance(SITE_FETCH, self._log_idents(topic,
                                                            partition))
        window = self._matching(SITE_FETCH, "partition_unavailable", before)
        if window is not None:
            self._fire(window, identity=window.target or "*",
                       occurrence=before[window.target],
                       detail=f"fetch {topic}[{partition}]")
            raise BrokerDown(
                f"injected: {topic}[{partition}] unavailable for fetch")
        dup = self._matching(SITE_FETCH, "duplicate_delivery", before)
        if dup is not None:
            rewind = dup.param if dup.param is not None else 1
            self._fire(dup, identity=dup.target or "*",
                       occurrence=before[dup.target],
                       detail=f"rewind {rewind} on {topic}[{partition}]")
            return rewind
        return 0

    # -- offload site --------------------------------------------------------

    def before_offload(self, pipeline: str, tier: str) -> None:
        """Hook before executing a remotely-placed task attempt."""
        before = self._advance(SITE_OFFLOAD, (None, pipeline, tier))
        timeout = self._matching(SITE_OFFLOAD, "task_timeout", before)
        if timeout is not None:
            self._fire(timeout, identity=timeout.target or "*",
                       occurrence=before[timeout.target],
                       detail=f"{pipeline}@{tier}")
            raise TaskTimeout(
                f"injected: task {pipeline!r} timed out on {tier!r}")
        dropout = self._matching(SITE_OFFLOAD, "tier_dropout", before)
        if dropout is not None:
            self._fire(dropout, identity=dropout.target or "*",
                       occurrence=before[dropout.target],
                       detail=f"{pipeline}@{tier}")
            raise TierDropout(
                f"injected: tier {tier!r} dropped mid-task {pipeline!r}")


class ChaosLogCluster:
    """A :class:`LogCluster` proxy that routes the data plane through a
    :class:`FaultInjector`.

    Producers and consumers take it anywhere a cluster is expected
    (attribute access delegates), so the production retry/idempotence
    machinery is exercised unmodified.
    """

    def __init__(self, cluster: LogCluster, injector: FaultInjector) -> None:
        self._cluster = cluster
        self._injector = injector

    @property
    def cluster(self) -> LogCluster:
        return self._cluster

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    def __getattr__(self, name: str) -> Any:
        return getattr(self._cluster, name)

    def _after_append(self, directives: dict[str, Any], topic: str,
                      partition: int, offset: int) -> int:
        if directives.get("torn"):
            # The record is durably appended, but the acknowledgement is
            # lost — the ambiguous failure idempotent retry exists for.
            raise BrokerDown(
                f"injected: ack lost for {topic}[{partition}]@{offset} "
                "(append applied)")
        return offset

    def append(self, topic: str, partition: int, record: Record) -> int:
        directives = self._injector.before_append(self._cluster, topic,
                                                  partition)
        offset = self._cluster.append(topic, partition, record)
        return self._after_append(directives, topic, partition, offset)

    def append_idempotent(self, topic: str, partition: int, record: Record,
                          producer_id: int, sequence: int,
                          epoch: int = 0) -> int:
        directives = self._injector.before_append(self._cluster, topic,
                                                  partition)
        offset = self._cluster.append_idempotent(
            topic, partition, record, producer_id, sequence, epoch=epoch)
        return self._after_append(directives, topic, partition, offset)

    def read(self, topic: str, partition: int, offset: int,
             max_records: int = 512):
        rewind = self._injector.before_fetch(topic, partition)
        if rewind:
            offset = max(self._cluster.base_offset(topic, partition),
                         offset - rewind)
        return self._cluster.read(topic, partition, offset, max_records)

    def settle(self) -> None:
        """Finish any in-flight broker outages (recover failed brokers)."""
        self._injector.finish_broker_events(self._cluster)
