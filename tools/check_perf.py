#!/usr/bin/env python
"""Perf gate: tier-1 tests + a throughput smoke vs the committed baseline.

Runs the full tier-1 suite, then a short (~5 s) run of
``benchmarks/bench_p1_throughput.py`` and compares batched/chained
elements-per-second against the committed ``benchmarks/BENCH_streaming.json``.
Fails (exit 1) if either regresses more than ``--tolerance`` (default
20%) — the guard that keeps future PRs from quietly giving back the
batched-execution win.

Also runs ``benchmarks/bench_p4_parallel.py`` and gates the *modelled*
parallel scaling: the keyed-window workload at parallelism 4 must model
at least ``--min-parallel-speedup`` (default 1.5x) over parallelism 1.
The gate is absolute, not baseline-relative — a modelled ratio is
machine-speed-robust, so any plan that stops overlapping subtask work
fails regardless of where it runs.

Usage:  python tools/check_perf.py [--events N] [--tolerance 0.2]
        python tools/check_perf.py --skip-tests   # bench gate only
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "BENCH_streaming.json"
GATED = ["batched_eps", "chained_eps"]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def run_tests() -> bool:
    print("== tier-1 test suite ==", flush=True)
    proc = subprocess.run([sys.executable, "-m", "pytest", "-x", "-q"],
                          cwd=REPO, env=_env())
    return proc.returncode == 0


def run_bench_smoke(events: int) -> dict | None:
    print(f"\n== throughput smoke ({events} events) ==", flush=True)
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "bench_p1_throughput.py"),
             "--events", str(events), "--out", str(out)],
            cwd=REPO, env=_env())
        if proc.returncode != 0:
            return None
        return json.loads(out.read_text())


def run_parallel_smoke(events: int) -> dict | None:
    print(f"\n== parallel scaling smoke ({events} events) ==", flush=True)
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [sys.executable,
             str(REPO / "benchmarks" / "bench_p4_parallel.py"),
             "--events", str(events), "--out", str(out)],
            cwd=REPO, env=_env())
        if proc.returncode != 0:
            return None
        return json.loads(out.read_text())


def check_parallel_speedup(current: dict, minimum: float) -> bool:
    speedup = current["parallel"]["speedup_p4"]
    status = "ok" if speedup >= minimum else "TOO SLOW"
    print(f"\n== parallel scaling gate (minimum {minimum:.2f}x) ==")
    print(f"     speedup_p4: {speedup:10.2f}x  (absolute floor "
          f"{minimum:.2f}x)  {status}")
    return speedup >= minimum


def check_regression(current: dict, tolerance: float) -> bool:
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run "
              "benchmarks/bench_p1_throughput.py to create one")
        return True
    baseline = json.loads(BASELINE.read_text())
    ok = True
    print(f"\n== regression gate (tolerance {tolerance:.0%}) ==")
    same_size = (current["config"]["n_events"]
                 == baseline["config"]["n_events"])
    if same_size:
        # Absolute throughput only compares like-for-like stream sizes
        # (fixed costs amortize differently on a smoke-sized stream).
        for key in GATED:
            base = baseline["throughput"][key]
            now = current["throughput"][key]
            ratio = now / base
            status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
            if status == "REGRESSED":
                ok = False
            print(f"  {key:>15}: baseline {base:12.0f}/s  "
                  f"now {now:12.0f}/s  ({ratio:6.1%})  {status}")
    else:
        print(f"  (stream sizes differ — {current['config']['n_events']} vs "
              f"baseline {baseline['config']['n_events']} — skipping "
              "absolute eps; gating size-robust speedup ratios)")
    # Speedup vs the per-item baseline is a within-run ratio, robust to
    # stream size and machine speed; gate it unconditionally.
    for key in ("speedup_batched", "speedup_chained"):
        base = baseline["throughput"][key]
        now = current["throughput"][key]
        ratio = now / base
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        if status == "REGRESSED":
            ok = False
        print(f"  {key:>15}: baseline {base:10.2f}x   now {now:10.2f}x   "
              f"({ratio:6.1%})  {status}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=30_000,
                        help="smoke-run stream size (default keeps the "
                             "bench near 5 seconds)")
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--min-parallel-speedup", type=float, default=1.5)
    parser.add_argument("--skip-tests", action="store_true")
    args = parser.parse_args()

    if not args.skip_tests and not run_tests():
        print("\ncheck_perf: FAIL (tier-1 tests)")
        return 1
    current = run_bench_smoke(args.events)
    if current is None:
        print("\ncheck_perf: FAIL (benchmark crashed)")
        return 1
    if not check_regression(current, args.tolerance):
        print("\ncheck_perf: FAIL (throughput regression)")
        return 1
    parallel = run_parallel_smoke(args.events)
    if parallel is None:
        print("\ncheck_perf: FAIL (parallel benchmark crashed)")
        return 1
    if not check_parallel_speedup(parallel, args.min_parallel_speedup):
        print("\ncheck_perf: FAIL (parallel scaling below floor)")
        return 1
    print("\ncheck_perf: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
