"""Log-structured hot store: the headset-facing point-lookup tier.

The paper's serving split (Sec 4.1) needs "latest state for this key"
answered in microseconds while ingest runs continuously.  This module
is the write-optimized half of the tiered store:

- **Shards** own contiguous key-group ranges (the same FNV key-group →
  range assignment the streaming engine shuffles by, see
  :mod:`repro.streaming.shuffle`), so a key's serving shard is as
  deterministic as its processing subtask.
- Each shard is a small LSM tree: an append-only **memtable** (dict of
  per-key version lists) absorbing writes at O(1), flushed into
  immutable **sorted runs** whose rows order by
  ``(key, -timestamp, -seq)`` — reverse-timestamp row keys, so "latest
  N versions of a key" is a prefix scan from one bisect.
- **Size-tiered compaction** merges runs of similar size when a tier
  collects ``tier_fanout`` of them, bounding run count (and therefore
  lookup fan-out) logarithmically in total rows.
- **TTL expiry** runs on :class:`~repro.util.clock.SimClock`: reads
  filter expired versions, compaction drops them, and ``expire()``
  forces a deterministic full sweep — no wall clock anywhere.

Mutations enter **only** through :meth:`HotShard.apply_epoch`, the
install half of the store's epoch-apply protocol (see
:mod:`repro.store.sink`): all failure-prone work (key encoding, list
building) happens while staging; the install is a short sequence of
container mutations ending with ``last_applied_epoch = epoch``, so a
crash at any injected fault site leaves the shard either fully at the
old epoch or fully at the new one — never in between.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable

from ..streaming.shuffle import (
    DEFAULT_KEY_GROUPS,
    key_group_for,
    subtask_for_key_group,
)
from ..util.clock import SimClock
from ..util.errors import StoreError

__all__ = ["HotShard", "HotStore", "SortedRun", "key_repr"]


def key_repr(key: Any) -> str:
    """Canonical row-key form of a stream key: its ``repr``.

    The same canonicalization :func:`key_group_for` hashes, so row
    ordering and shard routing agree on what a key *is*.
    """
    return repr(key)


class SortedRun:
    """One immutable sorted run.

    Rows are ``(key_repr, -timestamp, -seq, timestamp, value)`` tuples
    sorted by their first three fields; values are never compared.  A
    probe tuple ``(key_repr,)`` bisects to the first (newest) row of
    the key — prefix scans from there are the whole read API.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: list[tuple]) -> None:
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def scan_key(self, kr: str, limit: int,
                 min_ts: float | None) -> list[tuple[float, int, Any]]:
        """Up to ``limit`` newest live versions of one key:
        ``(timestamp, seq, value)`` tuples, newest first."""
        rows = self.rows
        i = bisect_left(rows, (kr,))
        out: list[tuple[float, int, Any]] = []
        while i < len(rows) and len(out) < limit:
            row = rows[i]
            if row[0] != kr:
                break
            ts = row[3]
            if min_ts is None or ts >= min_ts:
                out.append((ts, -row[2], row[4]))
            i += 1
        return out

    def live_rows(self, min_ts: float | None) -> Iterable[tuple]:
        if min_ts is None:
            return iter(self.rows)
        return (row for row in self.rows if row[3] >= min_ts)


class HotShard:
    """One key-range shard: memtable + sorted runs + compaction."""

    def __init__(self, shard_id: int, *, clock: SimClock | None = None,
                 ttl_s: float | None = None, memtable_limit: int = 4096,
                 tier_fanout: int = 4) -> None:
        if memtable_limit < 1:
            raise StoreError("memtable_limit must be >= 1")
        if tier_fanout < 2:
            raise StoreError("tier_fanout must be >= 2")
        self.shard_id = shard_id
        self.clock = clock
        self.ttl_s = ttl_s
        self.memtable_limit = memtable_limit
        self.tier_fanout = tier_fanout
        #: epoch of the last applied commit; the double-apply guard
        self.last_applied_epoch = 0
        #: key_repr -> [(ts, seq, value), ...] in apply order
        self._mem: dict[str, list[tuple[float, int, Any]]] = {}
        self._mem_rows = 0
        self._runs: list[SortedRun] = []
        self._seq = 0
        self.flushes = 0
        self.compactions = 0

    # -- TTL -----------------------------------------------------------------

    def _min_ts(self) -> float | None:
        if self.ttl_s is None or self.clock is None:
            return None
        return self.clock.now - self.ttl_s

    # -- epoch apply (the only mutation path) --------------------------------

    def stage_epoch(self, epoch: int, rows: list[tuple[str, float, Any]]
                    ) -> tuple | None:
        """Build everything the install needs, off to the side.

        ``rows`` are ``(key_repr, timestamp, value)`` in commit order.
        Returns an opaque staged token (or ``None`` when the epoch is
        already applied — restore/rescale re-drives hit this guard).
        Nothing observable changes; a crash after staging costs only
        the scratch work.
        """
        if epoch <= self.last_applied_epoch:
            return None
        base = self._seq
        merged: dict[str, list[tuple[float, int, Any]]] = {}
        for offset, (kr, ts, value) in enumerate(rows):
            bucket = merged.get(kr)
            if bucket is None:
                bucket = merged[kr] = list(self._mem.get(kr, ()))
            bucket.append((ts, base + offset, value))
        return (epoch, merged, len(rows), base + len(rows))

    def install_epoch(self, staged: tuple | None) -> int:
        """Install a staged epoch atomically: one dict update plus
        counter flips.  Idempotent via the epoch guard."""
        if staged is None:
            return 0
        epoch, merged, n_rows, next_seq = staged
        if epoch <= self.last_applied_epoch:
            return 0
        self._mem.update(merged)
        self._mem_rows += n_rows
        self._seq = next_seq
        self.last_applied_epoch = epoch
        return n_rows

    def apply_epoch(self, epoch: int,
                    rows: list[tuple[str, float, Any]]) -> int:
        """Stage + install in one call (unit tests and the facade)."""
        return self.install_epoch(self.stage_epoch(epoch, rows))

    # -- flush / compaction --------------------------------------------------

    def maintain(self) -> None:
        """Flush an over-limit memtable, then rebalance tiers."""
        if self._mem_rows >= self.memtable_limit:
            self.flush()
        self.compact()

    def flush(self) -> None:
        """Freeze the memtable into one sorted run (atomic swap)."""
        if not self._mem_rows:
            return
        rows = [(kr, -ts, -seq, ts, value)
                for kr, versions in self._mem.items()
                for ts, seq, value in versions]
        rows.sort(key=lambda r: (r[0], r[1], r[2]))
        run = SortedRun(rows)
        self._runs = self._runs + [run]
        self._mem = {}
        self._mem_rows = 0
        self.flushes += 1

    def _tier_of(self, run: SortedRun) -> int:
        tier, size = 0, len(run)
        while size >= self.memtable_limit:
            size //= self.tier_fanout
            tier += 1
        return tier

    def compact(self) -> None:
        """Size-tiered: when any tier holds ``tier_fanout`` runs, merge
        them into one (dropping expired versions).  The merged run is
        built fully before the run list is swapped, so a crash during
        the merge leaves the old runs — and every answer — intact."""
        while True:
            tiers: dict[int, list[SortedRun]] = {}
            for run in self._runs:
                tiers.setdefault(self._tier_of(run), []).append(run)
            victims = next((runs for runs in tiers.values()
                            if len(runs) >= self.tier_fanout), None)
            if victims is None:
                return
            min_ts = self._min_ts()
            merged_rows = [row for run in victims
                           for row in run.live_rows(min_ts)]
            merged_rows.sort(key=lambda r: (r[0], r[1], r[2]))
            merged = SortedRun(merged_rows)
            dead = set(map(id, victims))
            self._runs = [r for r in self._runs
                          if id(r) not in dead] + [merged]
            self.compactions += 1

    def expire(self) -> None:
        """Deterministic TTL sweep on the SimClock: flush, then rewrite
        every run without expired versions (one atomic swap)."""
        min_ts = self._min_ts()
        if min_ts is None:
            return
        self.flush()
        rewritten = []
        for run in self._runs:
            rows = [row for row in run.live_rows(min_ts)]
            if rows:
                rewritten.append(SortedRun(rows))
        self._runs = rewritten

    # -- reads ---------------------------------------------------------------

    def latest(self, key: Any, n: int = 1) -> list[tuple[float, Any]]:
        """Newest ``n`` live versions: ``[(timestamp, value), ...]``,
        newest first.  Memtable first (it holds the newest writes),
        then a bisected prefix scan per run; candidates merge by
        ``(timestamp, seq)`` so same-timestamp writes resolve to the
        latest applied."""
        if n < 1:
            raise StoreError("latest() needs n >= 1")
        kr = key_repr(key)
        min_ts = self._min_ts()
        candidates: list[tuple[float, int, Any]] = []
        versions = self._mem.get(kr)
        if versions:
            # All memtable versions compete: event time is not apply
            # order, so the newest-by-timestamp version can sit
            # anywhere in the list.
            candidates.extend(
                versions if min_ts is None else
                (v for v in versions if v[0] >= min_ts))
        for run in self._runs:
            candidates.extend(run.scan_key(kr, n, min_ts))
        candidates.sort(key=lambda c: (-c[0], -c[1]))
        return [(ts, value) for ts, _seq, value in candidates[:n]]

    def contents(self) -> dict[str, list[tuple[float, Any]]]:
        """Canonical dump: key_repr -> all live versions newest-first.
        The chaos suite compares this across crashed and fault-free
        runs, so it must be independent of memtable/run structure."""
        min_ts = self._min_ts()
        acc: dict[str, list[tuple[float, int, Any]]] = {}
        for kr, versions in self._mem.items():
            for ts, seq, value in versions:
                if min_ts is None or ts >= min_ts:
                    acc.setdefault(kr, []).append((ts, seq, value))
        for run in self._runs:
            for row in run.live_rows(min_ts):
                acc.setdefault(row[0], []).append((row[3], -row[2], row[4]))
        out: dict[str, list[tuple[float, Any]]] = {}
        for kr in sorted(acc):
            versions = sorted(acc[kr], key=lambda c: (-c[0], -c[1]))
            out[kr] = [(ts, value) for ts, _seq, value in versions]
        return out

    @property
    def rows(self) -> int:
        return self._mem_rows + sum(len(run) for run in self._runs)

    def stats(self) -> dict[str, Any]:
        return {"shard": self.shard_id, "rows": self.rows,
                "memtable_rows": self._mem_rows, "runs": len(self._runs),
                "flushes": self.flushes, "compactions": self.compactions,
                "last_applied_epoch": self.last_applied_epoch}


class HotStore:
    """Sharded hot store: routes keys the way the engine does."""

    def __init__(self, *, num_shards: int = 8,
                 num_key_groups: int = DEFAULT_KEY_GROUPS,
                 clock: SimClock | None = None, ttl_s: float | None = None,
                 memtable_limit: int = 4096, tier_fanout: int = 4) -> None:
        if num_shards < 1:
            raise StoreError("need at least one shard")
        if num_key_groups < num_shards:
            raise StoreError("num_key_groups must be >= num_shards")
        self.num_shards = num_shards
        self.num_key_groups = num_key_groups
        self.shards = [HotShard(i, clock=clock, ttl_s=ttl_s,
                                memtable_limit=memtable_limit,
                                tier_fanout=tier_fanout)
                       for i in range(num_shards)]

    def shard_for(self, key: Any) -> HotShard:
        group = key_group_for(key, self.num_key_groups)
        return self.shards[subtask_for_key_group(
            group, self.num_key_groups, self.num_shards)]

    def latest(self, key: Any, n: int = 1) -> list[tuple[float, Any]]:
        return self.shard_for(key).latest(key, n)

    def point(self, key: Any) -> Any | None:
        """Newest live value for ``key`` (overlay binding), or None."""
        versions = self.latest(key, 1)
        return versions[0][1] if versions else None

    def maintain(self) -> None:
        for shard in self.shards:
            shard.maintain()

    def expire(self) -> None:
        for shard in self.shards:
            shard.expire()

    def contents(self) -> dict[str, list[tuple[float, Any]]]:
        out: dict[str, list[tuple[float, Any]]] = {}
        for shard in self.shards:
            out.update(shard.contents())
        return dict(sorted(out.items()))

    @property
    def rows(self) -> int:
        return sum(shard.rows for shard in self.shards)

    def last_applied_epochs(self) -> list[int]:
        return [shard.last_applied_epoch for shard in self.shards]

    def stats(self) -> dict[str, Any]:
        return {"shards": [s.stats() for s in self.shards],
                "rows": self.rows}
