"""Unit tests: camera model, poses, homography, RANSAC, planar pose."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.vision import (
    CameraIntrinsics,
    Pose,
    apply_homography,
    estimate_homography,
    look_at,
    pose_from_homography,
    ransac_homography,
    reprojection_error,
)
from repro.util.errors import CalibrationError, VisionError

INTR = CameraIntrinsics(fx=500, fy=500, cx=320, cy=240, width=640,
                        height=480)


class TestCameraIntrinsics:
    def test_project_center_point(self):
        px = INTR.project(np.array([[0.0, 0.0, 2.0]]))
        assert px[0] == pytest.approx([320.0, 240.0])

    def test_project_offset_point(self):
        px = INTR.project(np.array([[1.0, 0.5, 2.0]]))
        assert px[0] == pytest.approx([320 + 250, 240 + 125])

    def test_behind_camera_is_nan(self):
        px = INTR.project(np.array([[0.0, 0.0, -1.0]]))
        assert np.isnan(px).all()

    def test_unproject_roundtrip(self):
        points = np.array([[0.3, -0.2, 2.0], [1.0, 1.0, 5.0]])
        pixels = INTR.project(points)
        back = INTR.unproject(pixels, points[:, 2])
        assert np.allclose(back, points)

    def test_in_view(self):
        pixels = np.array([[10.0, 10.0], [-5.0, 10.0], [np.nan, 1.0]])
        assert list(INTR.in_view(pixels)) == [True, False, False]

    def test_bad_focal_rejected(self):
        with pytest.raises(CalibrationError):
            CameraIntrinsics(fx=0, fy=1, cx=0, cy=0, width=10, height=10)


class TestPose:
    def test_identity_transform(self):
        pose = Pose.identity()
        points = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(pose.transform(points), points)

    def test_non_orthonormal_rejected(self):
        with pytest.raises(CalibrationError):
            Pose(np.ones((3, 3)), np.zeros(3))

    def test_inverse_composes_to_identity(self):
        pose = look_at(eye=[1.0, 2.0, -3.0], target=[0.0, 0.0, 0.0])
        both = pose.compose(pose.inverse())
        assert np.allclose(both.rotation, np.eye(3), atol=1e-9)
        assert np.allclose(both.translation, 0.0, atol=1e-9)

    def test_camera_center(self):
        eye = np.array([1.0, 2.0, -3.0])
        pose = look_at(eye=eye, target=[0.0, 0.0, 0.0])
        assert np.allclose(pose.camera_center, eye, atol=1e-9)

    def test_look_at_points_camera_at_target(self):
        pose = look_at(eye=[0.0, 0.0, -2.0], target=[0.0, 0.0, 0.0])
        cam = pose.transform(np.array([[0.0, 0.0, 0.0]]))
        assert cam[0, 2] == pytest.approx(2.0)  # in front, +z
        assert cam[0, :2] == pytest.approx([0.0, 0.0])

    def test_rotation_distance(self):
        a = look_at(eye=[0, 0, -2], target=[0, 0, 0])
        assert a.rotation_angle_to(a) == pytest.approx(0.0, abs=1e-7)

    def test_degenerate_look_at_rejected(self):
        with pytest.raises(CalibrationError):
            look_at(eye=[0, 0, 0], target=[0, 0, 0])


class TestHomography:
    def _random_h(self, rng):
        h = np.eye(3) + rng.normal(0, 0.1, size=(3, 3))
        h[2, 2] = 1.0
        return h

    def test_recovers_exact_homography(self):
        rng = make_rng(0)
        h_true = self._random_h(rng)
        src = rng.uniform(0, 100, size=(20, 2))
        dst = apply_homography(h_true, src)
        h_est = estimate_homography(src, dst)
        assert np.allclose(h_est, h_true / h_true[2, 2], atol=1e-6)

    def test_minimum_four_points(self):
        rng = make_rng(1)
        h_true = self._random_h(rng)
        src = rng.uniform(0, 100, size=(4, 2))
        dst = apply_homography(h_true, src)
        h_est = estimate_homography(src, dst)
        assert np.max(reprojection_error(h_est, src, dst)) < 1e-6

    def test_too_few_points_rejected(self):
        with pytest.raises(VisionError):
            estimate_homography(np.zeros((3, 2)), np.zeros((3, 2)))

    def test_degenerate_collinear_rejected(self):
        src = np.array([[0, 0], [1, 1], [2, 2], [3, 3]], dtype=float)
        with pytest.raises(VisionError):
            estimate_homography(src, src)

    def test_identity_on_same_points(self):
        rng = make_rng(2)
        src = rng.uniform(0, 50, size=(10, 2))
        h = estimate_homography(src, src)
        assert np.allclose(h, np.eye(3), atol=1e-8)


class TestRansac:
    def test_rejects_outliers(self):
        rng = make_rng(3)
        h_true = np.array([[1.1, 0.02, 5.0], [-0.01, 0.95, -3.0],
                           [1e-4, -1e-4, 1.0]])
        src = rng.uniform(0, 200, size=(60, 2))
        dst = apply_homography(h_true, src)
        dst += rng.normal(0, 0.5, size=dst.shape)  # inlier noise
        outliers = rng.choice(60, size=20, replace=False)
        dst[outliers] += rng.uniform(30, 80, size=(20, 2))
        result = ransac_homography(src, dst, rng, threshold=3.0)
        assert result.num_inliers >= 35
        assert not result.inlier_mask[outliers].all()
        errors = reprojection_error(result.homography, src, dst)
        assert np.median(errors[result.inlier_mask]) < 2.0

    def test_all_inliers(self):
        rng = make_rng(4)
        src = rng.uniform(0, 100, size=(20, 2))
        dst = src + np.array([10.0, -5.0])
        result = ransac_homography(src, dst, rng)
        assert result.num_inliers == 20

    def test_too_few_points_rejected(self):
        rng = make_rng(5)
        with pytest.raises(VisionError):
            ransac_homography(np.zeros((3, 2)), np.zeros((3, 2)), rng)


class TestPoseFromHomography:
    def test_recovers_known_pose(self):
        # World plane Z=0; choose a camera looking at it.
        pose_true = look_at(eye=[0.3, 0.2, -1.5], target=[0.25, 0.25, 0.0])
        world_pts = np.array([[x, y, 0.0]
                              for x in np.linspace(0, 0.5, 5)
                              for y in np.linspace(0, 0.5, 5)])
        pixels = INTR.project(pose_true.transform(world_pts))
        h = estimate_homography(world_pts[:, :2], pixels)
        pose_est = pose_from_homography(h, INTR)
        assert pose_true.translation_distance_to(pose_est) < 0.01
        assert pose_true.rotation_angle_to(pose_est) < 0.01
