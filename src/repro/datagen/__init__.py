"""Synthetic workload generators for every paper scenario."""

from .buildings import Building, ExcavationSite, SensorGrid, WindField
from .health import (
    VITALS,
    Episode,
    Patient,
    VitalSample,
    VitalSpec,
    generate_patients,
    vitals_stream,
)
from .mobility import (
    MobilityConfig,
    Trace,
    generate_population,
    generate_trace,
)
from .retail import GazeEvent, Product, RetailWorld, Shopper
from .social import SocialPost, SocialStreamConfig, generate_posts
from .traffic import Beacon, RingRoadSim, VehicleState
from .workload import LoadProfile, diurnal_flash_events

__all__ = [
    "Building",
    "ExcavationSite",
    "SensorGrid",
    "WindField",
    "VITALS",
    "Episode",
    "Patient",
    "VitalSample",
    "VitalSpec",
    "generate_patients",
    "vitals_stream",
    "MobilityConfig",
    "Trace",
    "generate_population",
    "generate_trace",
    "GazeEvent",
    "Product",
    "RetailWorld",
    "Shopper",
    "SocialPost",
    "SocialStreamConfig",
    "generate_posts",
    "Beacon",
    "RingRoadSim",
    "VehicleState",
    "LoadProfile",
    "diurnal_flash_events",
]
