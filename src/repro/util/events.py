"""A tiny synchronous publish/subscribe bus.

Used for decoupled in-process signalling: the pipeline publishes
lifecycle events ("frame-rendered", "checkpoint-complete"), tests and
metrics collectors subscribe.  Handlers run synchronously in
subscription order; exceptions propagate to the publisher (errors should
never pass silently in a simulation).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

__all__ = ["EventBus"]

Handler = Callable[[Any], None]


class EventBus:
    """Synchronous topic-keyed pub/sub."""

    def __init__(self) -> None:
        self._handlers: defaultdict[str, list[Handler]] = defaultdict(list)
        self._counts: defaultdict[str, int] = defaultdict(int)

    def subscribe(self, topic: str, handler: Handler) -> Callable[[], None]:
        """Register ``handler`` for ``topic``; returns an unsubscribe thunk."""
        self._handlers[topic].append(handler)

        def unsubscribe() -> None:
            try:
                self._handlers[topic].remove(handler)
            except ValueError:
                pass  # already unsubscribed; idempotent

        return unsubscribe

    def publish(self, topic: str, payload: Any = None) -> int:
        """Deliver ``payload`` to every handler; returns delivery count."""
        self._counts[topic] += 1
        handlers = list(self._handlers.get(topic, ()))
        for handler in handlers:
            handler(payload)
        return len(handlers)

    def publish_count(self, topic: str) -> int:
        """How many times ``topic`` has been published."""
        return self._counts[topic]

    def handler_count(self, topic: str) -> int:
        return len(self._handlers.get(topic, ()))
