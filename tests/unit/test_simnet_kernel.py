"""Unit tests: discrete-event kernel, queueing, failures."""

import pytest

from repro.simnet import (
    FailureEvent,
    FailureInjector,
    LinkSpec,
    NodeSpec,
    ProcessingQueue,
    QueuedTask,
    Simulator,
    Topology,
)
from repro.util.errors import ConfigError, SimulationError
from repro.util.rng import make_rng


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(2.0, lambda: order.append("late"))
        sim.schedule_at(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        ran = []
        handle = sim.schedule_at(1.0, lambda: ran.append(1))
        handle.cancel()
        sim.run()
        assert ran == []
        assert sim.processed == 0

    def test_run_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.pending == 1
        assert sim.now == 5.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        hits = []

        def chain():
            hits.append(sim.now)
            if len(hits) < 3:
                sim.schedule_after(1.0, chain)

        sim.schedule_at(0.0, chain)
        sim.run()
        assert hits == [0.0, 1.0, 2.0]

    def test_schedule_every_repeats_until_bound(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_schedule_every_cancel_stops_series(self):
        sim = Simulator()
        ticks = []
        series = sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        sim.schedule_at(2.5, series.cancel)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule_at(float(i), lambda: None)
        ran = sim.run(max_events=4)
        assert ran == 4
        assert sim.pending == 6


class TestProcessingQueue:
    def test_single_server_serializes(self):
        sim = Simulator()
        queue = ProcessingQueue(sim, cores=1)
        for i in range(3):
            queue.submit(QueuedTask(name=f"t{i}", service_time=2.0))
        sim.run()
        finished = [t.finished_at for t in queue.completed]
        assert finished == [2.0, 4.0, 6.0]

    def test_parallel_servers(self):
        sim = Simulator()
        queue = ProcessingQueue(sim, cores=3)
        for i in range(3):
            queue.submit(QueuedTask(name=f"t{i}", service_time=2.0))
        sim.run()
        assert all(t.finished_at == 2.0 for t in queue.completed)

    def test_wait_time_accounting(self):
        sim = Simulator()
        queue = ProcessingQueue(sim, cores=1)
        queue.submit(QueuedTask(name="a", service_time=3.0))
        queue.submit(QueuedTask(name="b", service_time=1.0))
        sim.run()
        b = next(t for t in queue.completed if t.name == "b")
        assert b.wait_time == 3.0
        assert b.sojourn_time == 4.0

    def test_on_done_callback(self):
        sim = Simulator()
        queue = ProcessingQueue(sim, cores=1)
        done = []
        queue.submit(QueuedTask(name="a", service_time=1.0,
                                on_done=lambda t: done.append(t.name)))
        sim.run()
        assert done == ["a"]

    def test_negative_service_rejected(self):
        sim = Simulator()
        queue = ProcessingQueue(sim)
        with pytest.raises(SimulationError):
            queue.submit(QueuedTask(name="bad", service_time=-1.0))


class TestFailureInjector:
    def _topology(self):
        topology = Topology(make_rng(0))
        topology.add_node(NodeSpec("n1", cpu_hz=1e9))
        return topology

    def test_scripted_outage(self):
        sim = Simulator()
        topology = self._topology()
        injector = FailureInjector(sim, topology)
        injector.schedule(FailureEvent(node="n1", down_at=1.0, up_at=2.0))
        sim.run(until=1.5)
        assert not topology.node("n1").up
        sim.run()
        assert topology.node("n1").up

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigError):
            FailureEvent(node="n1", down_at=2.0, up_at=1.0)

    def test_random_outages_within_horizon(self):
        sim = Simulator()
        topology = self._topology()
        injector = FailureInjector(sim, topology)
        count = injector.schedule_random("n1", make_rng(3), horizon=1000.0,
                                         mtbf=100.0, mttr=10.0)
        assert count >= 1
        assert all(e.up_at <= 1000.0 for e in injector.injected)
        sim.run()
        assert topology.node("n1").up
