"""Live edge-vs-core tier selection.

The static offload experiments pick a tier once and keep it; a
geo-distributed deployment cannot — an edge server three hops away is
only the right serving tier *while its links hold*.
:class:`LiveTierSelector` re-prices the candidate tiers (edge servers
and the core cloud) against the **current** simnet topology on every
call: a tier that is down, partitioned away, or saturated prices as
unreachable and falls out of the running, so a session degrades from
edge to core (and comes back after heal) without any static
configuration.

Selection is sticky: switching tiers costs a session handoff
(state migration — see :meth:`repro.geo.GeoDeployment.handoff`), so
the current tier is kept unless a rival beats it by the hysteresis
factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..util.errors import NetworkError, OffloadError

__all__ = ["TierDecision", "LiveTierSelector"]


@dataclass(frozen=True)
class TierDecision:
    """One serving-tier choice for one device, with the live prices."""

    device: str
    node: str
    region: str
    rtt_s: float
    switched: bool
    #: every candidate's live round-trip estimate (unreachable = inf)
    candidates: dict[str, float] = field(default_factory=dict)


class LiveTierSelector:
    """Pick a serving node per device from live link conditions.

    ``payload_bytes`` models one overlay update (request up, rendered
    annotation delta down); the estimate is the round trip of that
    payload over the topology's *current* routes and link speeds, plus
    the tier's compute share under its reported load.
    """

    def __init__(self, topology: Any, *,
                 roles: tuple[str, ...] = ("edge", "cloud"),
                 payload_bytes: float = 2048.0,
                 response_bytes: float = 8192.0,
                 compute_cycles: float = 2e6,
                 hysteresis: float = 0.8) -> None:
        if not 0.0 < hysteresis <= 1.0:
            raise OffloadError("hysteresis must be in (0, 1]")
        self.topology = topology
        self.roles = tuple(roles)
        self.payload_bytes = float(payload_bytes)
        self.response_bytes = float(response_bytes)
        self.compute_cycles = float(compute_cycles)
        self.hysteresis = float(hysteresis)
        self._load: dict[str, float] = {}

    def set_load(self, node: str, utilization: float) -> None:
        """Report a tier's utilization; rho >= 1 prices it saturated."""
        if utilization < 0:
            raise OffloadError("utilization must be non-negative")
        self.topology.node(node)  # validate
        self._load[node] = float(utilization)

    def candidates(self, device: str) -> list[str]:
        """Serving candidates for ``device``: every up node whose role
        is in scope (the device itself is never a candidate)."""
        return [spec.name for spec in self.topology.nodes()
                if spec.role in self.roles and spec.name != device]

    def rtt_s(self, device: str, node: str) -> float:
        """Live round-trip estimate, or inf when unreachable/saturated.

        Both directions are priced separately because partitions are
        directional: an edge that can receive but not respond is just
        as unusable as one that is fully cut off.
        """
        spec = self.topology.node(node)
        if not spec.up:
            return float("inf")
        rho = self._load.get(node, 0.0)
        if rho >= 1.0:
            return float("inf")
        try:
            up_s = self.topology.transfer_time(device, node,
                                               self.payload_bytes)
            down_s = self.topology.transfer_time(node, device,
                                                 self.response_bytes)
        except NetworkError:
            return float("inf")
        compute_s = self.compute_cycles / spec.cpu_hz / (1.0 - rho)
        return up_s + down_s + compute_s

    def select(self, device: str,
               current: str | None = None) -> TierDecision:
        """Choose the serving node for ``device`` right now.

        With ``current`` set, the incumbent is kept unless the best
        rival's round trip beats ``hysteresis * incumbent`` — or the
        incumbent has become unreachable, in which case the session
        degrades immediately.
        """
        prices = {node: self.rtt_s(device, node)
                  for node in self.candidates(device)}
        if not prices:
            raise OffloadError(f"no serving tiers in scope for {device!r}")
        best = min(sorted(prices), key=lambda n: prices[n])
        if prices[best] == float("inf"):
            raise OffloadError(
                f"no serving tier reachable from {device!r}")
        chosen = best
        if current is not None and prices.get(current, float("inf")) \
                != float("inf"):
            if prices[best] >= self.hysteresis * prices[current]:
                chosen = current
        return TierDecision(
            device=device, node=chosen,
            region=self.topology.region_of(chosen),
            rtt_s=prices[chosen],
            switched=(current is not None and chosen != current),
            candidates=prices)
