"""Healthcare application (Section 3.3, Figure 8).

Vitals stream through the event log into per-(patient, vital) anomaly
detectors; alarms become bedside AR annotations ("in-situ display of
relevant information when required").  Remote diagnosis augments a
live-streamed patient view with EHR content across a network link, with
the end-to-end latency budget measured against the interactivity cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analytics.anomaly import Alarm, EwmaDetector, ThresholdDetector
from ..context.entities import SemanticEntity
from ..core.pipeline import ARBigDataPipeline
from ..datagen.health import VITALS, Patient, VitalSample
from ..simnet.kernel import Simulator
from ..simnet.network import LINK_PRESETS, Link, LinkSpec
from ..util.errors import PipelineError

__all__ = ["HealthcareApp", "DetectionOutcome", "RemoteDiagnosisStats",
           "CollaborativeStats"]

VITALS_TOPIC = "health.vitals"
ALARMS_TOPIC = "health.alarms"


@dataclass(frozen=True)
class DetectionOutcome:
    """Did we catch a scripted episode, and how fast?"""

    patient_id: str
    vital: str
    onset_s: float
    detected_at_s: float | None

    @property
    def detected(self) -> bool:
        return self.detected_at_s is not None

    @property
    def lead_delay_s(self) -> float:
        """Seconds from onset to first alarm (inf when missed)."""
        if self.detected_at_s is None:
            return float("inf")
        return self.detected_at_s - self.onset_s


@dataclass
class RemoteDiagnosisStats:
    """Latency accounting for a remote AR consult."""

    frames: int = 0
    deadline_misses: int = 0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.latencies_s)) if self.latencies_s else 0.0

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.frames if self.frames else 0.0


@dataclass
class CollaborativeStats:
    """Outcome of a multi-doctor virtual operating room session."""

    doctors: int
    findings_published: int
    propagation_delays_s: list[float] = field(default_factory=list)

    @property
    def mean_propagation_s(self) -> float:
        return (float(np.mean(self.propagation_delays_s))
                if self.propagation_delays_s else 0.0)

    @property
    def p95_propagation_s(self) -> float:
        return (float(np.percentile(self.propagation_delays_s, 95))
                if self.propagation_delays_s else 0.0)


class HealthcareApp:
    """Ward monitoring + remote diagnosis on the convergence pipeline."""

    def __init__(self, pipeline: ARBigDataPipeline,
                 patients: list[Patient]) -> None:
        self.pipeline = pipeline
        self.patients = {p.patient_id: p for p in patients}
        pipeline.create_topic(VITALS_TOPIC, partitions=8)
        pipeline.create_topic(ALARMS_TOPIC)
        for patient in patients:
            pipeline.add_entity(SemanticEntity(
                entity_id=patient.patient_id, entity_type="patient",
                position=np.array([patient.bed[0], patient.bed[1], 1.0]),
                name=patient.patient_id,
                tags={"age": patient.age, "ward": patient.ward,
                      "conditions": ",".join(patient.conditions)}))
        pipeline.interpreter.register_default("vital-alarm")
        pipeline.interpreter.register_default("ehr-summary")
        self._detectors: dict[tuple[str, str], EwmaDetector] = {}
        self._hard_limits: dict[tuple[str, str], ThresholdDetector] = {}
        self.alarms: list[tuple[str, Alarm]] = []

    def _detector(self, patient_id: str, vital: str) -> EwmaDetector:
        key = (patient_id, vital)
        if key not in self._detectors:
            self._detectors[key] = EwmaDetector(alpha=0.05, threshold=5.0,
                                                warmup=50)
            spec = VITALS[vital]
            self._hard_limits[key] = ThresholdDetector(low=spec.low,
                                                       high=spec.high)
        return self._detectors[key]

    # -- monitoring --------------------------------------------------------

    def ingest_vitals(self, samples: list[VitalSample]) -> int:
        """Stream vitals; raises AR alarms as they fire."""
        raised = 0
        for sample in samples:
            if sample.patient_id not in self.patients:
                raise PipelineError(f"unknown patient {sample.patient_id!r}")
            self.pipeline.ingest(
                VITALS_TOPIC,
                {"patient": sample.patient_id, "vital": sample.vital,
                 "value": sample.value},
                key=f"{sample.patient_id}:{sample.vital}",
                timestamp=sample.timestamp)
            detector = self._detector(sample.patient_id, sample.vital)
            limits = self._hard_limits[(sample.patient_id, sample.vital)]
            alarm = detector.add(sample.value, sample.timestamp)
            hard = limits.add(sample.value, sample.timestamp)
            for fired in (alarm, hard):
                if fired is None:
                    continue
                raised += 1
                self.alarms.append((sample.patient_id, fired))
                self.pipeline.ingest(
                    ALARMS_TOPIC,
                    {"patient": sample.patient_id, "vital": sample.vital,
                     "kind": fired.kind, "value": fired.value},
                    key=sample.patient_id, timestamp=fired.timestamp)
                self.pipeline.interpret_and_publish([{
                    "tag": "vital-alarm", "subject": sample.patient_id,
                    "value": f"{sample.vital}={fired.value:.1f}",
                    "priority": 10.0}])
        return raised

    def detection_outcomes(self) -> list[DetectionOutcome]:
        """Match scripted episodes to raised alarms (F8's lead time)."""
        outcomes = []
        for patient in self.patients.values():
            for episode in patient.episodes:
                hits = [a for pid, a in self.alarms
                        if pid == patient.patient_id
                        and episode.onset_s <= a.timestamp <= episode.end_s]
                detected_at = min((a.timestamp for a in hits), default=None)
                outcomes.append(DetectionOutcome(
                    patient_id=patient.patient_id, vital=episode.vital,
                    onset_s=episode.onset_s, detected_at_s=detected_at))
        return outcomes

    def detect_compound(self, hr_above: float = 110.0,
                        bp_below: float = 95.0,
                        within_s: float = 600.0) -> list:
        """CEP over the vitals topic: tachycardia followed by
        hypotension within ``within_s`` per patient — the compound
        deterioration signature single-vital thresholds miss.

        Returns the :class:`~repro.streaming.cep.PatternMatch` list.
        """
        from ..streaming.cep import PatternOperator, PatternStep
        from ..streaming.connectors import log_source
        from ..streaming.graph import JobBuilder
        from ..streaming.runtime import Executor

        pattern = PatternOperator("deterioration", [
            PatternStep("tachycardia",
                        lambda v: (v.get("vital") == "heart_rate"
                                   and v.get("value", 0) > hr_above)),
            PatternStep("hypotension",
                        lambda v: (v.get("vital") == "systolic_bp"
                                   and v.get("value", 999) < bp_below)),
        ], within_s=within_s)
        builder = JobBuilder("compound-alarms")
        (builder.source("vitals", log_source(self.pipeline.log,
                                             VITALS_TOPIC))
                .key_by(lambda v: v["patient"])
                .apply(pattern)
                .sink("matches"))
        sinks = Executor(builder.build()).run()
        return list(sinks["matches"].values)

    # -- tiered serving store ----------------------------------------------

    def build_serving_store(self, *, parallelism: int = 1,
                            ttl_s: float | None = None,
                            injector=None):
        """Stream the vitals topic into a tiered serving store, exactly
        once: the hot tier answers "latest vitals for this patient" for
        the bedside overlay, the analytical tier backs the ward
        dashboard.  Returns the :class:`~repro.store.TieredStore`."""
        from ..store import serve_topic

        store, report = serve_topic(
            self.pipeline.log, VITALS_TOPIC, parallelism=parallelism,
            ttl_s=ttl_s, metric_fn=lambda v: v["value"],
            injector=injector, name="health-serving")
        self.serving_store = store
        self.serving_report = report
        return store

    def latest_vitals(self, patient_id: str) -> dict[str, tuple]:
        """Hot-tier point lookups: vital -> (timestamp, value) for the
        bedside AR overlay.  Requires :meth:`build_serving_store`."""
        store = getattr(self, "serving_store", None)
        if store is None:
            raise PipelineError("call build_serving_store() first")
        if patient_id not in self.patients:
            raise PipelineError(f"unknown patient {patient_id!r}")
        out: dict[str, tuple] = {}
        for vital in VITALS:
            versions = store.latest(f"{patient_id}:{vital}", 1)
            if versions:
                ts, value = versions[0]
                out[vital] = (ts, value["value"])
        return out

    def vitals_dashboard(self, window_s: float = 60.0,
                         agg: str = "mean") -> dict:
        """Analytical-tier ward dashboard: per-(patient, vital) tumbling
        aggregate over the committed history."""
        store = getattr(self, "serving_store", None)
        if store is None:
            raise PipelineError("call build_serving_store() first")
        return store.tumbling(window_s, agg)

    # -- bedside overlay ----------------------------------------------------

    def publish_ehr_overlay(self, patient_id: str) -> int:
        """EHR summary anchored at the bed ("virtual viewfinder")."""
        patient = self.patients.get(patient_id)
        if patient is None:
            raise PipelineError(f"unknown patient {patient_id!r}")
        summary = (f"age {patient.age}; "
                   f"{', '.join(patient.conditions) or 'no conditions'}")
        bound = self.pipeline.interpret_and_publish([{
            "tag": "ehr-summary", "subject": patient_id,
            "value": summary, "priority": 5.0}])
        return bound.bound

    # -- remote diagnosis -----------------------------------------------------

    def remote_diagnosis(self, rng: np.random.Generator,
                         link: LinkSpec | str = "wan",
                         frames: int = 300,
                         frame_bytes: float = 60_000.0,
                         overlay_bytes: float = 2_000.0,
                         deadline_s: float = 0.150) -> RemoteDiagnosisStats:
        """Live-stream frames to a remote doctor, overlay EHR content,
        return the annotated view; measure the interactive budget.

        150 ms is the usual interactivity cap for remote consultation
        video; the paper's claim is that cloud connectivity can meet it.
        """
        if isinstance(link, str):
            try:
                link = LINK_PRESETS[link]
            except KeyError:
                raise PipelineError(f"unknown link preset {link!r}") from None
        channel = Link(link, rng)
        stats = RemoteDiagnosisStats()
        for _ in range(frames):
            latency = channel.round_trip_time(frame_bytes, overlay_bytes)
            stats.frames += 1
            stats.latencies_s.append(latency)
            if latency > deadline_s:
                stats.deadline_misses += 1
        return stats

    # -- collaborative virtual operating room (Sec 3.3 future work) ------

    def collaborative_consult(self, rng: np.random.Generator,
                              patient_id: str,
                              doctor_links: dict[str, str | LinkSpec],
                              duration_s: float = 600.0,
                              finding_rate_per_s: float = 0.02,
                              sync_period_s: float = 1.0,
                              finding_bytes: float = 2_000.0,
                              ) -> CollaborativeStats:
        """Doctors at different sites annotate one shared patient view.

        Each doctor publishes findings at Poisson times; a finding
        reaches the shared dataset after that doctor's uplink delay and
        becomes visible to each peer at the peer's next sync (period +
        downlink delay).  The measured propagation delay — publish to
        all-peers-visible — is the collaboration latency the virtual
        operating room lives or dies by.
        """
        if patient_id not in self.patients:
            raise PipelineError(f"unknown patient {patient_id!r}")
        if len(doctor_links) < 2:
            raise PipelineError("collaboration needs at least two doctors")
        channels = {}
        for doctor, link in sorted(doctor_links.items()):
            if isinstance(link, str):
                try:
                    link = LINK_PRESETS[link]
                except KeyError:
                    raise PipelineError(
                        f"unknown link preset {link!r}") from None
            channels[doctor] = Link(link, rng)

        sim = Simulator()
        stats = CollaborativeStats(doctors=len(channels),
                                   findings_published=0)
        # finding id -> (publish time, set of doctors still waiting)
        pending: dict[int, tuple[float, set[str]]] = {}
        shared_at: dict[int, float] = {}  # arrival at the shared dataset
        finding_seq = iter(range(10**9))

        def publish(doctor: str) -> None:
            finding_id = next(finding_seq)
            stats.findings_published += 1
            peers = set(channels) - {doctor}
            pending[finding_id] = (sim.now, peers)
            uplink = channels[doctor].transfer_time(finding_bytes)
            sim.schedule_after(
                uplink, lambda f=finding_id: shared_at.setdefault(f,
                                                                  sim.now))

        def sync(doctor: str) -> None:
            downlink = channels[doctor].transfer_time(finding_bytes)

            def deliver() -> None:
                for finding_id in list(pending):
                    published_at, waiting = pending[finding_id]
                    if finding_id not in shared_at:
                        continue  # not uploaded yet
                    if shared_at[finding_id] > sim.now - downlink:
                        continue  # arrived after this sync started
                    if doctor in waiting:
                        waiting.discard(doctor)
                        if not waiting:
                            stats.propagation_delays_s.append(
                                sim.now - published_at)
                            del pending[finding_id]

            sim.schedule_after(downlink, deliver)

        # Schedule Poisson findings per doctor and periodic syncs.
        for doctor in sorted(channels):
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / finding_rate_per_s))
                if t >= duration_s:
                    break
                sim.schedule_at(t, lambda d=doctor: publish(d))
            sim.schedule_every(sync_period_s,
                               lambda d=doctor: sync(d),
                               until=duration_s * 2)
        sim.run(until=duration_s * 2)
        return stats
