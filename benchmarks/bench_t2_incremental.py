"""Experiment T2 (Section 4.1, incremental computation).

Claim under test: "Incrementally computing a small amount of new data
based on partial results in advance can get a quick determination, while
the crowding new data and new analysis criteria may render the results
invalid."

We maintain a mean-over-criteria query over a growing history two ways:
incrementally (O(1) per element) and by batch recomputation (O(n) per
answer), and inject periodic criteria changes that invalidate the
incremental partial.  Output: answer cost (elements touched per answer)
vs history size, plus the rebuild spikes.
"""

import numpy as np

from repro.analytics import IncrementalQuery
from repro.util.rng import make_rng

from tableprint import print_table

HISTORY_SIZES = [1_000, 5_000, 20_000, 50_000]
CRITERIA_CHANGES = 3


def _history(n, rng):
    return [{"cat": ["a", "b", "c"][int(rng.integers(0, 3))],
             "v": float(rng.normal(10, 2))} for _ in range(n)]


def run_experiment():
    rng = make_rng(2)
    rows = []
    for n in HISTORY_SIZES:
        history = _history(n, rng)
        # Incremental: touch each element once, answer any time for free.
        query = IncrementalQuery(criteria=lambda e: e["cat"] == "a",
                                 value_fn=lambda e: e["v"])
        for element in history:
            query.update(element)
        incremental_cost = query.updates / n  # touches per element: 1
        # Batch: every answer rescans history.
        answers = 50
        batch_cost = answers * n  # elements touched for 50 answers
        # Criteria changes force incremental rebuilds.
        rebuild_touches = 0
        for i in range(CRITERIA_CHANGES):
            cat = ["b", "c", "a"][i % 3]
            query.change_criteria(
                lambda e, c=cat: e["cat"] == c, history)
        rebuild_touches = query.rebuild_cost
        rows.append([n, answers,
                     incremental_cost * n,  # total incremental touches
                     batch_cost,
                     n,  # per-answer batch cost: a full rescan
                     1.0,  # per-answer incremental cost (O(1))
                     rebuild_touches])
    return rows


def bench_t2_incremental(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "T2  Sec 4.1: incremental vs batch recomputation "
        "(elements touched)",
        ["history", "answers", "incr total", "batch total",
         "batch/answer", "incr/answer", "rebuild cost (3 changes)"],
        rows,
        note="incremental answers are O(1); criteria changes cost a full "
             "rescan each (the paper's 'results rendered invalid')")
    history = [r[0] for r in rows]
    batch_per_answer = [r[4] for r in rows]
    rebuilds = [r[6] for r in rows]
    # Batch answer cost grows linearly with history; incremental is flat.
    assert batch_per_answer == history
    assert all(r[5] == 1.0 for r in rows)
    # Rebuild cost equals CRITERIA_CHANGES * history (full rescans).
    assert rebuilds == [CRITERIA_CHANGES * n for n in history]


def bench_t2_incremental_update_throughput(benchmark):
    """Micro-benchmark: the O(1) incremental fold itself."""
    rng = make_rng(3)
    history = _history(10_000, rng)
    query = IncrementalQuery(criteria=lambda e: e["cat"] == "a",
                             value_fn=lambda e: e["v"])

    def feed():
        for element in history:
            query.update(element)
        return query.answer()

    answer = benchmark(feed)
    assert np.isfinite(answer)
