"""Flink-like event-time dataflow engine (single-threaded simulation)."""

from .autoscale import (
    Autoscaler,
    AutoscaleReport,
    GradientPolicy,
    OperatorSignals,
    RescaleEvent,
    ScalingDecision,
    ScalingPolicy,
    ScalingSupervisor,
    SchedulePolicy,
    ShedPolicy,
    UtilizationTargetPolicy,
    run_autoscaled,
)
from .barrier import AlignmentResult, BarrierAligner
from .cep import PatternMatch, PatternOperator, PatternStep
from .chain import ChainedOperator
from .connectors import log_sink, log_source, parallel_log_source
from .coordinator import (
    CheckpointCoordinator,
    CheckpointManifest,
    CheckpointStore,
    HeartbeatMonitor,
    failover_region_of,
    failover_regions,
)
from .element import CheckpointBarrier, Element, StreamItem, Watermark
from .execution import (
    ExecutionGraph,
    ParallelCheckpoint,
    ParallelExecutor,
    PhysicalEdge,
    PhysicalNode,
    compile_execution_graph,
)
from .graph import JobBuilder, JobGraph, SourceSpec
from .join import IntervalJoinOperator, Joined
from .placement import RegionPlacement, placement_from_topology
from .operators import (
    FilterOperator,
    FlatMapOperator,
    KeyByOperator,
    MapOperator,
    Operator,
    ReduceOperator,
    TimestampAssigner,
    WatermarkGenerator,
)
from .runtime import Checkpoint, Executor, SinkBuffer, build_chains
from .shuffle import (
    DEFAULT_KEY_GROUPS,
    key_group_for,
    key_group_range,
    subtask_for_key,
    subtask_for_key_group,
)
from .state import KeyedState
from .txn_sink import TransactionalLogSink, TransactionalSink
from .window_operator import (
    LateRecord,
    WindowAggregateOperator,
    WindowResult,
    aggregators,
)
from .windows import (
    SessionWindows,
    SlidingWindows,
    TumblingWindows,
    Window,
    WindowAssigner,
)

__all__ = [
    "OperatorSignals",
    "ScalingDecision",
    "ScalingPolicy",
    "UtilizationTargetPolicy",
    "GradientPolicy",
    "SchedulePolicy",
    "ShedPolicy",
    "Autoscaler",
    "RescaleEvent",
    "AutoscaleReport",
    "ScalingSupervisor",
    "run_autoscaled",
    "PatternMatch",
    "PatternOperator",
    "PatternStep",
    "Element",
    "Watermark",
    "StreamItem",
    "CheckpointBarrier",
    "AlignmentResult",
    "BarrierAligner",
    "CheckpointCoordinator",
    "CheckpointManifest",
    "CheckpointStore",
    "HeartbeatMonitor",
    "failover_regions",
    "failover_region_of",
    "TransactionalSink",
    "TransactionalLogSink",
    "JobBuilder",
    "JobGraph",
    "SourceSpec",
    "Executor",
    "Checkpoint",
    "SinkBuffer",
    "build_chains",
    "ExecutionGraph",
    "PhysicalNode",
    "PhysicalEdge",
    "ParallelCheckpoint",
    "ParallelExecutor",
    "compile_execution_graph",
    "RegionPlacement",
    "placement_from_topology",
    "DEFAULT_KEY_GROUPS",
    "key_group_for",
    "key_group_range",
    "subtask_for_key",
    "subtask_for_key_group",
    "Operator",
    "ChainedOperator",
    "MapOperator",
    "FilterOperator",
    "FlatMapOperator",
    "KeyByOperator",
    "ReduceOperator",
    "TimestampAssigner",
    "WatermarkGenerator",
    "WindowAggregateOperator",
    "WindowResult",
    "LateRecord",
    "aggregators",
    "Window",
    "WindowAssigner",
    "TumblingWindows",
    "SlidingWindows",
    "SessionWindows",
    "IntervalJoinOperator",
    "Joined",
    "KeyedState",
    "log_source",
    "parallel_log_source",
    "log_sink",
]
