"""The AR x Big-Data convergence pipeline — the paper's contribution as
an API.

One object wires the whole loop the paper sketches::

    sensors/UGC --> [PrivacyGuard] --> event log (velocity, volume)
        --> streaming job (event time, windows)
        --> analytics results (tagged with semantics)
        --> [InterpretationEngine] --> AR annotations
        --> SharedDataset --> per-user ARSession views
    while [TimelinessController] places the per-frame vision work
    across device/edge/cloud.

Applications (``repro.apps``) are thin layers over this facade; the
experiments measure its components under the paper's scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from ..context.entities import ContextStore, SemanticEntity, UserContext
from ..context.interpret import BindingRule, BoundContent, InterpretationEngine
from ..eventlog.broker import LogCluster, TopicConfig
from ..eventlog.consumer import ConsumerGroup
from ..eventlog.producer import Producer
from ..offload.executor import OffloadPlanner
from ..offload.policies import GreedyLatency, OffloadPolicy
from ..render.compositor import Compositor, FrameBudget
from ..render.occlusion import OcclusionWorld
from ..simnet.network import LINK_PRESETS, LinkSpec
from ..simnet.topology import NodeSpec, Topology
from ..streaming.connectors import log_source
from ..streaming.graph import JobBuilder
from ..streaming.runtime import Executor
from ..streaming.window_operator import WindowResult
from ..streaming.windows import TumblingWindows
from ..util.clock import SimClock
from ..util.errors import LogError, PipelineError, StreamError
from ..util.rng import RngRegistry
from ..vision.camera import CameraIntrinsics
from .privacy_guard import PrivacyConfig, PrivacyGuard
from .session import ARSession, SharedDataset
from .timeliness import TimelinessController

__all__ = ["PipelineConfig", "ARBigDataPipeline", "AnalyticsSnapshot"]

DEFAULT_INTRINSICS = CameraIntrinsics(fx=500.0, fy=500.0, cx=160.0,
                                      cy=120.0, width=320, height=240)


@dataclass(frozen=True)
class AnalyticsSnapshot:
    """Windowed analytics, possibly served stale.

    When the backbone is degraded (a partition with no live leader, a
    broken stream), the AR session keeps rendering the *last-known*
    analytics rather than blanking out — ``stale`` flags it and
    ``age_s`` says by how much, so the UI can dim the overlay instead
    of dropping it.
    """

    results: tuple
    stale: bool
    age_s: float
    computed_at: float
    reason: str | None = None


@dataclass(frozen=True)
class PipelineConfig:
    """Top-level knobs, all defaulted to sane values."""

    seed: int = 0
    brokers: int = 3
    replication: int = 2
    partitions: int = 4
    deadline_s: float = 1.0 / 30.0
    device_hz: float = 2.0e9
    edge_hz: float = 16.0e9
    cloud_hz: float = 64.0e9
    access_link: str = "wifi"  # device <-> edge preset name
    backhaul_link: str = "wan"  # edge <-> cloud preset name
    privacy: PrivacyConfig = PrivacyConfig(location_mode="none")

    def __post_init__(self) -> None:
        for preset in (self.access_link, self.backhaul_link):
            if preset not in LINK_PRESETS:
                raise PipelineError(
                    f"unknown link preset {preset!r}; choose from "
                    f"{sorted(LINK_PRESETS)}")


class ARBigDataPipeline:
    """Facade over every substrate, wired per the paper's architecture."""

    def __init__(self, config: PipelineConfig = PipelineConfig()) -> None:
        self.config = config
        self.rngs = RngRegistry(config.seed)
        self.clock = SimClock()
        # Big-data backbone.
        self.log = LogCluster(num_brokers=config.brokers)
        self.producer = Producer(self.log, clock=self.clock)
        # Semantics + interpretation.
        self.context = ContextStore()
        self.interpreter = InterpretationEngine(self.context)
        # Shared AR content.
        self.dataset = SharedDataset()
        # Privacy boundary.
        self.guard = PrivacyGuard(config.privacy, self.rngs.get("privacy"))
        # Offloading topology: device -- edge -- cloud.
        self.topology = Topology(self.rngs.get("network"))
        self.topology.add_node(NodeSpec("device", cpu_hz=config.device_hz,
                                        role="device", power_w=2.5))
        self.topology.add_node(NodeSpec("edge", cpu_hz=config.edge_hz,
                                        role="edge", cores=4))
        self.topology.add_node(NodeSpec("cloud", cpu_hz=config.cloud_hz,
                                        role="cloud", cores=32))
        self.topology.add_link("device", "edge",
                               LINK_PRESETS[config.access_link])
        self.topology.add_link("edge", "cloud",
                               LINK_PRESETS[config.backhaul_link])
        self.planner = OffloadPlanner(self.topology, "device")
        self.timeliness = TimelinessController(
            self.planner, GreedyLatency(), deadline_s=config.deadline_s)
        self._sessions: dict[str, ARSession] = {}
        # Last good analytics per aggregation key, for graceful
        # degradation when the stream lags or the log is unavailable.
        self._analytics_cache: dict[tuple, AnalyticsSnapshot] = {}

    # -- topology/policy tweaks ------------------------------------------------

    def set_offload_policy(self, policy: OffloadPolicy) -> None:
        self.timeliness = TimelinessController(
            self.planner, policy, deadline_s=self.config.deadline_s)

    def set_access_link(self, spec: LinkSpec) -> None:
        """Replace the device<->edge link (e.g. to degrade the network)."""
        self.topology.replace_link("device", "edge", spec)

    # -- ingestion ---------------------------------------------------------------

    def create_topic(self, name: str, partitions: int | None = None,
                     compacted: bool = False) -> None:
        self.log.create_topic(TopicConfig(
            name=name,
            partitions=partitions or self.config.partitions,
            replication=min(self.config.replication, self.config.brokers),
            compacted=compacted))

    def ingest(self, topic: str, value: Mapping[str, Any],
               key: str | None = None,
               timestamp: float | None = None,
               personal: bool = False,
               population: np.ndarray | None = None) -> tuple[int, int]:
        """Append one record; personal records pass the privacy guard
        (pseudonymized user, protected location)."""
        record = dict(value)
        if personal:
            if "user" in record:
                record["user"] = self.guard.pseudonymize(str(record["user"]))
                key = record["user"] if key is not None else key
            if "x" in record and "y" in record:
                px, py, err = self.guard.protect_location(
                    float(record["x"]), float(record["y"]),
                    population=population)
                record["x"], record["y"] = px, py
                record["loc_error_m"] = err
        return self.producer.send(topic, record, key=key,
                                  timestamp=timestamp)

    def consumer_group(self, topic: str, group_id: str) -> ConsumerGroup:
        return ConsumerGroup(self.log, topic, group_id)

    # -- streaming analytics -------------------------------------------------------

    def windowed_aggregate(self, topic: str,
                           key_fn: Callable[[Any], Any],
                           value_fn: Callable[[Any], float],
                           window_s: float,
                           aggregate: str = "mean",
                           max_lateness: float = 5.0,
                           ) -> list[WindowResult]:
        """Run a tumbling-window job over everything retained in a topic."""
        builder = JobBuilder(f"{topic}-window")
        (builder.source(topic, log_source(self.log, topic))
                .with_watermarks(max_lateness)
                .key_by(key_fn)
                .window(TumblingWindows(window_s), aggregate,
                        value_fn=value_fn)
                .sink("out"))
        sinks = Executor(builder.build()).run()
        return [element for element in sinks["out"].values]

    def resilient_windowed_aggregate(self, topic: str,
                                     key_fn: Callable[[Any], Any],
                                     value_fn: Callable[[Any], float],
                                     window_s: float,
                                     aggregate: str = "mean",
                                     max_lateness: float = 5.0,
                                     ) -> AnalyticsSnapshot:
        """:meth:`windowed_aggregate` with graceful degradation.

        A healthy run refreshes the cache and returns a fresh snapshot.
        If the backbone fails mid-query (partition unavailable, stream
        error), the last-known results are served with ``stale=True``
        and their age — data-plane degradation is reported, not raised
        (CONTRIBUTING.md rule: errors raise, degradation is counted).
        A failure with no prior result re-raises: there is nothing to
        degrade *to*.
        """
        cache_key = (topic, window_s, aggregate)
        try:
            results = self.windowed_aggregate(
                topic, key_fn, value_fn, window_s, aggregate=aggregate,
                max_lateness=max_lateness)
        except (LogError, StreamError) as exc:
            cached = self._analytics_cache.get(cache_key)
            if cached is None:
                raise
            return AnalyticsSnapshot(
                results=cached.results, stale=True,
                age_s=max(0.0, self.clock.now - cached.computed_at),
                computed_at=cached.computed_at,
                reason=f"{type(exc).__name__}: {exc}")
        snapshot = AnalyticsSnapshot(
            results=tuple(results), stale=False, age_s=0.0,
            computed_at=self.clock.now)
        self._analytics_cache[cache_key] = snapshot
        return snapshot

    def run_job(self, build: Callable[[JobBuilder], None],
                name: str = "job") -> dict[str, Any]:
        """Escape hatch: run an arbitrary dataflow over the log."""
        builder = JobBuilder(name)
        build(builder)
        sinks = Executor(builder.build()).run()
        return {name: buf.values for name, buf in sinks.items()}

    # -- semantics ------------------------------------------------------------------

    def add_entity(self, entity: SemanticEntity) -> None:
        self.context.add_entity(entity)

    def update_user_context(self, context: UserContext) -> None:
        self.context.update_user(context)

    def register_rule(self, rule: BindingRule) -> None:
        self.interpreter.register(rule)

    def interpret_and_publish(self, results: list[Mapping[str, Any]],
                              ) -> BoundContent:
        """Interpretation step + publish bound annotations to sessions."""
        bound = self.interpreter.interpret(results)
        if bound.annotations:
            self.dataset.publish(bound.annotations)
        return bound

    # -- sessions ---------------------------------------------------------------------

    def open_session(self, user_id: str,
                     intrinsics: CameraIntrinsics = DEFAULT_INTRINSICS,
                     occlusion: OcclusionWorld | None = None,
                     occlusion_policy: str = "xray",
                     declutter: bool = True,
                     budget: FrameBudget | None = None) -> ARSession:
        if user_id in self._sessions:
            raise PipelineError(f"session for {user_id!r} already open")
        compositor = Compositor(intrinsics, occlusion=occlusion,
                                occlusion_policy=occlusion_policy,
                                declutter=declutter, budget=budget)
        session = ARSession(user_id=user_id, dataset=self.dataset,
                            compositor=compositor)
        session.sync()
        self._sessions[user_id] = session
        return session

    def session(self, user_id: str) -> ARSession:
        try:
            return self._sessions[user_id]
        except KeyError:
            raise PipelineError(f"no session for {user_id!r}") from None

    def sessions(self) -> list[ARSession]:
        return [self._sessions[k] for k in sorted(self._sessions)]
