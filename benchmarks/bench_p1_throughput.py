"""P1: batched dataflow throughput — per-item vs batched vs chained.

The timeliness barrier (paper Section 4.1) is an executor problem before
it is an algorithms problem: the seed moved one element at a time
through Python-level dispatch.  This bench measures elements/sec on the
reference pipeline

    map -> filter -> keyBy -> watermarks -> tumbling window (sum)

under three execution modes of the *same* job graph:

- ``per_item``  — element-at-a-time dispatch (the seed's semantics),
- ``batched``   — whole-batch channel moves + vectorized operators,
- ``chained``   — batched plus operator fusion (map/filter/keyBy/
  watermarks collapse into one chain node).

All three modes must produce identical sink contents — asserted here —
so the speedup is pure interpreter-overhead removal.  Results are
written to ``BENCH_streaming.json`` so ``tools/check_perf.py`` can gate
future PRs against throughput regressions.

Also micro-benches two satellite fixes: the cached sample array in
``util.metrics.Summary`` and the vectorized sketch ``add_many`` kernels.

All measured rates are reported *through* a
:class:`~repro.util.metrics.MetricsRegistry` (the tables read the
snapshot, not the raw floats), and an observability-overhead section
times the chained job with hooks off / disabled / fully enabled —
backing the "<5% enabled, ~0% disabled" budget that
``tools/check_obs.py`` gates.
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.analytics.sketches import CountMinSketch, HyperLogLog
from repro.obs import Tracer
from repro.streaming import Element, Executor, JobBuilder, TumblingWindows
from repro.util.metrics import MetricsRegistry, Summary

import benchlib
from platform_stamp import git_sha, platform_stamp
from tableprint import print_table

N_EVENTS = 100_000
N_KEYS = 64
SOURCE_BATCH = 8192
WINDOW_S = 5.0

MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched": dict(batch_mode=True, chaining=False),
    "chained": dict(batch_mode=True, chaining=True),
}


def _elements(n: int) -> list[Element]:
    rng = np.random.default_rng(11)
    values = rng.normal(10.0, 4.0, size=n)
    return [Element(value=float(v), timestamp=i * 0.01)
            for i, v in enumerate(values)]


def _build_job(elements: list[Element]):
    builder = JobBuilder("p1-throughput")
    (builder.source("events", elements)
            .map(lambda v: v * 1.5 + 1.0, vectorized=True)
            .filter(lambda v: v > 4.0, vectorized=True)
            .key_by(lambda v: np.floor(v) % N_KEYS, vectorized=True)
            .with_watermarks(0.5, emit_every=32)
            .window(TumblingWindows(WINDOW_S), "sum")
            .sink("out"))
    return builder.build()


def _canonical_sink(sink) -> list[tuple]:
    return [(float(r.key), r.window.start, round(float(r.value), 9), r.count)
            for r in sink.values]


def bench_pipeline(n_events: int, registry: MetricsRegistry,
                  repeats: int = 3) -> dict:
    elements = _elements(n_events)
    outputs: dict[str, list[tuple]] = {}
    for mode, flags in MODES.items():
        # Best-of-N: the committed baseline gates an absolute eps floor,
        # so the estimator must be robust to scheduler jitter on shared
        # machines — min elapsed is the standard noise-floor statistic.
        best = float("inf")
        for _ in range(repeats):
            job = _build_job(elements)  # fresh operators (state) per run
            executor = Executor(job, **flags)
            start = time.perf_counter()
            sinks = executor.run(source_batch=SOURCE_BATCH)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            out = _canonical_sink(sinks["out"])
            assert outputs.setdefault(mode, out) == out, (
                f"{mode} runs diverged between repeats")
        registry.gauge("bench.eps", mode=mode).set(n_events / best)
    base = outputs["per_item"]
    for mode in ("batched", "chained"):
        assert outputs[mode] == base, (
            f"{mode} execution diverged from per-item results")
    # Results flow through the registry: the report table and the
    # committed baseline both read the snapshot, not local floats.
    snap = registry.snapshot()
    eps = {mode: snap[f"bench.eps{{mode={mode}}}"] for mode in MODES}
    return {
        "per_item_eps": eps["per_item"],
        "batched_eps": eps["batched"],
        "chained_eps": eps["chained"],
        "speedup_batched": eps["batched"] / eps["per_item"],
        "speedup_chained": eps["chained"] / eps["per_item"],
        "window_results": len(base),
    }


def bench_obs_overhead(n_events: int, registry: MetricsRegistry,
                       repeats: int = 3) -> dict:
    """Chained-mode throughput with observability off / disabled / on.

    Configs run back-to-back within each round and the reported ratio is
    the median of within-round ratios — the same drift-cancelling
    statistic ``tools/check_obs.py`` gates (see the comment there).
    """
    elements = _elements(n_events)

    def one_run(tracer, metrics) -> float:
        executor = Executor(_build_job(elements), tracer=tracer,
                            metrics=metrics)
        start = time.perf_counter()
        executor.run(source_batch=SOURCE_BATCH)
        return n_events / (time.perf_counter() - start)

    configs = {
        "off": lambda: (None, None),
        "disabled": lambda: (Tracer(enabled=False), None),
        "enabled": lambda: (Tracer(), MetricsRegistry()),
    }
    for make in configs.values():
        one_run(*make())  # warmup, discarded
    for _ in range(repeats):
        round_eps = {}
        for name, make in configs.items():
            round_eps[name] = one_run(*make())
            registry.summary("bench.obs_eps", config=name).observe(
                round_eps[name])
        for name in ("disabled", "enabled"):
            registry.summary("bench.obs_ratio", config=name).observe(
                round_eps[name] / round_eps["off"])

    snap = registry.snapshot()
    rates = {name: snap[f"bench.obs_eps{{config={name}}}.p50"]
             for name in configs}
    ratios = {name: snap[f"bench.obs_ratio{{config={name}}}.p50"]
              for name in ("disabled", "enabled")}
    return {
        "off_eps": rates["off"],
        "disabled_eps": rates["disabled"],
        "enabled_eps": rates["enabled"],
        "disabled_overhead": 1.0 - ratios["disabled"],
        "enabled_overhead": 1.0 - ratios["enabled"],
    }


def bench_summary_metrics(n_samples: int = 20_000, calls: int = 300) -> dict:
    summary = Summary()
    rng = np.random.default_rng(5)
    for v in rng.normal(50.0, 12.0, size=n_samples):
        summary.observe(float(v))
    raw = summary.samples()

    start = time.perf_counter()
    for _ in range(calls):
        summary.percentile(95.0)
        summary.mean
    cached = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(calls):
        float(np.percentile(np.asarray(raw), 95.0))  # the seed's re-convert
        float(np.mean(np.asarray(raw)))
    naive = time.perf_counter() - start

    summary.reset()
    assert summary.count == 0
    return {
        "cached_calls_per_s": calls / cached,
        "naive_calls_per_s": calls / naive,
        "speedup": naive / cached,
    }


def bench_sketches(n_keys: int = 30_000) -> dict:
    keys = [f"user-{i % 2000}-{i % 97}" for i in range(n_keys)]

    cms_loop = CountMinSketch(epsilon=0.005, delta=0.01)
    start = time.perf_counter()
    for k in keys:
        cms_loop.add(k)
    loop_s = time.perf_counter() - start

    cms_batch = CountMinSketch(epsilon=0.005, delta=0.01)
    start = time.perf_counter()
    cms_batch.add_many(keys)
    batch_s = time.perf_counter() - start
    assert (cms_loop._table == cms_batch._table).all()

    hll_loop, hll_batch = HyperLogLog(12), HyperLogLog(12)
    start = time.perf_counter()
    for k in keys:
        hll_loop.add(k)
    hll_loop_s = time.perf_counter() - start
    start = time.perf_counter()
    hll_batch.add_many(keys)
    hll_batch_s = time.perf_counter() - start
    assert (hll_loop._registers == hll_batch._registers).all()

    return {
        "cms_add_keys_per_s": n_keys / loop_s,
        "cms_add_many_keys_per_s": n_keys / batch_s,
        "cms_speedup": loop_s / batch_s,
        "hll_speedup": hll_loop_s / hll_batch_s,
    }


def run_experiment(n_events: int = N_EVENTS) -> dict:
    # `config` and `throughput` are read by tools/check_perf.py against
    # the committed baseline — extend results with new keys only.
    registry = MetricsRegistry()
    return {
        "config": {"n_events": n_events, "n_keys": N_KEYS,
                   "source_batch": SOURCE_BATCH, "window_s": WINDOW_S},
        "platform": platform_stamp(),
        "git_sha": git_sha(),
        "throughput": bench_pipeline(n_events, registry),
        "obs_overhead": bench_obs_overhead(n_events, registry),
        "summary_metrics": bench_summary_metrics(),
        "sketch": bench_sketches(),
        "metrics": registry.snapshot(),
    }


def report(results: dict) -> None:
    t = results["throughput"]
    print_table(
        "P1  batched dataflow throughput "
        f"({results['config']['n_events']} events, map->filter->keyBy->window)",
        ["mode", "elements/s", "speedup vs per-item"],
        [["per_item", t["per_item_eps"], 1.0],
         ["batched", t["batched_eps"], t["speedup_batched"]],
         ["chained", t["chained_eps"], t["speedup_chained"]]],
        note="identical sink contents across all modes (asserted)")
    o = results["obs_overhead"]
    print_table(
        "P1  observability overhead (chained mode)",
        ["config", "elements/s", "overhead vs off"],
        [["off", o["off_eps"], 0.0],
         ["tracer disabled", o["disabled_eps"], o["disabled_overhead"]],
         ["tracer + metrics", o["enabled_eps"], o["enabled_overhead"]]],
        note="budget: <5% enabled, ~0% disabled (gated by tools/check_obs.py)")
    s, k = results["summary_metrics"], results["sketch"]
    print_table(
        "P1  satellite kernels",
        ["kernel", "speedup"],
        [["Summary.percentile/mean cached array", s["speedup"]],
         ["CountMinSketch.add_many", k["cms_speedup"]],
         ["HyperLogLog.add_many", k["hll_speedup"]]],
        note="batched sketch inserts are bit-identical to looped add()")


def bench_p1_throughput(benchmark):
    """pytest-benchmark entry: smaller stream, same invariants."""
    results = benchmark.pedantic(lambda: run_experiment(30_000),
                                 rounds=1, iterations=1)
    report(results)
    t = results["throughput"]
    assert t["speedup_chained"] > 1.5
    assert t["speedup_batched"] > 1.0
    assert results["sketch"]["cms_speedup"] > 1.0


def main() -> None:
    parser = benchlib.bench_parser(__doc__, events_default=N_EVENTS)
    args = parser.parse_args()
    if args.events < 1:
        parser.error("--events must be >= 1")
    results = run_experiment(args.events)
    report(results)
    # P1 owns the whole baseline file the other benches merge into.
    benchlib.write_full(args.out, results)


if __name__ == "__main__":
    main()
