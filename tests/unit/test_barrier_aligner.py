"""BarrierAligner: the per-subtask checkpoint-alignment state machine."""

import pytest

from repro.streaming.barrier import (
    BLOCKED,
    COMPLETE,
    IGNORED,
    SPILL,
    STRAGGLER,
    BarrierAligner,
)
from repro.util.errors import CheckpointError

A, B, C = "chan-a", "chan-b", "chan-c"


class TestAlignedMode:
    def test_single_channel_completes_immediately(self):
        aligner = BarrierAligner((A,))
        result = aligner.on_barrier(A, 1)
        assert result.action == COMPLETE
        assert result.checkpoint_id == 1
        assert aligner.completed_id == 1
        assert not aligner.aligning

    def test_two_channels_block_then_complete(self):
        aligner = BarrierAligner((A, B))
        first = aligner.on_barrier(A, 1)
        assert first.action == BLOCKED
        assert aligner.is_blocked(A)
        assert not aligner.is_blocked(B)
        second = aligner.on_barrier(B, 1)
        assert second.action == COMPLETE
        assert not aligner.is_blocked(A)

    def test_successive_checkpoints(self):
        aligner = BarrierAligner((A, B))
        aligner.on_barrier(A, 1)
        aligner.on_barrier(B, 1)
        assert aligner.on_barrier(B, 2).action == BLOCKED
        assert aligner.on_barrier(A, 2).action == COMPLETE
        assert aligner.completed_id == 2

    def test_unknown_channel_rejected(self):
        aligner = BarrierAligner((A,))
        with pytest.raises(CheckpointError):
            aligner.on_barrier(B, 1)

    def test_no_channels_rejected(self):
        with pytest.raises(CheckpointError):
            BarrierAligner(())


class TestMarkerDuplication:
    """An at-least-once channel may re-deliver markers; they must be
    absorbed, never double-counted."""

    def test_duplicate_during_alignment_ignored(self):
        aligner = BarrierAligner((A, B))
        aligner.on_barrier(A, 1)
        assert aligner.on_barrier(A, 1).action == IGNORED
        assert aligner.on_barrier(B, 1).action == COMPLETE

    def test_stale_marker_after_completion_ignored(self):
        aligner = BarrierAligner((A, B))
        aligner.on_barrier(A, 1)
        aligner.on_barrier(B, 1)
        assert aligner.on_barrier(A, 1).action == IGNORED
        assert aligner.on_barrier(B, 0).action == IGNORED

    def test_marker_below_current_alignment_ignored(self):
        aligner = BarrierAligner((A, B))
        aligner.on_barrier(A, 3)
        # a marker from checkpoint 2 surfacing late: the coordinator
        # already abandoned it, drop without disturbing alignment of 3
        assert aligner.on_barrier(B, 2).action == IGNORED
        assert aligner.on_barrier(B, 3).action == COMPLETE


class TestOvertakingBarrier:
    def test_newer_barrier_restarts_alignment(self):
        aligner = BarrierAligner((A, B))
        aligner.on_barrier(A, 1)
        # coordinator abandoned 1 and triggered 2; the new marker
        # restarts alignment rather than mixing epochs
        assert aligner.on_barrier(A, 2).action == BLOCKED
        assert aligner.on_barrier(B, 2).action == COMPLETE
        assert aligner.completed_id == 2


class TestUnalignedEscapeHatch:
    def test_spill_after_timeout(self):
        aligner = BarrierAligner((A, B, C), unaligned_after=2)
        aligner.on_barrier(A, 1)
        assert aligner.on_cycle() is None
        assert aligner.on_cycle() is None
        result = aligner.on_cycle()
        assert result is not None and result.action == SPILL
        assert set(result.spill_channels) == {B, C}
        # blocked channel unblocks, lagging channels spill
        assert not aligner.is_blocked(A)
        assert aligner.is_spilling(B) and aligner.is_spilling(C)
        assert not aligner.is_spilling(A)

    def test_stragglers_close_the_spill(self):
        aligner = BarrierAligner((A, B), unaligned_after=1)
        aligner.on_barrier(A, 1)
        aligner.on_cycle()
        spill = aligner.on_cycle()
        assert spill is not None and spill.spill_channels == (B,)
        late = aligner.on_barrier(B, 1)
        assert late.action == STRAGGLER
        assert aligner.completed_id == 1
        assert not aligner.aligning

    def test_no_timeout_in_pure_aligned_mode(self):
        aligner = BarrierAligner((A, B), unaligned_after=None)
        aligner.on_barrier(A, 1)
        for _ in range(50):
            assert aligner.on_cycle() is None
        assert aligner.is_blocked(A)

    def test_on_cycle_idle_without_alignment(self):
        aligner = BarrierAligner((A, B), unaligned_after=1)
        assert aligner.on_cycle() is None
        assert aligner.pending_cycles == 0


class TestReset:
    def test_reset_forgets_alignment(self):
        aligner = BarrierAligner((A, B))
        aligner.on_barrier(A, 5)
        aligner.reset()
        assert not aligner.aligning
        assert not aligner.is_blocked(A)
        # restore rewinds below completed ids; a fresh barrier 5 must
        # still be ignored only if it was *completed*, not just seen
        assert aligner.on_barrier(A, 5).action == BLOCKED

    def test_alignment_cycles_recorded(self):
        aligner = BarrierAligner((A, B))
        aligner.on_barrier(A, 1)
        aligner.on_cycle()
        aligner.on_cycle()
        aligner.on_barrier(B, 1)
        assert aligner.last_alignment_cycles == 2
