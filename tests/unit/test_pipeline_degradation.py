"""Graceful degradation: last-known analytics under backbone failure."""

import pytest

from repro.core import AnalyticsSnapshot, ARBigDataPipeline, PipelineConfig
from repro.util.errors import BrokerDown


def _pipeline():
    pipeline = ARBigDataPipeline(PipelineConfig(seed=11))
    pipeline.create_topic("readings")
    for i in range(40):
        pipeline.ingest("readings", {"sensor": i % 3, "v": float(i)},
                        key=str(i % 3), timestamp=float(i))
    return pipeline


def _query(pipeline):
    return pipeline.resilient_windowed_aggregate(
        "readings", key_fn=lambda v: v["sensor"],
        value_fn=lambda v: v["v"], window_s=10.0)


def _fail_all_brokers(pipeline):
    for broker_id in list(pipeline.log.brokers):
        pipeline.log.fail_broker(broker_id)


def _recover_all_brokers(pipeline):
    for broker_id in list(pipeline.log.brokers):
        pipeline.log.recover_broker(broker_id)


class TestGracefulDegradation:
    def test_healthy_query_is_fresh(self):
        snapshot = _query(_pipeline())
        assert isinstance(snapshot, AnalyticsSnapshot)
        assert not snapshot.stale
        assert snapshot.age_s == 0.0
        assert snapshot.reason is None
        assert len(snapshot.results) > 0

    def test_failure_serves_last_known_with_staleness(self):
        pipeline = _pipeline()
        fresh = _query(pipeline)
        _fail_all_brokers(pipeline)
        pipeline.clock.advance(7.5)
        stale = _query(pipeline)
        assert stale.stale
        assert stale.results == fresh.results
        assert stale.age_s == pytest.approx(7.5)
        assert "BrokerDown" in stale.reason

    def test_recovery_returns_to_fresh(self):
        pipeline = _pipeline()
        _query(pipeline)
        _fail_all_brokers(pipeline)
        assert _query(pipeline).stale
        _recover_all_brokers(pipeline)
        again = _query(pipeline)
        assert not again.stale
        assert again.age_s == 0.0

    def test_failure_with_no_cache_raises(self):
        pipeline = _pipeline()
        _fail_all_brokers(pipeline)
        with pytest.raises(BrokerDown):
            _query(pipeline)

    def test_cache_is_keyed_per_aggregation(self):
        pipeline = _pipeline()
        _query(pipeline)  # caches (readings, 10.0, mean) only
        _fail_all_brokers(pipeline)
        with pytest.raises(BrokerDown):
            pipeline.resilient_windowed_aggregate(
                "readings", key_fn=lambda v: v["sensor"],
                value_fn=lambda v: v["v"], window_s=20.0)

    def test_staleness_accumulates_until_recovery(self):
        pipeline = _pipeline()
        _query(pipeline)
        _fail_all_brokers(pipeline)
        pipeline.clock.advance(3.0)
        first = _query(pipeline)
        pipeline.clock.advance(4.0)
        second = _query(pipeline)
        assert second.age_s == pytest.approx(first.age_s + 4.0)
        assert second.computed_at == first.computed_at
