"""The headline chaos property: recovery reproduces the fault-free run.

For any seeded fault schedule — operator crashes mid-batch, torn
appends, unavailable partitions, duplicate delivery — supervised
execution (checkpoint, crash, restore, replay) must leave the sinks
bit-identical to a run with no faults at all, in per-item, batched and
chained execution modes.  And the same seed must reproduce the same
fault trace, or none of it is debuggable.

The seeded sweeps are marked ``chaos`` (excluded from tier 1); one
fixed-schedule smoke runs unmarked so the default gate still exercises
the machinery end to end.
"""

import pytest

from repro.chaos import (
    SITE_APPEND,
    SITE_FETCH,
    SITE_OPERATOR,
    ChaosLogCluster,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_free_sinks,
    reference_events,
    reference_job,
    reference_operator_names,
    run_with_recovery,
)
from repro.eventlog.broker import LogCluster, TopicConfig
from repro.eventlog.producer import Producer
from repro.streaming.connectors import log_source
from repro.util.clock import SimClock

MODES = [  # (batch_mode, chaining)
    (False, False),
    (True, False),
    (True, True),
]


def _run_all_modes(build, plan, source_batch=32):
    """Assert the recovery invariant for one plan in every mode."""
    for batch_mode, chaining in MODES:
        golden = fault_free_sinks(build, batch_mode=batch_mode,
                                  chaining=chaining,
                                  source_batch=source_batch)
        injector = FaultInjector(plan)
        report = run_with_recovery(build(), injector,
                                   batch_mode=batch_mode,
                                   chaining=chaining,
                                   source_batch=source_batch)
        assert report.sink_values == golden, (
            f"recovered sinks diverge (batch_mode={batch_mode}, "
            f"chaining={chaining}, plan={plan.name}, seed={plan.seed})")


class TestFixedScheduleSmoke:
    """Unmarked: keeps the chaos machinery inside the tier-1 gate."""

    def test_mid_batch_crashes_recover_exactly(self):
        events = reference_events(seed=3)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=57,
                      target="double"),
            FaultSpec("operator_crash", SITE_OPERATOR, at=211,
                      target="window_sum"),
        ), name="smoke")
        _run_all_modes(lambda: reference_job(events), plan)

    def test_same_seed_same_trace(self):
        events = reference_events(seed=3)
        plan = FaultPlan.random(
            21, horizon=300, operators=reference_operator_names(),
            crashes=2, torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0)

        def trace_once():
            injector = FaultInjector(plan)
            run_with_recovery(reference_job(events), injector)
            return injector.trace_tuples()

        first = trace_once()
        assert first  # the schedule actually fired
        assert trace_once() == first


@pytest.mark.chaos
class TestRandomizedCrashSchedules:
    @pytest.mark.parametrize("seed", range(12))
    def test_recovered_sinks_match_fault_free(self, seed):
        events = reference_events(seed=seed % 5)
        plan = FaultPlan.random(
            seed, horizon=360, operators=reference_operator_names(),
            crashes=3, torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0,
            name=f"crashes-{seed}")
        _run_all_modes(lambda: reference_job(events), plan)

    @pytest.mark.parametrize("seed", range(6))
    def test_varied_source_batches(self, seed):
        events = reference_events(seed=1, n=250)
        plan = FaultPlan.random(
            seed + 100, horizon=240,
            operators=reference_operator_names(), crashes=2,
            torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0)
        for source_batch in (5, 17, 64):
            _run_all_modes(lambda: reference_job(events), plan,
                           source_batch=source_batch)


@pytest.mark.chaos
class TestLogBackedRecovery:
    """The stream reads a chaos-wrapped log: fetch faults + crashes."""

    def _seeded_topic(self, injector=None, partitions=2):
        cluster = LogCluster(num_brokers=3)
        cluster.create_topic(TopicConfig("events", partitions=partitions,
                                         replication=2))
        producer = Producer(cluster, clock=SimClock(), idempotent=True)
        for element in reference_events(seed=2, n=200):
            producer.send("events", element.value,
                          key=str(element.value["k"]),
                          timestamp=element.timestamp)
        if injector is None:
            return cluster
        return ChaosLogCluster(cluster, injector)

    def _build(self, cluster):
        return reference_job(log_source(cluster, "events"))

    @pytest.mark.parametrize("seed", range(8))
    def test_fetch_faults_and_crashes_recover(self, seed):
        golden_cluster = self._seeded_topic()
        plan = FaultPlan.random(
            seed, horizon=200, operators=reference_operator_names(),
            crashes=2, torn_appends=0, unavailable_windows=1,
            duplicate_deliveries=2, task_timeouts=0,
            name=f"log-{seed}")
        # Keep the faults on the fetch path: appends already happened.
        plan = FaultPlan(
            specs=tuple(s for s in plan.specs if s.site != SITE_APPEND),
            seed=plan.seed, name=plan.name)
        for batch_mode, chaining in MODES:
            golden = fault_free_sinks(
                lambda: self._build(golden_cluster),
                batch_mode=batch_mode, chaining=chaining)
            chaos_cluster = self._seeded_topic(FaultInjector(plan))
            report = run_with_recovery(
                self._build(chaos_cluster), chaos_cluster.injector,
                batch_mode=batch_mode, chaining=chaining)
            assert report.sink_values == golden, (
                f"log-backed recovery diverged (batch_mode={batch_mode}, "
                f"chaining={chaining}, seed={seed})")
