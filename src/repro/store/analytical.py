"""Columnar historical store: the analytics-facing scan tier.

The read-optimized half of the tiered store.  Committed epochs append
as immutable **segments** — numpy timestamp/metric columns plus a
dictionary-encoded key column sharing one store-wide key table, the
same representation :class:`~repro.streaming.batch.RecordBatch` moves
through the engine.  A small query layer (filter / group-by /
tumbling-window aggregate) runs directly over the consolidated columns,
so dashboard queries are a handful of numpy reductions rather than
per-row Python.

Values may be opaque objects (app payloads are usually dicts); a
``metric_fn`` extracts the numeric column at append time, and the raw
objects stay available for callable-keyed regrouping (``by=``).

Appends go **only** through :meth:`append_epoch`, guarded by
``last_applied_epoch`` exactly like the hot shards: staging builds the
arrays, the install appends one segment and flips the epoch — so a
crash-and-replay of the commit stream never double-appends a row.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

import numpy as np

from ..streaming.element import Element
from ..util.errors import StoreError

__all__ = ["AnalyticalStore"]

_AGGS = ("sum", "mean", "count", "min", "max")


def _default_metric(value: Any) -> float:
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    return math.nan


class AnalyticalStore:
    """Append-only columnar history with a numpy query layer."""

    def __init__(self, metric_fn: Callable[[Any], float] | None = None
                 ) -> None:
        self.metric_fn = metric_fn if metric_fn is not None \
            else _default_metric
        self._segments: list[dict[str, Any]] = []
        self._key_index: dict[Any, int] = {}
        self._key_dict: list[Any] = []
        self._consolidated: dict[str, Any] | None = None
        self.last_applied_epoch = 0
        self.rows = 0
        self.appends = 0

    # -- epoch append (the only mutation path) -------------------------------

    def _code_for(self, key: Any) -> int:
        code = self._key_index.get(key)
        if code is None:
            code = len(self._key_dict)
            self._key_index[key] = code
            self._key_dict.append(key)
        return code

    def stage_epoch(self, epoch: int, elements: Iterable[Element]
                    ) -> dict[str, Any] | None:
        """Encode one epoch's elements into columns, off to the side.
        Returns ``None`` when the epoch is already applied."""
        if epoch <= self.last_applied_epoch:
            return None
        ts: list[float] = []
        metric: list[float] = []
        codes: list[int] = []
        raw: list[Any] = []
        fn = self.metric_fn
        for e in elements:
            ts.append(e.timestamp)
            metric.append(fn(e.value))
            codes.append(self._code_for(e.key))
            raw.append(e.value)
        return {"epoch": epoch,
                "ts": np.asarray(ts, dtype=np.float64),
                "metric": np.asarray(metric, dtype=np.float64),
                "codes": np.asarray(codes, dtype=np.int64),
                "raw": raw}

    def install_epoch(self, staged: dict[str, Any] | None) -> int:
        if staged is None:
            return 0
        epoch = staged["epoch"]
        if epoch <= self.last_applied_epoch:
            return 0
        self._segments.append(staged)
        self._consolidated = None
        self.rows += len(staged["ts"])
        self.last_applied_epoch = epoch
        self.appends += 1
        return len(staged["ts"])

    def append_epoch(self, epoch: int, elements: Iterable[Element]) -> int:
        return self.install_epoch(self.stage_epoch(epoch, elements))

    # -- consolidated columns ------------------------------------------------

    def columns(self) -> dict[str, Any]:
        """All segments as one set of columns (cached until the next
        append): ``ts``/``metric``/``codes`` arrays plus ``raw`` list
        and the shared ``key_dict``."""
        if self._consolidated is None:
            if self._segments:
                self._consolidated = {
                    "ts": np.concatenate(
                        [s["ts"] for s in self._segments]),
                    "metric": np.concatenate(
                        [s["metric"] for s in self._segments]),
                    "codes": np.concatenate(
                        [s["codes"] for s in self._segments]),
                    "raw": [v for s in self._segments for v in s["raw"]],
                }
            else:
                self._consolidated = {
                    "ts": np.empty(0, dtype=np.float64),
                    "metric": np.empty(0, dtype=np.float64),
                    "codes": np.empty(0, dtype=np.int64),
                    "raw": [],
                }
        cols = dict(self._consolidated)
        cols["key_dict"] = self._key_dict
        return cols

    def _mask(self, cols: dict[str, Any], keys: Iterable[Any] | None,
              start: float | None, end: float | None) -> np.ndarray:
        mask = np.ones(len(cols["ts"]), dtype=bool)
        if keys is not None:
            wanted = {self._key_index[k] for k in keys
                      if k in self._key_index}
            if wanted:
                mask &= np.isin(cols["codes"],
                                np.fromiter(wanted, dtype=np.int64))
            else:
                mask &= False
        if start is not None:
            mask &= cols["ts"] >= start
        if end is not None:
            mask &= cols["ts"] < end
        return mask

    # -- query layer ---------------------------------------------------------

    def filter(self, keys: Iterable[Any] | None = None,
               start: float | None = None,
               end: float | None = None) -> dict[str, Any]:
        """Row subset by key set and/or half-open time range, as
        columns (plus the raw value list, same order)."""
        cols = self.columns()
        mask = self._mask(cols, keys, start, end)
        idx = np.flatnonzero(mask)
        raw = cols["raw"]
        return {"ts": cols["ts"][idx], "metric": cols["metric"][idx],
                "codes": cols["codes"][idx],
                "raw": [raw[i] for i in idx.tolist()],
                "key_dict": self._key_dict}

    def count(self, keys: Iterable[Any] | None = None,
              start: float | None = None, end: float | None = None) -> int:
        cols = self.columns()
        return int(self._mask(cols, keys, start, end).sum())

    @staticmethod
    def _reduce(agg: str, codes: np.ndarray, metric: np.ndarray,
                size: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-code aggregate over dense code space [0, size); returns
        (touched codes, aggregated values)."""
        counts = np.bincount(codes, minlength=size)
        touched = np.flatnonzero(counts)
        if agg == "count":
            return touched, counts[touched].astype(np.float64)
        if agg in ("sum", "mean"):
            sums = np.bincount(codes, weights=metric, minlength=size)
            if agg == "sum":
                return touched, sums[touched]
            return touched, sums[touched] / counts[touched]
        fill = math.inf if agg == "min" else -math.inf
        extrema = np.full(size, fill, dtype=np.float64)
        op = np.minimum if agg == "min" else np.maximum
        op.at(extrema, codes, metric)
        return touched, extrema[touched]

    def group_by(self, agg: str = "sum",
                 keys: Iterable[Any] | None = None,
                 start: float | None = None, end: float | None = None,
                 by: Callable[[Any], Any] | None = None) -> dict[Any, float]:
        """Aggregate the metric per key.

        ``by`` regroups by a callable over the *raw* values (e.g.
        ``lambda v: v["item"]``) — a per-row Python path for dashboard
        pivots the key column does not carry; omit it for the numpy
        fast path over dictionary codes.
        """
        if agg not in _AGGS:
            raise StoreError(f"unknown aggregate {agg!r} "
                             f"(expected one of {_AGGS})")
        sel = self.filter(keys=keys, start=start, end=end)
        if by is not None:
            groups: dict[Any, list[float]] = {}
            for value, m in zip(sel["raw"], sel["metric"].tolist()):
                groups.setdefault(by(value), []).append(m)
            return {g: self._scalar(agg, vals)
                    for g, vals in groups.items()}
        touched, values = self._reduce(agg, sel["codes"], sel["metric"],
                                       len(self._key_dict))
        kd = self._key_dict
        return {kd[c]: float(v)
                for c, v in zip(touched.tolist(), values.tolist())}

    @staticmethod
    def _scalar(agg: str, vals: list[float]) -> float:
        if agg == "count":
            return float(len(vals))
        if agg == "sum":
            return float(sum(vals))
        if agg == "mean":
            return float(sum(vals) / len(vals))
        return float(min(vals) if agg == "min" else max(vals))

    def tumbling(self, window_s: float, agg: str = "sum",
                 keys: Iterable[Any] | None = None,
                 start: float | None = None, end: float | None = None,
                 ) -> dict[tuple[Any, float], float]:
        """Per-key tumbling-window aggregate:
        ``(key, window_start) -> value``, computed as one composite
        bincount over ``code * n_windows + window_index``."""
        if window_s <= 0:
            raise StoreError("window_s must be positive")
        if agg not in _AGGS:
            raise StoreError(f"unknown aggregate {agg!r} "
                             f"(expected one of {_AGGS})")
        sel = self.filter(keys=keys, start=start, end=end)
        if not len(sel["ts"]):
            return {}
        widx = np.floor_divide(sel["ts"], window_s).astype(np.int64)
        base = int(widx.min())
        widx -= base
        n_windows = int(widx.max()) + 1
        composite = sel["codes"] * n_windows + widx
        touched, values = self._reduce(
            agg, composite, sel["metric"],
            len(self._key_dict) * n_windows)
        kd = self._key_dict
        out: dict[tuple[Any, float], float] = {}
        for comp, v in zip(touched.tolist(), values.tolist()):
            code, w = divmod(comp, n_windows)
            out[(kd[code], (w + base) * window_s)] = float(v)
        return out

    def stats(self) -> dict[str, Any]:
        return {"rows": self.rows, "segments": len(self._segments),
                "keys": len(self._key_dict), "appends": self.appends,
                "last_applied_epoch": self.last_applied_epoch}
