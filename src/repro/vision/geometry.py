"""Multi-view geometry: homography estimation and planar pose recovery.

- :func:`estimate_homography` — normalized DLT.
- :func:`ransac_homography` — robust estimation over noisy matches.
- :func:`pose_from_homography` — decompose K^-1 H for a planar target
  (the standard marker-based AR pose path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import VisionError
from .camera import CameraIntrinsics, Pose

__all__ = ["estimate_homography", "apply_homography", "ransac_homography",
           "RansacResult", "pose_from_homography", "reprojection_error"]


def _normalize_points(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Hartley normalization: zero centroid, mean distance sqrt(2)."""
    centroid = points.mean(axis=0)
    shifted = points - centroid
    mean_dist = np.mean(np.linalg.norm(shifted, axis=1))
    scale = np.sqrt(2.0) / mean_dist if mean_dist > 1e-12 else 1.0
    transform = np.array([
        [scale, 0.0, -scale * centroid[0]],
        [0.0, scale, -scale * centroid[1]],
        [0.0, 0.0, 1.0],
    ])
    homogeneous = np.column_stack([points, np.ones(len(points))])
    normalized = (transform @ homogeneous.T).T[:, :2]
    return normalized, transform


def estimate_homography(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Normalized DLT homography mapping src (Nx2) to dst (Nx2), N>=4."""
    src = np.atleast_2d(np.asarray(src, dtype=float))
    dst = np.atleast_2d(np.asarray(dst, dtype=float))
    if src.shape != dst.shape or src.shape[0] < 4 or src.shape[1] != 2:
        raise VisionError("need matching Nx2 arrays with N>=4")
    src_n, t_src = _normalize_points(src)
    dst_n, t_dst = _normalize_points(dst)
    n = src.shape[0]
    a = np.zeros((2 * n, 9))
    for i in range(n):
        x, y = src_n[i]
        u, v = dst_n[i]
        a[2 * i] = [-x, -y, -1, 0, 0, 0, u * x, u * y, u]
        a[2 * i + 1] = [0, 0, 0, -x, -y, -1, v * x, v * y, v]
    _u, s, vt = np.linalg.svd(a)
    if s[-2] < 1e-12:
        raise VisionError("degenerate point configuration")
    h_n = vt[-1].reshape(3, 3)
    h = np.linalg.inv(t_dst) @ h_n @ t_src
    if abs(h[2, 2]) < 1e-12:
        raise VisionError("homography normalization failed")
    return h / h[2, 2]


def apply_homography(h: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Map Nx2 points through a 3x3 homography."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    homogeneous = np.column_stack([points, np.ones(len(points))])
    mapped = (h @ homogeneous.T).T
    with np.errstate(divide="ignore", invalid="ignore"):
        return mapped[:, :2] / mapped[:, 2:3]


def reprojection_error(h: np.ndarray, src: np.ndarray,
                       dst: np.ndarray) -> np.ndarray:
    """Per-point Euclidean transfer error of h on (src, dst)."""
    projected = apply_homography(h, src)
    return np.linalg.norm(projected - np.atleast_2d(dst), axis=1)


@dataclass(frozen=True)
class RansacResult:
    homography: np.ndarray
    inlier_mask: np.ndarray
    iterations: int

    @property
    def num_inliers(self) -> int:
        return int(self.inlier_mask.sum())


def ransac_homography(src: np.ndarray, dst: np.ndarray,
                      rng: np.random.Generator,
                      threshold: float = 3.0,
                      max_iterations: int = 500,
                      confidence: float = 0.995) -> RansacResult:
    """RANSAC homography with adaptive iteration count and final
    least-squares refit on the inliers."""
    src = np.atleast_2d(np.asarray(src, dtype=float))
    dst = np.atleast_2d(np.asarray(dst, dtype=float))
    n = src.shape[0]
    if n < 4:
        raise VisionError(f"RANSAC needs >= 4 correspondences, got {n}")
    best_mask = np.zeros(n, dtype=bool)
    best_h: np.ndarray | None = None
    needed = max_iterations
    iteration = 0
    while iteration < needed and iteration < max_iterations:
        iteration += 1
        sample = rng.choice(n, size=4, replace=False)
        try:
            h = estimate_homography(src[sample], dst[sample])
        except VisionError:
            continue
        errors = reprojection_error(h, src, dst)
        mask = errors < threshold
        if mask.sum() > best_mask.sum():
            best_mask = mask
            best_h = h
            inlier_ratio = mask.mean()
            if 0 < inlier_ratio < 1:
                # Adaptive termination.
                denom = np.log(max(1e-12, 1 - inlier_ratio ** 4))
                needed = min(max_iterations,
                             int(np.ceil(np.log(1 - confidence) / denom)))
            elif inlier_ratio == 1.0:
                break
    if best_h is None or best_mask.sum() < 4:
        raise VisionError("RANSAC failed to find a homography")
    refined = estimate_homography(src[best_mask], dst[best_mask])
    final_mask = reprojection_error(refined, src, dst) < threshold
    if final_mask.sum() >= 4:
        best_mask = final_mask
        best_h = estimate_homography(src[best_mask], dst[best_mask])
    else:
        best_h = refined
    return RansacResult(homography=best_h, inlier_mask=best_mask,
                        iterations=iteration)


def pose_from_homography(h: np.ndarray,
                         intrinsics: CameraIntrinsics) -> Pose:
    """Recover the camera pose from a homography of a Z=0 world plane.

    H ~ K [r1 r2 t]; orthonormalize via SVD and pick the solution with
    the plane in front of the camera.
    """
    k_inv = np.linalg.inv(intrinsics.matrix)
    m = k_inv @ h
    scale = np.linalg.norm(m[:, 0])
    if scale < 1e-12:
        raise VisionError("degenerate homography for pose recovery")
    m = m / scale
    r1, r2, t = m[:, 0], m[:, 1], m[:, 2]
    r3 = np.cross(r1, r2)
    rotation_raw = np.stack([r1, r2, r3], axis=1)
    u, _s, vt = np.linalg.svd(rotation_raw)
    rotation = u @ np.diag([1.0, 1.0, np.linalg.det(u @ vt)]) @ vt
    if t[2] < 0:
        # Plane behind the camera: flip the sign ambiguity.
        rotation = rotation @ np.diag([-1.0, -1.0, 1.0])
        t = -t
    return Pose(rotation, t)
