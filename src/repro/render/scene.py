"""AR scene graph: anchored virtual content.

A :class:`SceneGraph` holds :class:`Annotation`s — virtual content
anchored to world positions (labels, gauges, highlight contours, data
blobs).  Hierarchy comes from parent transforms on :class:`SceneNode`s
so grouped content (e.g. a building's sensor array) moves together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..util.errors import RenderError

__all__ = ["Annotation", "SceneNode", "SceneGraph"]


@dataclass
class Annotation:
    """Virtual content anchored at a world point.

    priority      higher survives frame-budget pressure longer
    width/height  label extent in pixels when composited
    kind          free-form ("label", "gauge", "contour", "bubble", ...)
    payload       application data carried to the overlay
    """

    annotation_id: str
    anchor: np.ndarray  # world (3,)
    text: str = ""
    kind: str = "label"
    priority: float = 1.0
    width_px: float = 80.0
    height_px: float = 24.0
    payload: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.anchor = np.asarray(self.anchor, dtype=float).reshape(3)
        if self.width_px <= 0 or self.height_px <= 0:
            raise RenderError("annotation extent must be positive")


@dataclass
class SceneNode:
    """A grouping node with a rigid transform (rotation + translation)."""

    name: str
    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))
    annotations: list[Annotation] = field(default_factory=list)
    children: list["SceneNode"] = field(default_factory=list)

    def world_annotations(self, parent_rotation: np.ndarray | None = None,
                          parent_translation: np.ndarray | None = None,
                          ) -> Iterator[tuple[Annotation, np.ndarray]]:
        """Yield (annotation, world anchor) applying cumulative transforms."""
        r_p = parent_rotation if parent_rotation is not None else np.eye(3)
        t_p = (parent_translation if parent_translation is not None
               else np.zeros(3))
        r = r_p @ self.rotation
        t = r_p @ self.translation + t_p
        for annotation in self.annotations:
            yield annotation, r @ annotation.anchor + t
        for child in self.children:
            yield from child.world_annotations(r, t)


class SceneGraph:
    """Root container with id-indexed lookup."""

    def __init__(self) -> None:
        self.root = SceneNode(name="root")
        self._index: dict[str, Annotation] = {}

    def add(self, annotation: Annotation,
            node: SceneNode | None = None) -> Annotation:
        if annotation.annotation_id in self._index:
            raise RenderError(
                f"duplicate annotation id {annotation.annotation_id!r}")
        (node if node is not None else self.root).annotations.append(
            annotation)
        self._index[annotation.annotation_id] = annotation
        return annotation

    def add_node(self, node: SceneNode,
                 parent: SceneNode | None = None) -> SceneNode:
        # Index every annotation in the subtree (children included),
        # validating before mutating so a duplicate leaves no partial
        # state behind.
        subtree: list[Annotation] = []

        def collect(current: SceneNode) -> None:
            subtree.extend(current.annotations)
            for child in current.children:
                collect(child)

        collect(node)
        for annotation in subtree:
            if annotation.annotation_id in self._index:
                raise RenderError(
                    f"duplicate annotation id {annotation.annotation_id!r}")
        (parent if parent is not None else self.root).children.append(node)
        for annotation in subtree:
            self._index[annotation.annotation_id] = annotation
        return node

    def get(self, annotation_id: str) -> Annotation:
        try:
            return self._index[annotation_id]
        except KeyError:
            raise RenderError(f"unknown annotation {annotation_id!r}") from None

    def remove(self, annotation_id: str) -> None:
        annotation = self.get(annotation_id)
        self._remove_from(self.root, annotation)
        del self._index[annotation_id]

    def _remove_from(self, node: SceneNode, annotation: Annotation) -> bool:
        if annotation in node.annotations:
            node.annotations.remove(annotation)
            return True
        return any(self._remove_from(child, annotation)
                   for child in node.children)

    def __len__(self) -> int:
        return len(self._index)

    def all_world_annotations(self) -> list[tuple[Annotation, np.ndarray]]:
        return list(self.root.world_annotations())
