"""Job execution: batched channels, operator chaining, checkpoints.

The executor runs a :class:`~repro.streaming.graph.JobGraph` by pulling
batches from the sources and pushing items through bounded channels in
topological order.  Single-threaded and deterministic — "parallelism" is
a modelled quantity (channel occupancy / backpressure counters), not OS
threads, which keeps every experiment reproducible.

Two execution modes share one semantics:

- **batched** (default): whole channel batches move through
  :meth:`Operator.process_batch` and are routed downstream in one call;
  linear runs of chainable operators are fused into a single
  :class:`~repro.streaming.chain.ChainedOperator` node at build time
  (``chaining=True``), eliminating per-hop channel traffic.
- **per-item** (``batch_mode=False``): the original element-at-a-time
  dispatch, kept as the measured baseline and as the semantic reference
  — batched execution is bit-identical to it (same sink contents, same
  operator state/checkpoints, same ``processed``/``emitted`` counters).

Counter semantics across modes: ``backpressure_events`` and
``dropped_overflow`` are accounted per *item* in both modes (the batch
path computes the identical arithmetic in O(1)), but *chaining* removes
the channels between fused operators, so a chained run observes
backpressure only at chain boundaries.

Checkpointing takes an aligned snapshot between drain cycles (at that
point no items are in flight, so the snapshot is globally consistent by
construction) — the moral equivalent of Chandy–Lamport barriers in a
single-threaded world.  Snapshots always capture the *logical* operators
of the job graph (chain members individually), so checkpoints taken
under any mode restore under any other.  ``restore`` rewinds sources to
their checkpointed positions, so replay-after-failure delivers
exactly-once results for deterministic operators.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from ..util.errors import BackpressureOverflow, CheckpointError
from .batch import (ColumnarStream, RecordBatch, decode_items, elements_of,
                    items_weight, take_prefix)
from .chain import ChainedOperator
from .element import Element, StreamItem, Watermark
from .errors import DLQ_SINK, FAIL, ErrorPolicy, guard_batch, guard_item
from .graph import JobGraph
from .join import IntervalJoinOperator
from .operators import Operator

__all__ = ["Executor", "Checkpoint", "SinkBuffer", "build_chains"]


@dataclass
class Checkpoint:
    """A consistent snapshot of a running job."""

    checkpoint_id: int
    source_positions: dict[str, int]
    operator_state: dict[str, Any]
    emitted_to_sinks: dict[str, int]
    #: chaos data-fault counters at the cut (see FaultInjector
    #: .data_counts): fault windows name records, so replay after a
    #: restore must rewind them to re-poison the same records
    data_counts: dict[str, int] = field(default_factory=dict)


@dataclass
class SinkBuffer:
    """Collects elements delivered to a named sink."""

    name: str
    elements: list[Element] = field(default_factory=list)

    @property
    def values(self) -> list[Any]:
        return [e.value for e in self.elements]

    def __len__(self) -> int:
        return len(self.elements)


def build_chains(job: JobGraph,
                 compatible: Any = None) -> dict[str, list[str]]:
    """Find maximal fusible runs: consecutive chainable operators linked
    by a untagged edge where the upstream has exactly one downstream and
    the downstream exactly one upstream.  Returns head -> member names.

    ``compatible(up, down) -> bool``, when given, adds an extra fusion
    gate — the parallel compiler (:mod:`repro.streaming.execution`) uses
    it to keep a chain from spanning a parallelism change, so both
    executors share one fusion rule set.
    """
    out_degree: dict[str, int] = {}
    in_degree: dict[str, int] = {}
    for up, down, _side in job.edges:
        out_degree[up] = out_degree.get(up, 0) + 1
        in_degree[down] = in_degree.get(down, 0) + 1
    links: dict[str, str] = {}
    for up, down, side in job.edges:
        if side is not None:
            continue
        if up not in job.operators or down not in job.operators:
            continue
        if not (job.operators[up].chainable and job.operators[down].chainable):
            continue
        if out_degree[up] != 1 or in_degree[down] != 1:
            continue
        if compatible is not None and not compatible(up, down):
            continue
        links[up] = down
    linked_to = set(links.values())
    chains: dict[str, list[str]] = {}
    for head in links:
        if head in linked_to:
            continue
        run = [head]
        while run[-1] in links:
            run.append(links[run[-1]])
        chains[head] = run
    return chains


class Executor:
    """Runs a job graph to completion (or incrementally)."""

    def __init__(self, job: JobGraph, channel_capacity: int = 10_000,
                 drop_on_overflow: bool = False, batch_mode: bool = True,
                 chaining: bool = True, columnar: bool | None = None,
                 injector: Any = None,
                 tracer: Any = None, metrics: Any = None,
                 profiler: Any = None) -> None:
        job.validate()
        self.job = job
        self.channel_capacity = channel_capacity
        self.drop_on_overflow = drop_on_overflow
        self.batch_mode = batch_mode
        self.chaining = chaining and batch_mode
        #: Columnar hot path: sources encode element runs as
        #: :class:`RecordBatch` columns and operators with columnar
        #: kernels consume them whole.  Pure representation change —
        #: sink output and checkpoints are identical; defaults on with
        #: batch_mode, ``columnar=False`` forces the list-of-Element
        #: batches (the PR-5-era baseline).
        self.columnar = batch_mode and (columnar if columnar is not None
                                        else True)
        #: optional fault injector (see :mod:`repro.chaos`) — duck-typed
        #: so the streaming layer never imports chaos: anything with
        #: ``intercept_batch(op, items, process)`` and ``before_item(op)``
        #: works.  ``None`` keeps the hot paths hook-free.
        self.injector = injector
        #: optional observability hooks (see :mod:`repro.obs`) — all
        #: duck-typed for the same layering reason as ``injector``:
        #: ``tracer`` needs ``start_span``/``activate``, ``metrics`` a
        #: :class:`~repro.util.metrics.MetricsRegistry` surface, and
        #: ``profiler`` ``timer()``/``record()``.  ``None`` (the
        #: default) keeps every hot path branch-predictable and free.
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.sinks: dict[str, SinkBuffer] = {
            s: SinkBuffer(s) for s in job.sinks
        }
        if job.needs_dead_letters:
            # The reserved DLQ sink rides the normal sink machinery, so
            # checkpoints snapshot/truncate it like any other sink and
            # recovery keeps it exactly-once.
            self.sinks[DLQ_SINK] = SinkBuffer(DLQ_SINK)
        self._job_span: Any = None
        self._obs_spans: dict[str, Any] = {}
        self._max_event_ts = float("-inf")
        # Registry lookups render labelled keys; hot paths go through
        # this handle cache instead of re-rendering per item.
        self._metric_handles: dict[tuple[str, str], Any] = {}
        self._build_plan()
        self._source_iters: dict[str, Any] = {}
        self._source_positions: dict[str, int] = {}
        self._source_buffers: dict[str, list[Element]] = {}
        self._source_streams: dict[str, ColumnarStream] = {}
        self.backpressure_events = 0
        self.dropped_overflow = 0
        self._checkpoint_seq = 0
        self._finished_sources: set[str] = set()
        self._flushed = False

    # -- execution plan ------------------------------------------------------

    def _build_plan(self) -> None:
        """Fuse chains (when enabled) and precompute routing tables.

        The plan maps the logical job graph onto execution nodes: every
        fused run becomes one :class:`ChainedOperator`; edges internal to
        a run disappear (no channel), the rest are renamed onto the
        chain node.  Downstream lists are precomputed once — the seed
        recomputed them per routed item.
        """
        rename: dict[str, str] = {}
        self._exec_ops: dict[str, Operator] = {}
        chains = build_chains(self.job) if self.chaining else {}
        in_chain: dict[str, str] = {}
        for head, members in chains.items():
            chained = ChainedOperator([self.job.operators[m]
                                       for m in members])
            # Per-member wall time is measured inside the chain (the
            # executor only sees the fused node).
            chained.profiler = self.profiler
            self._exec_ops[chained.name] = chained
            for m in members:
                in_chain[m] = chained.name
                rename[m] = chained.name
        for name, op in self.job.operators.items():
            if name not in in_chain:
                self._exec_ops[name] = op
                rename[name] = name
        self._exec_edges: list[tuple[str, str, str | None]] = []
        for up, down, side in self.job.edges:
            new_up = rename.get(up, up)
            new_down = rename.get(down, down)
            if new_up == new_down:  # edge internal to a chain
                continue
            self._exec_edges.append((new_up, new_down, side))
        # Topological order of exec nodes, derived from the job's order.
        seen: set[str] = set()
        self._topo: list[str] = []
        for name in self.job.topological_operators():
            exec_name = rename[name]
            if exec_name not in seen:
                seen.add(exec_name)
                self._topo.append(exec_name)
        # (node, side) -> queue of pending items
        self._channels: dict[tuple[str, str | None], deque[StreamItem]] = {}
        for _up, down, side in self._exec_edges:
            if down in self._exec_ops:
                self._channels.setdefault((down, side), deque())
        self._down: dict[str, list[tuple[str, str | None]]] = {}
        for up, down, side in self._exec_edges:
            self._down.setdefault(up, []).append((down, side))
        self._wire_error_policies()

    def _wire_error_policies(self) -> None:
        """Precompute error-policy enforcement per execution node.

        ``self._guard`` maps guarded *unfused* nodes to their policy;
        fused chains enforce per member internally (policies /
        dead-letter list / fault source installed here).  Jobs without
        declared policies and without data-fault chaos get an empty
        map — the drain loops then take exactly the pre-policy path.
        """
        policies = self.job.error_policies
        self._data_chaos = (self.injector is not None
                            and getattr(self.injector,
                                        "has_data_faults", False))
        self._dead_letters: list[Element] = []
        self._guard: dict[str, ErrorPolicy] = {}
        for name, op in self._exec_ops.items():
            if isinstance(op, ChainedOperator):
                member_policies = {m: policies[m]
                                   for m in op.member_names
                                   if m in policies}
                if member_policies or self._data_chaos:
                    op.policies = member_policies
                    op.dead_letters = self._dead_letters
                    if self._data_chaos:
                        op.fault_source = self.injector.data_directives
            else:
                policy = policies.get(name)
                if policy is not None and policy.kind != "fail":
                    self._guard[name] = policy
                elif self._data_chaos:
                    self._guard[name] = policy or FAIL

    def _deliver_dead_letters(self) -> None:
        """Move collected dead letters into the reserved DLQ sink."""
        self.sinks[DLQ_SINK].elements.extend(self._dead_letters)
        self._dead_letters.clear()

    def _guarded_process(self, op, policy):
        """A ``process_batch`` replacement enforcing ``policy`` (and any
        injected data faults) on every batch through ``op``."""
        def process(batch):
            faults = (self.injector.data_directives(op, batch)
                      if self._data_chaos else None)
            return guard_batch(op, batch, policy, op.process_batch,
                               self._dead_letters, faults)
        return process

    def _guarded_side_process(self, op, policy, side):
        """Like :meth:`_guarded_process` for one side of a join."""
        handler = lambda it, _s=side: (  # noqa: E731
            op.on_watermark_side(_s, it) if isinstance(it, Watermark)
            else op.process_side(_s, it))

        def process(batch):
            faults = (self.injector.data_directives(op, batch)
                      if self._data_chaos else None)
            return guard_batch(
                op, batch, policy,
                lambda items, _s=side: op.process_side_batch(_s, items),
                self._dead_letters, faults, handler=handler)
        return process

    def chained_nodes(self) -> dict[str, list[str]]:
        """Execution-node name -> member operator names for fused chains."""
        return {name: [op.name for op in node.operators]
                for name, node in self._exec_ops.items()
                if isinstance(node, ChainedOperator)}

    # -- source handling -----------------------------------------------------

    def _materialize_source(self, name: str) -> list[Element]:
        """Sources are materialized on first touch so checkpoint/restore can
        rewind by index.  Real systems rewind via log offsets; our
        eventlog-backed sources do exactly that through ``log_source``."""
        if name not in self._source_buffers:
            raw = list(self.job.sources[name].iterate())
            # Connectors may yield pre-encoded RecordBatches; the flat
            # element buffer stays canonical (checkpoint positions index
            # it), the columnar stream splices them in zero-copy.
            if RecordBatch in map(type, raw):
                self._source_buffers[name] = decode_items(raw)
            else:
                self._source_buffers[name] = raw
            self._source_positions.setdefault(name, 0)
            if self.columnar:
                self._source_streams[name] = ColumnarStream(raw)
        return self._source_buffers[name]

    def _pull_sources(self, batch: int) -> list[tuple[str, list[StreamItem]]]:
        pulled: list[tuple[str, list[StreamItem]]] = []
        for name in sorted(self.job.sources):
            if name in self._finished_sources:
                continue
            buffer = self._materialize_source(name)
            pos = self._source_positions[name]
            if self.columnar:
                take = self._source_streams[name].slice(pos, pos + batch)
                taken = min(batch, len(buffer) - pos)
            else:
                take = buffer[pos:pos + batch]
                taken = len(take)
            self._source_positions[name] = pos + taken
            if take:
                pulled.append((name, take))
            if self._source_positions[name] >= len(buffer):
                self._finished_sources.add(name)
        return pulled

    # -- channel plumbing ---------------------------------------------------------

    def _offer(self, node: str, side: str | None, item: StreamItem) -> None:
        channel = self._channels[(node, side)]
        if len(channel) >= self.channel_capacity:
            if self.drop_on_overflow:
                self.dropped_overflow += 1
                if self.metrics is not None:
                    self.metrics.counter("channel.dropped", node=node).inc()
                return
            # Backpressure: in the single-threaded model the producer
            # stalls, which we account for and then proceed (the channel
            # grows — the counter is the signal the benchmarks read).
            self.backpressure_events += 1
            if self.metrics is not None:
                self.metrics.counter("channel.backpressure", node=node).inc()
            if len(channel) >= self.channel_capacity * 10:
                raise BackpressureOverflow(
                    f"channel into {node!r} exceeded 10x capacity; "
                    "the job cannot keep up and dropping is disabled"
                )
        channel.append(item)

    def _offer_batch(self, node: str, side: str | None,
                     items: list[StreamItem]) -> None:
        """Batch equivalent of per-item ``_offer``: identical per-item
        accounting, computed arithmetically in O(1).

        Columnar batches count element-weighted (a RecordBatch is as many
        items as it has rows), so backpressure and drop decisions are
        representation-blind.  The partial-extend paths (drop, raise)
        split batches at the exact element boundary; the raise path also
        decodes, so stalled channel *contents* match per-item execution.
        """
        channel = self._channels[(node, side)]
        columnar = self.columnar
        if columnar:
            occupancy = items_weight(channel)
            n = items_weight(items)
        else:
            occupancy = len(channel)
            n = len(items)
        capacity = self.channel_capacity
        if occupancy + n <= capacity:
            channel.extend(items)
            return
        if self.drop_on_overflow:
            room = max(0, capacity - occupancy)
            if room:
                channel.extend(take_prefix(items, room) if columnar
                               else items[:room])
            self.dropped_overflow += n - room
            if self.metrics is not None:
                self.metrics.counter("channel.dropped",
                                     node=node).inc(n - room)
            return
        if occupancy + n > capacity * 10:
            # Mirror per-item semantics exactly: ``_offer`` appends until
            # the channel reaches 10x capacity and raises on the item
            # that finds it full, so ``i0`` items land and ``i0 + 1``
            # appends observed a channel at or over capacity.  (The
            # previous batch path counted all ``n`` items as
            # backpressure and extended nothing — diverging from
            # per-item execution in both the counter and the channel.)
            i0 = capacity * 10 - occupancy
            channel.extend(decode_items(take_prefix(items, i0)) if columnar
                           else items[:i0])
            events = (i0 + 1) - max(0, min(i0 + 1, capacity - occupancy))
            self.backpressure_events += events
            if self.metrics is not None:
                self.metrics.counter("channel.backpressure",
                                     node=node).inc(events)
            raise BackpressureOverflow(
                f"channel into {node!r} exceeded 10x capacity; "
                "the job cannot keep up and dropping is disabled"
            )
        # Every append observed at >= capacity is one backpressure event.
        events = n - max(0, min(n, capacity - occupancy))
        self.backpressure_events += events
        if self.metrics is not None and events:
            self.metrics.counter("channel.backpressure",
                                 node=node).inc(events)
        channel.extend(items)

    def _route(self, node: str, items: Iterable[StreamItem]) -> None:
        """Per-item delivery from ``node`` to its downstream edges."""
        downstream = self._down.get(node, ())
        for item in items:
            for down, side in downstream:
                sink = self.sinks.get(down)
                if sink is not None:
                    if isinstance(item, Element):
                        sink.elements.append(item)
                        if self.metrics is not None:
                            self._observe_sink(down, item)
                else:
                    self._offer(down, side, item)

    def _route_batch(self, node: str, items: list[StreamItem]) -> None:
        """Deliver a whole output batch downstream in one call per edge."""
        if not items:
            return
        for down, side in self._down.get(node, ()):
            sink = self.sinks.get(down)
            if sink is not None:
                if self.columnar:
                    delivered = elements_of(items)
                elif self.metrics is None:
                    sink.elements.extend(
                        item for item in items if isinstance(item, Element))
                    continue
                else:
                    delivered = [i for i in items if isinstance(i, Element)]
                sink.elements.extend(delivered)
                if self.metrics is not None:
                    self._observe_sink_batch(down, delivered)
            else:
                self._offer_batch(down, side, items)

    def _observe_sink(self, sink: str, element: Element) -> None:
        """Watermark-lag proxy per delivery: distance between this
        element's event time and the newest event time any sink has seen.
        Zero for in-order delivery; grows with out-of-orderness and
        windowing delay."""
        ts = element.timestamp
        if ts > self._max_event_ts:
            self._max_event_ts = ts
        handles = self._metric_handles.get(("sink", sink))
        if handles is None:
            handles = (self.metrics.counter("sink.delivered", sink=sink),
                       self.metrics.summary("sink.watermark_lag_s",
                                            sink=sink))
            self._metric_handles[("sink", sink)] = handles
        delivered, lag = handles
        delivered.inc()
        lag.observe(self._max_event_ts - ts)

    def _observe_sink_batch(self, sink: str, delivered: list[Element]) -> None:
        """Vectorized :meth:`_observe_sink` over a delivery batch: the
        running max of event time is ``np.maximum.accumulate`` seeded
        with the high-water mark — identical lag samples, one observe."""
        if not delivered:
            return
        handles = self._metric_handles.get(("sink", sink))
        if handles is None:
            handles = (self.metrics.counter("sink.delivered", sink=sink),
                       self.metrics.summary("sink.watermark_lag_s",
                                            sink=sink))
            self._metric_handles[("sink", sink)] = handles
        counter, lag = handles
        n = len(delivered)
        ts = np.fromiter((e.timestamp for e in delivered),
                         dtype=np.float64, count=n)
        high = np.maximum.accumulate(ts)
        if self._max_event_ts != float("-inf"):
            high = np.maximum(high, self._max_event_ts)
        self._max_event_ts = float(high[-1])
        counter.inc(n)
        lag.observe_many((high - ts).tolist())

    def _batch_size_summary(self, node: str) -> Any:
        summary = self._metric_handles.get(("batch", node))
        if summary is None:
            summary = self.metrics.summary("op.batch_size", op=node)
            self._metric_handles[("batch", node)] = summary
        return summary

    # -- drain cycles --------------------------------------------------------

    def _take_channel(self, name: str,
                      side: str | None) -> deque[StreamItem] | None:
        """Swap the channel for a fresh deque instead of copy-and-clear
        (the seed paid an O(n) list copy per channel per cycle)."""
        channel = self._channels.get((name, side))
        if not channel:
            return None
        self._channels[(name, side)] = deque()
        return channel

    def _drain_cycle(self) -> int:
        """One pass through all execution nodes in topological order."""
        if self.batch_mode:
            return self._drain_cycle_batched()
        return self._drain_cycle_per_item()

    def _drain_cycle_batched(self) -> int:
        moved = 0
        injector = self.injector
        metrics = self.metrics
        profiler = self.profiler
        for name in self._topo:
            op = self._exec_ops[name]
            chained = isinstance(op, ChainedOperator)
            started = (profiler.timer()
                       if profiler is not None and not chained else 0.0)
            drained = 0
            guard = self._guard.get(name)
            if isinstance(op, IntervalJoinOperator):
                for side in ("left", "right"):
                    pending = self._take_channel(name, side)
                    if pending is None:
                        continue
                    if self.columnar:
                        # Joins have no columnar kernel; decode at the
                        # channel so side-batch processing (and chaos
                        # interception) see plain elements.
                        pending = decode_items(pending)
                    moved += len(pending)
                    drained += len(pending)
                    if guard is None:
                        process = (lambda batch, _s=side:
                                   op.process_side_batch(_s, batch))
                    else:
                        process = self._guarded_side_process(op, guard,
                                                             side)
                    if injector is None:
                        out = process(pending)
                    else:
                        out = injector.intercept_batch(op, pending,
                                                       process)
                    self._route_batch(name, out)
            else:
                pending = self._take_channel(name, None)
                if pending is None:
                    continue
                weight = (items_weight(pending) if self.columnar
                          else len(pending))
                moved += weight
                drained = weight
                if guard is None:
                    process = op.process_batch
                else:
                    process = self._guarded_process(op, guard)
                if injector is None:
                    out = process(pending)
                else:
                    out = injector.intercept_batch(op, pending, process)
                self._route_batch(name, out)
            if self._dead_letters:
                self._deliver_dead_letters()
            if drained:
                if metrics is not None:
                    self._batch_size_summary(name).observe(drained)
                # Chain members time themselves (see ChainedOperator).
                if profiler is not None and not chained:
                    profiler.record("op.wall_s", started, op=name)
        return moved

    def _drain_cycle_per_item(self) -> int:
        moved = 0
        injector = self.injector
        metrics = self.metrics
        profiler = self.profiler
        for name in self._topo:
            op = self._exec_ops[name]
            guard = self._guard.get(name)
            for side in ([None] if not isinstance(op, IntervalJoinOperator)
                         else ["left", "right"]):
                pending = self._take_channel(name, side)
                if pending is None:
                    continue
                started = profiler.timer() if profiler is not None else 0.0
                for item in pending:
                    moved += 1
                    if injector is not None:
                        injector.before_item(op)  # may raise a crash
                    if isinstance(op, IntervalJoinOperator):
                        if isinstance(item, Watermark):
                            handler = (lambda it, _s=side:
                                       op.on_watermark_side(_s, it))
                        else:
                            handler = (lambda it, _s=side:
                                       op.process_side(_s, it))
                    else:
                        handler = None
                    if guard is None:
                        out = (handler(item) if handler is not None
                               else op.handle(item))
                    else:
                        fault = None
                        if self._data_chaos:
                            faults = injector.data_directives(op, (item,))
                            if faults:
                                fault = faults.get(0)
                        out = guard_item(op, item, guard,
                                         self._dead_letters, fault,
                                         handler=handler)
                    self._route(name, out)
                if self._dead_letters:
                    self._deliver_dead_letters()
                if metrics is not None:
                    self._batch_size_summary(name).observe(len(pending))
                if profiler is not None:
                    profiler.record("op.wall_s", started, op=name)
        return moved

    # -- observability -------------------------------------------------------

    def _mode_name(self) -> str:
        if not self.batch_mode:
            return "per_item"
        return "chained" if self.chaining else "batched"

    def _ensure_spans(self) -> None:
        """Create (once) the job span plus one child span per *logical*
        source/operator/sink.  Spans follow the logical graph rather than
        the execution plan, so the span tree — names, parentage, count —
        is identical across per-item, batched and chained modes."""
        if self.tracer is None or self._job_span is not None:
            return
        self._job_span = self.tracer.start_span(
            f"job:{self.job.name}", attrs={"mode": self._mode_name()})
        for name in sorted(self.job.sources):
            self._obs_spans[f"source:{name}"] = self.tracer.start_span(
                f"source:{name}", parent=self._job_span)
        for name in self.job.topological_operators():
            self._obs_spans[f"op:{name}"] = self.tracer.start_span(
                f"op:{name}", parent=self._job_span)
        for name in sorted(self.job.sinks):
            self._obs_spans[f"sink:{name}"] = self.tracer.start_span(
                f"sink:{name}", parent=self._job_span)

    def _close_spans(self) -> None:
        if self._job_span is None:
            return
        for name in self.job.sources:
            span = self._obs_spans[f"source:{name}"]
            span.set_attr("records",
                          len(self._source_buffers.get(name, ())))
            span.end()
        for name, op in self.job.operators.items():
            span = self._obs_spans[f"op:{name}"]
            span.set_attr("processed", op.processed)
            span.set_attr("emitted", op.emitted)
            span.end()
        for name, buf in self.sinks.items():
            span = self._obs_spans[f"sink:{name}"]
            span.set_attr("delivered", len(buf))
            span.end()
        self._job_span.set_attr("backpressure_events",
                                self.backpressure_events)
        self._job_span.set_attr("dropped_overflow", self.dropped_overflow)
        self._job_span.end()

    def _publish_metrics(self) -> None:
        """Final gauge values, published once at end-of-run."""
        if self.metrics is None:
            return
        self.metrics.gauge("executor.backpressure_events").set(
            self.backpressure_events)
        self.metrics.gauge("executor.dropped_overflow").set(
            self.dropped_overflow)
        for name, op in self.job.operators.items():
            self.metrics.gauge("op.processed", op=name).set(op.processed)
            self.metrics.gauge("op.emitted", op=name).set(op.emitted)
        for name, buf in self.sinks.items():
            self.metrics.gauge("sink.size", sink=name).set(len(buf))

    # -- run loop --------------------------------------------------------------------

    def run(self, source_batch: int = 256, max_cycles: int | None = None) -> dict[str, SinkBuffer]:
        """Run until sources are exhausted and channels drained."""
        if self.tracer is not None:
            self._ensure_spans()
            with self.tracer.activate(self._job_span):
                return self._run_loop(source_batch, max_cycles)
        return self._run_loop(source_batch, max_cycles)

    def _run_loop(self, source_batch: int,
                  max_cycles: int | None) -> dict[str, SinkBuffer]:
        cycles = 0
        route = self._route_batch if self.batch_mode else self._route
        while True:
            pulled = self._pull_sources(source_batch)
            for name, elements in pulled:
                route(name, elements)
            moved = self._drain_cycle()
            # Keep draining until quiescent this cycle.
            while self._drain_cycle():
                pass
            cycles += 1
            done_sources = len(self._finished_sources) == len(self.job.sources)
            if done_sources and not pulled and moved == 0:
                break
            if max_cycles is not None and cycles >= max_cycles:
                break
        if len(self._finished_sources) == len(self.job.sources):
            self._flush()
            self._close_spans()
            self._publish_metrics()
        return self.sinks

    def _flush(self) -> None:
        """End-of-stream: give every operator a chance to emit pendings."""
        if self._flushed:
            return
        self._flushed = True
        route = self._route_batch if self.batch_mode else self._route
        for name in self._topo:
            op = self._exec_ops[name]
            out = op.flush()
            if out:
                route(name, out)
                while self._drain_cycle():
                    pass

    @property
    def done(self) -> bool:
        """True once the job ran to completion (sources exhausted,
        channels drained, end-of-stream flush delivered)."""
        return self._flushed

    # -- checkpoints -------------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Take an aligned snapshot.  Channels must be drained first.

        State is captured per *logical* operator (chain members
        individually), so snapshots are portable across execution modes.
        """
        if any(self._channels.values()):
            raise CheckpointError("cannot checkpoint with items in flight; "
                                  "call run() or drain first")
        self._checkpoint_seq += 1
        started = (self.profiler.timer()
                   if self.profiler is not None else 0.0)
        snapshot = Checkpoint(
            checkpoint_id=self._checkpoint_seq,
            # Unmaterialized sources snapshot at position 0, so a
            # checkpoint taken before the first pull is a valid
            # restart-from-scratch restore point.
            source_positions={name: self._source_positions.get(name, 0)
                              for name in self.job.sources},
            operator_state={name: op.snapshot()
                            for name, op in self.job.operators.items()},
            emitted_to_sinks={s: len(buf) for s, buf in self.sinks.items()},
            data_counts=(self.injector.data_counts()
                         if self._data_chaos else {}),
        )
        if self.profiler is not None:
            self.profiler.record("checkpoint.duration_s", started)
        if self.metrics is not None:
            self.metrics.counter("executor.checkpoints").inc()
        if self._job_span is not None:
            self._job_span.add_event(
                "checkpoint", checkpoint_id=snapshot.checkpoint_id)
        return snapshot

    def restore(self, checkpoint: Checkpoint) -> None:
        """Rewind the job to a snapshot (sources, state, sink truncation)."""
        for name, pos in checkpoint.source_positions.items():
            if name not in self.job.sources:
                raise CheckpointError(f"snapshot references unknown source "
                                      f"{name!r}")
            self._materialize_source(name)
            self._source_positions[name] = pos
            if pos < len(self._source_buffers[name]):
                self._finished_sources.discard(name)
        for name, state in checkpoint.operator_state.items():
            if name not in self.job.operators:
                raise CheckpointError(f"snapshot references unknown operator "
                                      f"{name!r}")
            self.job.operators[name].restore(state)
        for sink, count in checkpoint.emitted_to_sinks.items():
            del self.sinks[sink].elements[count:]
        for channel in self._channels.values():
            channel.clear()
        if self._data_chaos:
            self.injector.restore_data_counts(checkpoint.data_counts)
        self._dead_letters.clear()
        self._flushed = False
        if self.metrics is not None:
            self.metrics.counter("executor.restores").inc()
        if self._job_span is not None:
            self._job_span.add_event(
                "restore", checkpoint_id=checkpoint.checkpoint_id)
