"""Retry with capped exponential backoff, deadlines and circuit breaking.

The production-side half of the chaos story (see ``repro.chaos``): every
layer that can see a transient fault — producers appending to an
unavailable partition, consumers fetching from a failed-over leader,
the offload runner talking to a flaky tier — retries through this one
module, so backoff behaviour is uniform and *deterministic*.

Determinism rules (CONTRIBUTING.md rule 1) shape the design:

- Jitter comes from a seeded ``numpy.random.Generator``, so the exact
  delay sequence of a policy reproduces for a given seed.
- Time is simulated: delays advance a :class:`SimClock` (when given)
  instead of sleeping, and the circuit breaker's cool-down reads the
  same clock.  No wall-clock anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from .clock import SimClock
from .errors import CircuitOpen, ConfigError, RetryExhausted
from .rng import make_rng

__all__ = ["RetryPolicy", "Retrier", "CircuitBreaker", "retry_call"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter and a deadline.

    Delay before retry *n* (1-based) is::

        min(max_delay_s, base_delay_s * multiplier ** (n - 1))
        * (1 + jitter * u),   u ~ Uniform(-1, 1) from the seeded stream

    ``max_attempts`` counts *calls*, so ``max_attempts=1`` never
    retries.  ``deadline_s`` bounds the total backoff slept; a retry
    whose delay would cross it raises :class:`RetryExhausted` instead of
    sleeping past the budget.

    ``retryable`` filters *which* caught exceptions are worth retrying:
    when set, an exception that is not an instance of one of these
    classes re-raises immediately instead of burning the backoff
    budget.  Non-transient failures — a malformed record raising
    :class:`~repro.util.errors.DataFaultError`, a config error — look
    identical to transient ones to an indiscriminate retry loop, but no
    amount of backoff fixes them.  ``None`` (the default) keeps the
    historical behaviour: everything ``retry_on`` catches is retried.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    deadline_s: float | None = None
    seed: int = 0
    retryable: tuple[type[BaseException], ...] | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1 (backoff never shrinks)")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ConfigError("deadline_s must be non-negative")
        if self.retryable is not None:
            object.__setattr__(self, "retryable", tuple(self.retryable))
            if not all(isinstance(c, type) and
                       issubclass(c, BaseException)
                       for c in self.retryable):
                raise ConfigError(
                    "retryable must be exception classes")

    def delays(self, n: int | None = None) -> list[float]:
        """The first ``n`` jittered delays (default: one per retry)."""
        if n is None:
            n = max(0, self.max_attempts - 1)
        rng = make_rng(self.seed)
        return [self._delay(i + 1, rng) for i in range(n)]

    def _delay(self, retry_index: int, rng: np.random.Generator) -> float:
        raw = min(self.max_delay_s,
                  self.base_delay_s * self.multiplier ** (retry_index - 1))
        if self.jitter:
            raw *= 1.0 + self.jitter * (rng.random() * 2.0 - 1.0)
        return raw


class Retrier:
    """Executes callables under one :class:`RetryPolicy`.

    Stateful so that the jitter stream is drawn once per retrier, not
    re-seeded per call — two calls through the same retrier see
    *different* (but still reproducible) jitter, matching how a real
    client process behaves.
    """

    def __init__(self, policy: RetryPolicy | None = None,
                 clock: SimClock | None = None) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock
        self._rng = make_rng(self.policy.seed)
        self.attempts = 0
        self.retries = 0
        self.total_backoff_s = 0.0

    def call(self, fn: Callable[[], Any],
             retry_on: tuple[type[BaseException], ...] | Iterable[
                 type[BaseException]] = (Exception,),
             on_retry: Callable[[int, BaseException], None] | None = None,
             retryable: tuple[type[BaseException], ...] | Iterable[
                 type[BaseException]] | None = None,
             ) -> Any:
        """Call ``fn`` until it succeeds or the policy gives up.

        ``on_retry(attempt, error)`` fires before each backoff — the
        hook producers use to switch from ``send`` to ``resend_last``.
        ``retryable`` overrides the policy's non-transient filter for
        this call: a caught exception not matching it re-raises
        immediately (no backoff, no :class:`RetryExhausted` wrapper).
        """
        retry_on = tuple(retry_on)
        transient = (tuple(retryable) if retryable is not None
                     else self.policy.retryable)
        policy = self.policy
        slept = 0.0
        attempt = 1
        while True:
            self.attempts += 1
            try:
                return fn()
            except retry_on as exc:
                if transient is not None \
                        and not isinstance(exc, transient):
                    raise
                if attempt >= policy.max_attempts:
                    raise RetryExhausted(
                        f"gave up after {attempt} attempts: {exc}",
                        last_error=exc) from exc
                delay = policy._delay(attempt, self._rng)
                if (policy.deadline_s is not None
                        and slept + delay > policy.deadline_s):
                    raise RetryExhausted(
                        f"deadline {policy.deadline_s}s would be exceeded "
                        f"after {attempt} attempts: {exc}",
                        last_error=exc) from exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                if self.clock is not None:
                    self.clock.advance(delay)
                slept += delay
                self.total_backoff_s += delay
                self.retries += 1
                attempt += 1


def retry_call(fn: Callable[[], Any], policy: RetryPolicy | None = None,
               retry_on=(Exception,), clock: SimClock | None = None) -> Any:
    """One-shot convenience wrapper around :class:`Retrier`."""
    return Retrier(policy, clock=clock).call(fn, retry_on=retry_on)


class CircuitBreaker:
    """Closed -> open -> half-open circuit breaker on a simulated clock.

    - **closed**: calls pass; ``failure_threshold`` *consecutive*
      failures trip it open.
    - **open**: calls raise :class:`CircuitOpen` without running until
      ``reset_timeout_s`` of simulated time has passed, then one probe
      is let through (half-open).
    - **half-open**: exactly **one** trial call is admitted at a time;
      further calls are rejected while the probe is in flight.
      ``half_open_successes`` consecutive successes close it; any
      failure re-opens it (and restarts the cool-down).

    The breaker does not retry; pair it with a :class:`Retrier` whose
    ``retry_on`` excludes :class:`CircuitOpen` to fail fast while open.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 half_open_successes: int = 1,
                 clock: SimClock | None = None) -> None:
        if failure_threshold < 1 or half_open_successes < 1:
            raise ConfigError("thresholds must be >= 1")
        if reset_timeout_s < 0:
            raise ConfigError("reset_timeout_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_successes = half_open_successes
        self.clock = clock if clock is not None else SimClock()
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._half_open_streak = 0
        self._half_open_inflight = False
        self._opened_at = 0.0
        self.trips = 0
        self.rejected = 0

    def _maybe_half_open(self) -> None:
        if (self.state == self.OPEN
                and self.clock.now - self._opened_at >= self.reset_timeout_s):
            self.state = self.HALF_OPEN
            self._half_open_streak = 0
            self._half_open_inflight = False

    def allow(self) -> bool:
        """Would a call be admitted right now?  (Advances open->half-open.)

        While half-open, exactly one trial call is admitted: the first
        ``allow`` claims the probe slot and later calls are refused until
        ``record_success``/``record_failure`` resolves it.
        """
        self._maybe_half_open()
        if self.state == self.HALF_OPEN:
            if self._half_open_inflight:
                return False
            self._half_open_inflight = True
            return True
        return self.state != self.OPEN

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self._half_open_inflight = False
            self._half_open_streak += 1
            if self._half_open_streak >= self.half_open_successes:
                self.state = self.CLOSED
        # A success while OPEN (caller bypassed allow()) is ignored: the
        # cool-down still applies.

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if (self.state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self.trips += 1
        self._opened_at = self.clock.now
        self._consecutive_failures = 0
        self._half_open_streak = 0
        self._half_open_inflight = False

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` through the breaker, recording the outcome."""
        if not self.allow():
            self.rejected += 1
            raise CircuitOpen(
                f"circuit open for another "
                f"{self.reset_timeout_s - (self.clock.now - self._opened_at):.3f}s")
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
