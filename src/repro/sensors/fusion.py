"""GPS + IMU sensor fusion: 2-D constant-velocity Kalman filter.

State is [x, y, vx, vy]; IMU acceleration enters as a control input
during prediction, GPS fixes as position measurements during update.
The filter is what turns raw sensors into the registered user position
AR needs (Azuma's "registered in 3-D" reduced to the ground plane the
experiments use).
"""

from __future__ import annotations

import numpy as np

from ..util.errors import SensorError
from .models import GpsFix, ImuReading

__all__ = ["KalmanFusion"]


class KalmanFusion:
    """Constant-velocity KF with acceleration control input."""

    def __init__(self, process_noise: float = 0.5,
                 initial_uncertainty: float = 100.0) -> None:
        if process_noise <= 0:
            raise SensorError("process_noise must be positive")
        self.q = process_noise
        self.state = np.zeros(4)  # x, y, vx, vy
        self.cov = np.eye(4) * initial_uncertainty
        self._last_time: float | None = None
        self.predictions = 0
        self.updates = 0

    def _transition(self, dt: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        f = np.eye(4)
        f[0, 2] = dt
        f[1, 3] = dt
        b = np.array([
            [0.5 * dt * dt, 0.0],
            [0.0, 0.5 * dt * dt],
            [dt, 0.0],
            [0.0, dt],
        ])
        # White-acceleration process noise.
        q = self.q * np.array([
            [dt ** 4 / 4, 0, dt ** 3 / 2, 0],
            [0, dt ** 4 / 4, 0, dt ** 3 / 2],
            [dt ** 3 / 2, 0, dt ** 2, 0],
            [0, dt ** 3 / 2, 0, dt ** 2],
        ])
        return f, b, q

    def predict(self, timestamp: float,
                imu: ImuReading | None = None) -> np.ndarray:
        """Advance the state to ``timestamp`` (IMU optional)."""
        if self._last_time is None:
            self._last_time = timestamp
            return self.state.copy()
        dt = timestamp - self._last_time
        if dt < 0:
            raise SensorError("fusion timestamps must be non-decreasing")
        if dt == 0:
            return self.state.copy()
        f, b, q = self._transition(dt)
        accel = np.array([imu.ax, imu.ay]) if imu is not None else np.zeros(2)
        self.state = f @ self.state + b @ accel
        self.cov = f @ self.cov @ f.T + q
        self._last_time = timestamp
        self.predictions += 1
        return self.state.copy()

    def update_gps(self, fix: GpsFix) -> np.ndarray:
        """Fold in a GPS position measurement."""
        self.predict(fix.timestamp)
        h = np.zeros((2, 4))
        h[0, 0] = 1.0
        h[1, 1] = 1.0
        r = np.eye(2) * max(fix.accuracy_m, 1e-6) ** 2
        z = np.array([fix.x, fix.y])
        innovation = z - h @ self.state
        s = h @ self.cov @ h.T + r
        k = self.cov @ h.T @ np.linalg.inv(s)
        self.state = self.state + k @ innovation
        self.cov = (np.eye(4) - k @ h) @ self.cov
        self.updates += 1
        return self.state.copy()

    @property
    def position(self) -> tuple[float, float]:
        return float(self.state[0]), float(self.state[1])

    @property
    def velocity(self) -> tuple[float, float]:
        return float(self.state[2]), float(self.state[3])

    @property
    def position_uncertainty(self) -> float:
        """1-sigma radius (sqrt of mean positional variance)."""
        return float(np.sqrt((self.cov[0, 0] + self.cov[1, 1]) / 2.0))
