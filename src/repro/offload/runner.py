"""Resilient offload execution: retries, circuit breaking, degradation.

The planner prices plans and the policies pick one; the
:class:`OffloadRunner` is what actually *runs* the pick against an
unreliable edge — remote attempts can time out or lose their tier
mid-task.  The runner retries a timed-out tier (bounded), drops a tier
that vanished, trips a per-tier circuit breaker so repeated failures
stop being attempted at all, and when every remote option is exhausted
degrades to all-local execution rather than failing the frame — the
AR session continues at reduced rate, which is the paper's stated
requirement for interactive workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util.clock import SimClock
from ..util.errors import OffloadError, TaskTimeout, TierDropout
from ..util.retry import CircuitBreaker
from .executor import OffloadPlanner, PlanOutcome
from .policies import GreedyLatency, OffloadPolicy
from .tasks import Pipeline

__all__ = ["OffloadAttempt", "OffloadResult", "OffloadRunner"]


@dataclass(frozen=True)
class OffloadAttempt:
    """One execution attempt of a placed plan."""

    tier: str
    cut: int
    ok: bool
    error: str | None = None
    latency_s: float = 0.0


@dataclass
class OffloadResult:
    """How one frame ultimately executed."""

    outcome: PlanOutcome
    attempts: list[OffloadAttempt] = field(default_factory=list)
    degraded: bool = False
    timeouts: int = 0
    dropouts: int = 0

    @property
    def tier(self) -> str:
        return self.outcome.tier_node


class OffloadRunner:
    """Executes policy decisions with fault handling.

    deadline_s            treat a priced plan slower than this as a
                          timeout even without injection (the frame is
                          useless by the time it lands)
    max_attempts_per_tier bounded same-tier retries on timeout before
                          the tier is excluded for this frame
    breaker kwargs        per-tier :class:`CircuitBreaker` tuning; an
                          open breaker excludes the tier up front, so a
                          flapping edge server stops eating attempts
    """

    def __init__(self, planner: OffloadPlanner,
                 policy: OffloadPolicy | None = None,
                 injector=None, deadline_s: float | None = None,
                 clock: SimClock | None = None,
                 max_attempts_per_tier: int = 2,
                 failure_threshold: int = 3,
                 reset_timeout_s: float = 30.0,
                 tracer=None, metrics=None) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise OffloadError("deadline must be positive")
        if max_attempts_per_tier < 1:
            raise OffloadError("max_attempts_per_tier must be >= 1")
        self.planner = planner
        self.policy = policy if policy is not None else GreedyLatency()
        self.injector = injector
        # Duck-typed observability hooks, same convention as the
        # streaming executor: None keeps every path hook-free.
        self.tracer = tracer
        self.metrics = metrics
        self.deadline_s = deadline_s
        self.clock = clock if clock is not None else SimClock()
        self.max_attempts_per_tier = max_attempts_per_tier
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_kwargs = dict(failure_threshold=failure_threshold,
                                    reset_timeout_s=reset_timeout_s)
        self.frames = 0
        self.degraded_frames = 0

    def breaker(self, tier: str) -> CircuitBreaker:
        if tier not in self._breakers:
            self._breakers[tier] = CircuitBreaker(
                clock=self.clock, **self._breaker_kwargs)
        return self._breakers[tier]

    def _available_tiers(self, excluded: set[str]) -> list[str]:
        device = self.planner.device.name
        return [n.name for n in self.planner.topology.nodes()
                if n.name != device and n.up and n.name not in excluded
                and self.breaker(n.name).allow()]

    def _decide(self, pipeline: Pipeline,
                tiers: list[str]) -> PlanOutcome | None:
        """Run the policy restricted to ``tiers`` (when it supports
        restriction); ``None`` means no feasible plan from the policy."""
        restores = hasattr(self.policy, "tiers")
        saved = getattr(self.policy, "tiers", None)
        if restores:
            # Honour the policy's own restriction: the runner only ever
            # narrows the choice (down/excluded/broker-open tiers).
            self.policy.tiers = (tiers if saved is None
                                 else [t for t in tiers if t in saved])
        try:
            return self.policy.decide(self.planner, pipeline).outcome
        except (OffloadError,):
            return None
        finally:
            if restores:
                self.policy.tiers = saved

    def _local(self, pipeline: Pipeline) -> PlanOutcome:
        return self.planner.price(pipeline, max(pipeline.valid_cuts()),
                                  self.planner.device.name)

    def _start_attempt(self, attempt: OffloadAttempt):
        if self.tracer is None:
            return None
        attrs = {"tier": attempt.tier, "cut": attempt.cut, "ok": attempt.ok}
        if attempt.error is not None:
            attrs["error"] = attempt.error
        return self.tracer.start_span("offload:attempt", attrs=attrs)

    def _end_attempt(self, span, attempt: OffloadAttempt) -> None:
        """Close the attempt span (started before the clock advance, so
        its duration is the modelled attempt latency) and record it."""
        if span is not None:
            span.end()
        if self.metrics is not None:
            self.metrics.summary("offload.attempt_latency_s",
                                 tier=attempt.tier).observe(
                                     attempt.latency_s)

    def execute(self, pipeline: Pipeline) -> OffloadResult:
        """Run one frame to completion, degrading to local if needed."""
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "offload:frame", attrs={"pipeline": pipeline.name})
        try:
            if span is not None:
                with self.tracer.activate(span):
                    result = self._execute(pipeline)
            else:
                result = self._execute(pipeline)
        except Exception as exc:
            if span is not None:
                span.set_attr("error", type(exc).__name__)
                span.end()
            raise
        if span is not None:
            span.set_attr("tier", result.tier)
            span.set_attr("degraded", result.degraded)
            span.end()
        if self.metrics is not None:
            m = self.metrics
            m.counter("offload.frames").inc()
            m.counter("offload.timeouts").inc(result.timeouts)
            m.counter("offload.dropouts").inc(result.dropouts)
            if result.degraded:
                m.counter("offload.degraded").inc()
            m.summary("offload.frame_latency_s").observe(
                sum(a.latency_s for a in result.attempts))
        return result

    def _execute(self, pipeline: Pipeline) -> OffloadResult:
        self.frames += 1
        result = OffloadResult(outcome=self._local(pipeline))
        excluded: set[str] = set()
        tier_attempts: dict[str, int] = {}
        while True:
            tiers = self._available_tiers(excluded)
            outcome = self._decide(pipeline, tiers) if tiers else None
            if outcome is None or (not outcome.is_local
                                   and outcome.tier_node not in tiers):
                # Policy found nothing runnable (or insists on a dead
                # tier, as a fixed AlwaysRemote does): degrade to local.
                outcome = self._local(pipeline)
            if outcome.is_local:
                # Local after failed remote attempts is degraded service:
                # the frame completes, slower than the policy wanted.
                if result.timeouts or result.dropouts:
                    result.degraded = True
                    self.degraded_frames += 1
                result.outcome = outcome
                attempt = OffloadAttempt(
                    tier=outcome.tier_node, cut=outcome.cut, ok=True,
                    latency_s=outcome.latency_s)
                result.attempts.append(attempt)
                span = self._start_attempt(attempt)
                self.clock.advance(outcome.latency_s)
                self._end_attempt(span, attempt)
                return result
            tier = outcome.tier_node
            tier_attempts[tier] = tier_attempts.get(tier, 0) + 1
            try:
                if self.injector is not None:
                    self.injector.before_offload(pipeline.name, tier)
                if (self.deadline_s is not None
                        and outcome.latency_s > self.deadline_s):
                    raise TaskTimeout(
                        f"plan on {tier!r} priced at "
                        f"{outcome.latency_s * 1000:.1f}ms exceeds the "
                        f"{self.deadline_s * 1000:.0f}ms deadline")
            except TaskTimeout as exc:
                result.timeouts += 1
                attempt = OffloadAttempt(
                    tier=tier, cut=outcome.cut, ok=False, error=str(exc),
                    latency_s=self.deadline_s or outcome.latency_s)
                result.attempts.append(attempt)
                self.breaker(tier).record_failure()
                span = self._start_attempt(attempt)
                # The caller ate the full timeout budget waiting.
                self.clock.advance(self.deadline_s or outcome.latency_s)
                self._end_attempt(span, attempt)
                if tier_attempts[tier] >= self.max_attempts_per_tier:
                    excluded.add(tier)
                continue
            except TierDropout as exc:
                result.dropouts += 1
                attempt = OffloadAttempt(
                    tier=tier, cut=outcome.cut, ok=False, error=str(exc),
                    latency_s=outcome.latency_s / 2.0)
                result.attempts.append(attempt)
                self.breaker(tier).record_failure()
                span = self._start_attempt(attempt)
                # The connection died partway through the task.
                self.clock.advance(outcome.latency_s / 2.0)
                self._end_attempt(span, attempt)
                excluded.add(tier)
                continue
            self.breaker(tier).record_success()
            result.outcome = outcome
            attempt = OffloadAttempt(
                tier=tier, cut=outcome.cut, ok=True,
                latency_s=outcome.latency_s)
            result.attempts.append(attempt)
            span = self._start_attempt(attempt)
            self.clock.advance(outcome.latency_s)
            self._end_attempt(span, attempt)
            return result
