"""Geo-distributed deployment supervisor.

One :class:`GeoDeployment` owns a parallel streaming job placed across
regions, the cross-region log mirror feeding a standby cluster, and a
:class:`~repro.geo.controller.RegionController` watching region health
on the simnet topology.  It layers two geo-level recovery moves on top
of the engine's existing checkpoint machinery:

**Session handoff** (:meth:`GeoDeployment.handoff`) — a user crossed a
zone boundary, so their operators should follow: stop-with-savepoint
(the autoscaler's rescale primitive), recompile the *same* job under a
placement with the moved nodes re-pinned, restore.  Keyed state
migrates through the ordinary key-group snapshot path; committed sink
output is carried in the checkpoint, so the move is exactly-once.

**Region failover** (:meth:`GeoDeployment.failover`) — the primary
region is gone (loss or partition).  The deployment fences the mirror
epoch so a zombie primary can no longer mirror, picks the newest
finalized checkpoint whose source positions the replica actually
covers, rebuilds the job against the standby cluster with every node
pinned to the surviving region, and restores.  Because mirrored
sequence numbers *are* replica offsets (strict prefix), the primary's
checkpoint positions are valid replica positions — failover replays
only the post-checkpoint suffix, and the report proves it by also
computing what a cold restart would have replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..eventlog.broker import LogCluster
from ..eventlog.mirror import ReplicatedTopic
from ..streaming.coordinator import CheckpointCoordinator, CheckpointStore
from ..streaming.execution import ParallelCheckpoint, ParallelExecutor
from ..streaming.placement import RegionPlacement
from ..util.clock import SimClock
from ..util.errors import (
    BrokerDown,
    ChaosError,
    CheckpointError,
    CoordinatorDown,
    LogError,
    NetworkError,
    OperatorCrash,
)
from .controller import RegionController

__all__ = ["GeoDeployment", "GeoReport", "FailoverReport", "HandoffReport"]


@dataclass
class HandoffReport:
    """One session handoff: which nodes moved where, and what it cost."""

    savepoint_id: int
    nodes: tuple[str, ...]
    to_region: str
    replayed: int
    attempts: int = 1


@dataclass
class FailoverReport:
    """One region failover, with the replay-volume proof.

    ``replayed`` is what the standby actually re-read past the restored
    checkpoint; ``full_restart_equiv`` is what a from-scratch replay of
    the replica would have read.  ``mttr_s`` runs from the last healthy
    observation of the lost region to service resumption on the
    standby.
    """

    lost_region: str
    to_region: str
    checkpoint_id: int | None
    replayed: int
    full_restart_equiv: int
    mttr_s: float
    mirror_lag: dict[int, int] | None


@dataclass
class GeoReport:
    """Outcome of a supervised geo run."""

    sink_values: dict[str, list[Any]]
    steps: int = 0
    crashes: int = 0
    coordinator_crashes: int = 0
    broker_faults: int = 0
    dead_detected: int = 0
    full_restores: int = 0
    replayed_total: int = 0
    checkpoints: int = 0
    aborted: int = 0
    mirror_pumped: int = 0
    handoffs: list[HandoffReport] = field(default_factory=list)
    failover: FailoverReport | None = None

    @property
    def failures(self) -> int:
        return (self.crashes + self.coordinator_crashes
                + self.broker_faults + self.dead_detected)


class GeoDeployment:
    """Supervise a region-placed job with mirror, handoff, failover.

    ``build_job`` is called with a :class:`LogCluster` and must return
    the job graph bound to that cluster's copy of ``topic`` — the same
    logical job compiles against primary and standby because the
    replica is a strict prefix of the source.
    """

    def __init__(self, build_job: Callable[[LogCluster], Any], *,
                 primary_cluster: LogCluster,
                 standby_cluster: LogCluster,
                 topic: str,
                 primary_region: str = "edge-a",
                 standby_region: str = "core",
                 placement: RegionPlacement | None = None,
                 parallelism: int | dict[str, int] = 2,
                 chaining: bool = True,
                 source_batch: int = 32,
                 step_cycles: int = 2,
                 interval_cycles: int = 4,
                 heartbeat_timeout_s: float = 60.0,
                 region_timeout_s: float = 5.0,
                 step_wall_s: float = 1.0,
                 savepoint_max_cycles: int = 256,
                 max_failures: int = 1000,
                 injector: Any = None,
                 topology: Any = None,
                 simulator: Any = None,
                 observer: str | None = None,
                 mirror_producer_id: int = 9_000) -> None:
        self.build_job = build_job
        self.primary_cluster = primary_cluster
        self.standby_cluster = standby_cluster
        self.topic = topic
        self.primary_region = primary_region
        self.standby_region = standby_region
        self.placement = (placement if placement is not None
                          else RegionPlacement(
                              regions={},
                              default_region=primary_region))
        self.parallelism = parallelism
        self.chaining = chaining
        self.source_batch = source_batch
        self.step_cycles = step_cycles
        self.interval_cycles = interval_cycles
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.step_wall_s = step_wall_s
        self.savepoint_max_cycles = savepoint_max_cycles
        self.max_failures = max_failures
        self.injector = injector
        self.topology = topology
        self.simulator = simulator

        self.clock = (simulator.clock if simulator is not None
                      else SimClock())
        self.store = CheckpointStore(keep=4)
        self.mirror = ReplicatedTopic(primary_cluster, standby_cluster,
                                      topic,
                                      producer_id=mirror_producer_id)
        self.controller = RegionController(
            self.clock, timeout_s=region_timeout_s, observer=observer)
        self.controller.register(primary_region)
        self.controller.register(standby_region)

        self.job = build_job(primary_cluster)
        self.active_region = primary_region
        self.executor = self._build_executor(self.job, self.placement)
        self.coordinator = self._build_coordinator()
        self._initial = self.executor.checkpoint()
        self._prior = {"finalized": 0, "aborted": 0}
        self.report = GeoReport(sink_values={})
        self.failed_over = False

    # -- construction -------------------------------------------------------

    def _build_executor(self, job: Any,
                        placement: RegionPlacement) -> ParallelExecutor:
        return ParallelExecutor(job, self.parallelism,
                                batch_mode=True, chaining=self.chaining,
                                injector=self.injector,
                                transactional_sinks=True,
                                placement=placement)

    def _build_coordinator(self) -> CheckpointCoordinator:
        return CheckpointCoordinator(
            self.executor, store=self.store, clock=self.clock,
            interval_cycles=self.interval_cycles,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            injector=self.injector)

    # -- recovery plumbing (the run_coordinated pattern) ---------------------

    def _check_budget(self) -> None:
        if self.report.failures > self.max_failures:
            raise ChaosError(
                f"gave up after {self.report.failures} failures; the "
                "fault plan appears to re-fire indefinitely")

    def _full_equiv(self, checkpoint: ParallelCheckpoint) -> int:
        total = 0
        for source, splits in \
                self.executor.source_positions_snapshot().items():
            recorded = checkpoint.source_positions.get(source, {})
            for split, pos in splits.items():
                total += max(0, pos - recorded.get(split, 0))
        return total

    def _recover(self) -> None:
        checkpoint = self.store.latest()
        target = checkpoint if checkpoint is not None else self._initial
        replayed = self._full_equiv(target)
        while True:
            try:
                self.executor.restore(target)
            except BrokerDown:
                self.report.broker_faults += 1
                self._check_budget()
                continue
            break
        self.coordinator.monitor.reset_all()
        self.report.full_restores += 1
        self.report.replayed_total += replayed

    def _rebuild_coordinator(self) -> None:
        self.coordinator.abandon_pending()
        self._prior["finalized"] += self.coordinator.finalized
        self._prior["aborted"] += self.coordinator.aborted
        listeners = list(self.coordinator.listeners)
        self.coordinator = self._build_coordinator()
        self.coordinator.listeners.extend(listeners)

    def _adopt(self, replacement: ParallelExecutor,
               placement: RegionPlacement) -> None:
        """Swap in a rebuilt executor; listeners and the store carry
        over so checkpoint ids stay monotonic across incarnations."""
        self._prior["finalized"] += self.coordinator.finalized
        self._prior["aborted"] += self.coordinator.aborted
        listeners = list(self.coordinator.listeners)
        self.executor = replacement
        self.placement = placement
        self.coordinator = self._build_coordinator()
        self.coordinator.listeners.extend(listeners)

    # -- savepoints ----------------------------------------------------------

    def _drive_savepoint(self) -> ParallelCheckpoint:
        """Stop-with-savepoint, verbatim semantics of the autoscaler's
        rescale primitive: drain in-flight work, cut a checkpoint,
        drain until it finalizes."""
        budget = self.savepoint_max_cycles
        while self.coordinator.in_progress is not None and budget > 0:
            self.executor.drain_for_coordinator()
            self.coordinator.on_cycle_end(self.executor)
            budget -= 1
        if self.coordinator.in_progress is not None:
            raise CheckpointError(
                "savepoint blocked: a prior checkpoint never finalized")
        cid = self.coordinator.trigger(self.executor)
        while self.coordinator.in_progress is not None and budget > 0:
            self.executor.drain_for_coordinator()
            self.coordinator.on_cycle_end(self.executor)
            budget -= 1
        savepoint = self.store.latest()
        if savepoint is None or savepoint.checkpoint_id != cid:
            raise CheckpointError(
                f"stop-with-savepoint {cid} did not finalize within "
                f"{self.savepoint_max_cycles} drain cycles")
        return savepoint

    # -- session handoff -----------------------------------------------------

    def handoff(self, nodes: Any, to_region: str) -> HandoffReport:
        """Move ``nodes`` (logical operator/source/sink names) to
        ``to_region`` with exactly-once semantics.  Retries from the
        last finalized checkpoint if chaos kills the move mid-flight."""
        names = tuple(nodes)
        attempts = 0
        while True:
            attempts += 1
            try:
                report = self._do_handoff(names, to_region, attempts)
            except OperatorCrash:
                self.report.crashes += 1
                self._check_budget()
                self._recover()
                continue
            except CoordinatorDown:
                self.report.coordinator_crashes += 1
                self._check_budget()
                self._rebuild_coordinator()
                continue
            break
        self.report.handoffs.append(report)
        return report

    def _do_handoff(self, names: tuple[str, ...], to_region: str,
                    attempts: int) -> HandoffReport:
        savepoint = self._drive_savepoint()
        placement = self.placement
        for name in names:
            placement = placement.moved(name, to_region)
        replacement = self._build_executor(self.job, placement)
        while True:
            try:
                stats = replacement.restore(savepoint)
            except BrokerDown:
                self.report.broker_faults += 1
                self._check_budget()
                continue
            break
        self._adopt(replacement, placement)
        return HandoffReport(savepoint_id=savepoint.checkpoint_id,
                             nodes=names, to_region=to_region,
                             replayed=stats["replayed_elements"],
                             attempts=attempts)

    # -- region failover -----------------------------------------------------

    def _covered_checkpoint(self) -> ParallelCheckpoint | None:
        """Newest finalized checkpoint whose every source position the
        replica covers.  Positions per split are record counts; splits
        map one-to-one onto partitions (the parallel_log_source
        default), and mirrored sequence numbers are replica offsets, so
        coverage is a plain per-partition comparison."""
        ends = {p: self.standby_cluster.end_offset(self.topic, p)
                for p in range(
                    self.standby_cluster.partition_count(self.topic))}
        for cid in sorted(self.store.retained_ids(), reverse=True):
            snapshot = self.store.snapshot(cid)
            if snapshot is None:
                continue
            covered = all(
                pos <= ends.get(split, 0)
                for splits in snapshot.source_positions.values()
                for split, pos in splits.items())
            if covered:
                return snapshot
        return None

    def failover(self) -> FailoverReport:
        """Fail the whole deployment over to the standby region."""
        if self.failed_over:
            raise CheckpointError("already failed over once")
        lost = self.active_region
        outage_start = self.controller.last_seen.get(lost, self.clock.now)
        try:
            lag = self.mirror.lag()
        except (BrokerDown, LogError, NetworkError):
            lag = None  # primary broker unreachable — lag unknowable
        self.mirror.fence()

        target = self._covered_checkpoint()
        job = self.build_job(self.standby_cluster)
        placement = self.placement.moved_all(
            self.standby_region,
            list(job.sources) + list(job.operators) + list(job.sinks))
        replacement = self._build_executor(job, placement)
        full_equiv = sum(
            self.standby_cluster.end_offset(self.topic, p)
            for p in range(
                self.standby_cluster.partition_count(self.topic)))
        if target is not None:
            while True:
                try:
                    stats = replacement.restore(target)
                except BrokerDown:
                    self.report.broker_faults += 1
                    self._check_budget()
                    continue
                break
            replayed = stats["replayed_elements"]
        else:
            replayed = full_equiv  # cold start: replay everything
        self._adopt(replacement, placement)
        self.job = job
        self.active_region = self.standby_region
        self.failed_over = True
        self.report.replayed_total += replayed
        report = FailoverReport(
            lost_region=lost, to_region=self.standby_region,
            checkpoint_id=(target.checkpoint_id
                           if target is not None else None),
            replayed=replayed, full_restart_equiv=full_equiv,
            mttr_s=max(0.0, self.clock.now - outage_start),
            mirror_lag=lag)
        self.report.failover = report
        return report

    # -- the supervision loop ------------------------------------------------

    def _pump_mirror(self) -> None:
        if self.failed_over:
            return  # fenced; the replica is now the source of truth
        try:
            self.report.mirror_pumped += self.mirror.pump()
        except (BrokerDown, LogError, NetworkError):
            self.report.broker_faults += 1
            self._check_budget()

    def _observe_regions(self) -> None:
        if self.topology is not None:
            self.controller.observe(self.topology)
        else:
            # no topology wired: regions are assumed healthy unless
            # failover is triggered explicitly
            for region in self.controller.regions:
                self.controller.beat(region)

    def step(self) -> bool:
        """One supervision step.  Returns True while the job runs."""
        self.report.steps += 1
        if self.simulator is not None:
            # the simulator owns the clock: fire due topology events
            # (region loss, heal) and land exactly on the step boundary
            self.simulator.run(until=self.clock.now + self.step_wall_s)
        else:
            self.clock.advance(self.step_wall_s)
        self._observe_regions()
        if (not self.failed_over
                and self.active_region in self.controller.lost()):
            self.failover()
        try:
            self.executor.run(source_batch=self.source_batch,
                              max_cycles=self.step_cycles)
            if self.executor.done:
                self.coordinator.final_checkpoint(self.executor)
                return False
        except OperatorCrash:
            self.report.crashes += 1
            self._check_budget()
            self._recover()
            self._pump_mirror()
            return True
        except CoordinatorDown:
            self.report.coordinator_crashes += 1
            self._check_budget()
            self._rebuild_coordinator()
            self._pump_mirror()
            return True
        except BrokerDown:
            self.report.broker_faults += 1
            self._check_budget()
            self._recover()
            self._pump_mirror()
            return True
        dead = self.coordinator.dead_subtasks()
        if dead:
            self.report.dead_detected += 1
            self._check_budget()
            self._recover()
        self._pump_mirror()
        return True

    def run(self, *, max_steps: int = 10_000,
            on_step: Callable[["GeoDeployment", int], None] | None = None,
            ) -> GeoReport:
        """Supervise to completion.  ``on_step(deployment, step)`` runs
        after each step — the hook tests and demos use to inject
        handoffs or region failures at deterministic points."""
        for index in range(max_steps):
            alive = self.step()
            if on_step is not None:
                on_step(self, index)
            if not alive:
                break
        else:
            raise ChaosError(
                f"job did not finish within {max_steps} steps")
        self.report.checkpoints = (self._prior["finalized"]
                                   + self.coordinator.finalized)
        self.report.aborted = (self._prior["aborted"]
                               + self.coordinator.aborted)
        self.report.sink_values = {
            name: list(sink.values)
            for name, sink in self.executor.sinks.items()}
        return self.report
