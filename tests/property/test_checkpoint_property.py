"""Property test: checkpoint/restore is semantically invisible.

For any input stream and any prefix length, running a stateful job to
completion must produce exactly the same sink contents as: run part of
the stream, checkpoint, keep running, crash (restore), and re-run from
the checkpoint.  This is the exactly-once guarantee the streaming
engine claims, checked over randomized streams.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import SITE_OPERATOR, FaultInjector, FaultPlan, FaultSpec
from repro.streaming import Element, Executor, JobBuilder, TumblingWindows
from repro.util.errors import OperatorCrash

stream_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),  # key
              st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False)),  # timestamp
    min_size=1, max_size=60)


def _build(elements):
    builder = JobBuilder("ckpt")
    (builder.source("s", list(elements))
            .with_watermarks(5.0)
            .key_by(lambda v: v["k"])
            .window(TumblingWindows(10.0), "sum",
                    value_fn=lambda v: v["v"])
            .sink("out"))
    return builder.build()


def _to_elements(rows):
    return [Element(value={"k": k, "v": float(i)}, timestamp=ts)
            for i, (k, ts) in enumerate(rows)]


def _results(sink_values):
    return sorted((r.key, r.window.start, r.value, r.count)
                  for r in sink_values)


class TestCheckpointInvisibility:
    @given(stream_strategy, st.integers(min_value=0, max_value=8),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_restore_replay_equals_straight_run(self, rows, cycles,
                                                batch):
        elements = _to_elements(rows)
        straight = Executor(_build(elements)).run()
        expected = _results(straight["out"].values)

        executor = Executor(_build(elements))
        executor.run(source_batch=batch, max_cycles=cycles)
        try:
            checkpoint = executor.checkpoint()
        except Exception:
            return  # items in flight at this cut: not a checkpointable
        executor.run()  # "crash" after running ahead
        executor.restore(checkpoint)
        replayed = executor.run()
        assert _results(replayed["out"].values) == expected

    @given(stream_strategy)
    @settings(max_examples=30, deadline=None)
    def test_double_restore_still_exact(self, rows):
        elements = _to_elements(rows)
        expected = _results(Executor(_build(elements)).run()["out"].values)
        executor = Executor(_build(elements))
        executor.run(source_batch=7, max_cycles=2)
        checkpoint = executor.checkpoint()
        for _ in range(2):  # crash twice from the same snapshot
            executor.run()
            executor.restore(checkpoint)
        final = executor.run()
        assert _results(final["out"].values) == expected


class TestMidBatchCrashRestore:
    """Regression: a crash landing *inside* a batch — after the prefix
    already mutated operator state, with more batches in flight and
    watermarks pending in the channels — must restore cleanly."""

    def _events(self, n=120):
        # Late-ish timestamps keep watermarks interleaved with data.
        return [Element(value={"k": i % 3, "v": float(i)},
                        timestamp=float(i % 37)) for i in range(n)]

    def _build(self, elements):
        builder = JobBuilder("crash")
        (builder.source("s", list(elements))
                .with_watermarks(5.0, name="wm")
                .map(lambda v: {"k": v["k"], "v": v["v"] + 1.0},
                     name="bump")
                .key_by(lambda v: v["k"], name="keys")
                .window(TumblingWindows(10.0), "sum",
                        value_fn=lambda v: v["v"], name="agg")
                .sink("out"))
        return builder.build()

    def _crash_plan(self, at, target="agg"):
        return FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=at,
                      target=target),))

    @pytest.mark.parametrize("crash_at", [1, 13, 40, 77])
    @pytest.mark.parametrize("target", ["bump", "agg"])
    def test_crash_with_in_flight_batches_restores_exactly(
            self, crash_at, target):
        elements = self._events()
        expected = _results(Executor(self._build(elements))
                            .run()["out"].values)
        executor = Executor(self._build(elements),
                            injector=FaultInjector(
                                self._crash_plan(crash_at, target)))
        checkpoint = executor.checkpoint()  # checkpoint zero
        while True:
            try:
                executor.run(source_batch=16, max_cycles=1)
            except OperatorCrash:
                executor.restore(checkpoint)
                continue
            if executor.done:
                break
            checkpoint = executor.checkpoint()
        assert _results(executor.sinks["out"].values) == expected

    @pytest.mark.parametrize("restore_batch_mode,restore_chaining",
                             [(False, False), (True, False), (True, True)])
    def test_cross_mode_restore_into_fresh_executor(
            self, restore_batch_mode, restore_chaining):
        """A checkpoint from a batched run must be loadable by a fresh
        executor in any mode; the fresh run emits exactly the suffix."""
        def emitted(values):
            return [(r.key, r.window.start, r.value, r.count)
                    for r in values]

        elements = self._events()
        straight = emitted(Executor(self._build(elements))
                           .run(source_batch=16)["out"].values)
        crashed = Executor(self._build(elements),
                           injector=FaultInjector(self._crash_plan(55)))
        crashed.checkpoint()
        checkpoint = None
        try:
            while True:
                crashed.run(source_batch=16, max_cycles=1)
                if crashed.done:
                    pytest.fail("crash never fired")
                checkpoint = crashed.checkpoint()
        except OperatorCrash:
            pass
        assert checkpoint is not None
        already_emitted = checkpoint.emitted_to_sinks["out"]
        fresh = Executor(self._build(elements),
                         batch_mode=restore_batch_mode,
                         chaining=restore_chaining)
        fresh.restore(checkpoint)
        suffix = emitted(fresh.run(source_batch=16)["out"].values)
        # The fresh executor's sinks start empty, so it emits exactly
        # what the crashed run had not yet delivered — sink emission
        # order is deterministic and mode-independent (the batched-
        # equivalence guarantee), so the suffix matches positionally.
        assert suffix == straight[already_emitted:]
