"""Planar target tracking: the full AR registration loop.

:class:`PlanarTracker` holds a reference target (its texture described
once, offline); per frame it detects corners, matches descriptors
against the reference, robustly estimates the texture->image homography
and recovers the camera pose.  Tracking statistics (inliers, failures,
reprojection error) drive the registration-quality experiments, and the
per-stage workload profile feeds the offloading cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import TrackingLost, VisionError
from .camera import CameraIntrinsics, Pose
from .features import BriefDescriptor, detect_corners, match_descriptors
from .geometry import (
    apply_homography,
    pose_from_homography,
    ransac_homography,
)
from .synth import PlanarTarget

__all__ = ["TrackResult", "StageProfile", "PlanarTracker"]


@dataclass(frozen=True)
class TrackResult:
    """Per-frame tracking output."""

    pose: Pose
    homography: np.ndarray
    num_matches: int
    num_inliers: int
    mean_reproj_error: float


@dataclass
class StageProfile:
    """Workload counters for one frame, consumed by the offload model.

    ``features`` and ``matches`` scale the detect/match/estimate stage
    costs; ``pixels`` scales acquisition and pre-processing.
    """

    pixels: int = 0
    features: int = 0
    matches: int = 0
    ransac_iterations: int = 0


@dataclass
class _Reference:
    keypoints_xy: np.ndarray
    descriptors: np.ndarray
    world_points: np.ndarray


class PlanarTracker:
    """Detect-describe-match-RANSAC-pose tracker for one planar target."""

    def __init__(self, target: PlanarTarget, intrinsics: CameraIntrinsics,
                 rng: np.random.Generator, max_corners: int = 400,
                 min_inliers: int = 12, ransac_threshold: float = 3.0,
                 ) -> None:
        self.target = target
        self.intrinsics = intrinsics
        self._rng = rng
        self.max_corners = max_corners
        self.min_inliers = min_inliers
        self.ransac_threshold = ransac_threshold
        self._descriptor = BriefDescriptor()
        self._reference = self._describe_reference()
        self.frames = 0
        self.failures = 0
        self.last_profile = StageProfile()
        self.history: list[TrackResult] = []

    def _describe_reference(self) -> _Reference:
        keypoints = detect_corners(self.target.texture,
                                   max_corners=self.max_corners)
        kept, descriptors = self._descriptor.compute(self.target.texture,
                                                     keypoints)
        if len(kept) < self.min_inliers:
            raise VisionError(
                "reference texture too feature-poor to track; use "
                "make_texture() or a richer image"
            )
        xy = np.array([[kp.x, kp.y] for kp in kept])
        world = self.target.texture_to_world(xy)
        return _Reference(keypoints_xy=xy, descriptors=descriptors,
                          world_points=world)

    @property
    def reference_feature_count(self) -> int:
        return len(self._reference.keypoints_xy)

    def track(self, frame: np.ndarray) -> TrackResult:
        """Estimate the camera pose for one frame.

        Raises :class:`TrackingLost` when matches/inliers are too few —
        callers decide whether to coast on the previous pose.
        """
        self.frames += 1
        profile = StageProfile(pixels=int(frame.size))
        keypoints = detect_corners(frame, max_corners=self.max_corners)
        kept, descriptors = self._descriptor.compute(frame, keypoints)
        profile.features = len(kept)
        if len(kept) < 4:
            self.failures += 1
            self.last_profile = profile
            raise TrackingLost(f"only {len(kept)} usable features in frame")
        matches = match_descriptors(descriptors,
                                    self._reference.descriptors)
        profile.matches = len(matches)
        if len(matches) < max(4, self.min_inliers // 2):
            self.failures += 1
            self.last_profile = profile
            raise TrackingLost(f"only {len(matches)} descriptor matches")
        src = self._reference.keypoints_xy[[m.train_idx for m in matches]]
        dst = np.array([[kept[m.query_idx].x, kept[m.query_idx].y]
                        for m in matches])
        try:
            result = ransac_homography(src, dst, self._rng,
                                       threshold=self.ransac_threshold)
        except VisionError as exc:
            self.failures += 1
            self.last_profile = profile
            raise TrackingLost(str(exc)) from exc
        profile.ransac_iterations = result.iterations
        if result.num_inliers < self.min_inliers:
            self.failures += 1
            self.last_profile = profile
            raise TrackingLost(
                f"{result.num_inliers} inliers < {self.min_inliers}")
        # texture->image homography composes texture->world scaling; pose
        # recovery wants world->image, so rescale columns.
        h_texture = result.homography
        th, tw = self.target.texture.shape
        scale = np.diag([tw / self.target.width_m,
                         th / self.target.height_m, 1.0])
        h_world = h_texture @ scale
        pose = pose_from_homography(h_world, self.intrinsics)
        errors = np.linalg.norm(
            apply_homography(h_texture, src) - dst, axis=1)
        track = TrackResult(
            pose=pose,
            homography=h_texture,
            num_matches=len(matches),
            num_inliers=result.num_inliers,
            mean_reproj_error=float(errors[result.inlier_mask].mean()),
        )
        self.last_profile = profile
        self.history.append(track)
        return track

    def registration_error_px(self, track: TrackResult, true_pose: Pose,
                              grid: int = 5) -> float:
        """Mean pixel error of overlay registration vs ground truth.

        Projects a grid of target points with the estimated and the true
        pose; the mean distance is what a user would perceive as overlay
        misalignment (Section 2.1's "perceive it as a real counterpart").
        """
        xs = np.linspace(0, self.target.width_m, grid)
        ys = np.linspace(0, self.target.height_m, grid)
        gx, gy = np.meshgrid(xs, ys)
        world = np.column_stack([gx.ravel(), gy.ravel(),
                                 np.zeros(grid * grid)])
        est_px = self.intrinsics.project(track.pose.transform(world))
        true_px = self.intrinsics.project(true_pose.transform(world))
        valid = np.isfinite(est_px).all(axis=1) & np.isfinite(
            true_px).all(axis=1)
        if not valid.any():
            return float("inf")
        return float(np.linalg.norm(est_px[valid] - true_px[valid],
                                    axis=1).mean())
