"""Experiment T3 (Section 4.2, interpretation).

Claim under test: AR needs "semantically meaningful information to
relate to the users' context"; a standard semantic markup (ARML) plus
native tagging is the proposed fix.  We stream social posts where only a
fraction carries semantic tags, interpret them into AR content, and
measure binding coverage as the tagged fraction varies — plus the ARML
round-trip cost of exchanging the bound content.
"""

import numpy as np

from repro.context import (
    ContextStore,
    InterpretationEngine,
    SemanticEntity,
    parse_arml,
    serialize_arml,
)
from repro.datagen import SocialStreamConfig, generate_posts
from repro.util.rng import make_rng

from tableprint import print_table

TAGGED_FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]


def _world(rng, n_pois=40):
    store = ContextStore()
    pois = []
    for i in range(n_pois):
        x, y = float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000))
        store.add_entity(SemanticEntity(
            entity_id=f"poi-{i}", entity_type="poi",
            position=np.array([x, y, 2.0]), name=f"POI {i}"))
        pois.append((f"poi-{i}", x, y))
    engine = InterpretationEngine(store)
    engine.register_default("poi-activity")
    return engine, pois


def run_experiment():
    rng = make_rng(4)
    engine, pois = _world(rng)
    rows = []
    for fraction in TAGGED_FRACTIONS:
        posts = generate_posts(rng, pois, SocialStreamConfig(
            rate_per_s=3.0, horizon_s=300.0, tagged_fraction=fraction))
        results = [{"tag": "poi-activity" if p.poi_id else None,
                    "subject": p.poi_id, "value": p.topic}
                   for p in posts]
        bound = engine.interpret(results)
        doc = engine.to_arml(bound)
        # Round-trip the exchange format to prove interop fidelity.
        parsed = parse_arml(serialize_arml(doc))
        # Feature ids may collide across posts about the same POI — the
        # document keeps the first; coverage is still measured per post.
        rows.append([fraction, len(posts), bound.bound,
                     bound.unbound_untagged, bound.coverage,
                     len(parsed)])
    return rows


def bench_t3_interpretation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "T3  Sec 4.2: semantic tagging -> interpretation coverage",
        ["tagged frac", "posts", "bound", "untagged", "coverage",
         "arml features"],
        rows,
        note="untagged results cannot be related to the user's context; "
             "coverage tracks the tagged fraction")
    coverages = [r[4] for r in rows]
    # Coverage is monotone in the tagged fraction, ~0 at 0 and ~1 at 1.
    assert all(b >= a - 0.02 for a, b in zip(coverages, coverages[1:]))
    assert coverages[0] == 0.0
    assert coverages[-1] > 0.98
    # Coverage approximately equals the tagged fraction itself.
    for row in rows:
        assert abs(row[4] - row[0]) < 0.1


def bench_t3_arml_roundtrip_throughput(benchmark):
    """Micro-benchmark: ARML serialize+parse for a 200-feature document."""
    rng = make_rng(5)
    engine, pois = _world(rng, n_pois=200)
    results = [{"tag": "poi-activity", "subject": f"poi-{i}",
                "value": i} for i in range(200)]
    bound = engine.interpret(results)
    doc = engine.to_arml(bound)

    def roundtrip():
        return len(parse_arml(serialize_arml(doc)))

    assert benchmark(roundtrip) == 200
