"""Retail application (Section 3.1, Figure 6).

Big-data-driven AR shopping: the interaction history stream trains an
item-CF recommender; gaze events (eye-tracking glasses) feed the context
ranker; the store view overlays personalized recommendations anchored at
shelf positions, and the "X-ray" locator highlights a searched product
through the shelves.

The app exposes the *with/without big data* comparison directly:
``recommend(user, personalized=False)`` degrades to the popularity
baseline, which is what a data-less AR browser could show.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..analytics.recommend import (
    ContextRanker,
    Interaction,
    ItemCFRecommender,
    PopularityRecommender,
    hit_rate,
    precision_at_k,
)
from ..context.entities import SemanticEntity, UserContext
from ..core.pipeline import ARBigDataPipeline
from ..datagen.retail import GazeEvent, RetailWorld
from ..render.occlusion import BoxOccluder, OcclusionWorld
from ..util.errors import PipelineError
from ..vision.camera import look_at

__all__ = ["RetailApp", "RecommendationEval"]

INTERACTIONS_TOPIC = "retail.interactions"
GAZE_TOPIC = "retail.gaze"


@dataclass(frozen=True)
class RecommendationEval:
    """Precision/hit-rate comparison across recommenders."""

    users_evaluated: int
    k: int
    cf_precision: float
    popularity_precision: float
    cf_hit_rate: float
    popularity_hit_rate: float

    @property
    def uplift(self) -> float:
        """Relative precision uplift of CF over popularity, in [0, 1]."""
        if self.cf_precision <= self.popularity_precision:
            return 0.0
        if self.cf_precision == 0:
            return 0.0
        return min(1.0, (self.cf_precision - self.popularity_precision)
                   / max(self.cf_precision, 1e-12))


class RetailApp:
    """The store's AR + big-data service."""

    def __init__(self, pipeline: ARBigDataPipeline,
                 world: RetailWorld) -> None:
        self.pipeline = pipeline
        self.world = world
        self.cf = ItemCFRecommender()
        self.popularity = PopularityRecommender()
        self.ranker = ContextRanker()
        self._seen: dict[str, set[str]] = {}
        self._gaze: dict[str, list[tuple[str, float]]] = {}
        pipeline.create_topic(INTERACTIONS_TOPIC)
        pipeline.create_topic(GAZE_TOPIC)
        # Products become semantic entities so interpretation can anchor
        # recommendations to shelves.
        for product in world.products:
            pipeline.add_entity(SemanticEntity(
                entity_id=product.product_id,
                entity_type="product",
                position=np.array([product.x, product.y, product.z]),
                name=product.product_id,
                tags={"category": product.category,
                      "price": product.price},
            ))
        pipeline.interpreter.register_default("recommendation")
        pipeline.interpreter.register_default("locator")
        self._shelves = self._build_shelves()

    def _build_shelves(self) -> OcclusionWorld:
        """Aisles as box occluders (for the X-ray locator)."""
        world = OcclusionWorld()
        store = max(max(p.x for p in self.world.products),
                    max(p.y for p in self.world.products)) + 1.0
        aisle_count = 5
        for i in range(aisle_count):
            y0 = (i + 0.5) * store / (aisle_count + 1)
            world.add(BoxOccluder(
                name=f"shelf-{i}",
                minimum=(2.0, y0 - 0.3, 0.0),
                maximum=(store - 2.0, y0 + 0.3, 2.0)))
        return world

    @property
    def shelves(self) -> OcclusionWorld:
        return self._shelves

    # -- data ingestion ------------------------------------------------------

    def ingest_interactions(self, interactions: list[Interaction]) -> int:
        """Feed history into the log and both recommenders."""
        for it in interactions:
            self.pipeline.ingest(
                INTERACTIONS_TOPIC,
                {"user": it.user, "item": it.item, "weight": it.weight},
                key=it.user, timestamp=it.timestamp, personal=True)
            self.cf.add(it)
            self.popularity.add(it)
            self._seen.setdefault(it.user, set()).add(it.item)
        return len(interactions)

    def seen_items(self, user: str) -> set[str]:
        """Items the user has already interacted with."""
        return set(self._seen.get(user, set()))

    def ingest_gaze(self, events: list[GazeEvent]) -> int:
        for event in events:
            self.pipeline.ingest(
                GAZE_TOPIC,
                {"user": event.user, "item": event.product_id,
                 "dwell": event.dwell_s},
                key=event.user, timestamp=event.timestamp, personal=True)
            self.ranker.observe_gaze(event.user, event.product_id,
                                     event.timestamp)
            self._gaze.setdefault(event.user, []).append(
                (event.product_id, event.timestamp))
        return len(events)

    # -- tiered serving store ---------------------------------------------------

    def build_serving_store(self, *, parallelism: int = 1,
                            ttl_s: float | None = None,
                            injector=None):
        """Stream the gaze topic into a tiered serving store, exactly
        once: the hot tier binds the in-aisle AR overlay (latest gazed
        items per shopper), the analytical tier backs engagement
        dashboards.  Returns the :class:`~repro.store.TieredStore`."""
        from ..store import serve_topic

        store, report = serve_topic(
            self.pipeline.log, GAZE_TOPIC, parallelism=parallelism,
            ttl_s=ttl_s, metric_fn=lambda v: v["dwell"],
            injector=injector, name="retail-serving")
        self.serving_store = store
        self.serving_report = report
        return store

    def overlay_state(self, user: str, n: int = 5) -> list[dict]:
        """Hot-tier lookup for the shopper's AR overlay: the latest
        ``n`` gaze fixations, newest first."""
        store = getattr(self, "serving_store", None)
        if store is None:
            raise PipelineError("call build_serving_store() first")
        # Gaze is ingested personal=True, so the log (and therefore the
        # store) keys by the privacy guard's stable pseudonym.
        anon = self.pipeline.guard.pseudonymize(user)
        return [{"ts": ts, "item": v["item"], "dwell": v["dwell"]}
                for ts, v in store.latest(anon, n)]

    def engagement_dashboard(self, start: float | None = None,
                             end: float | None = None,
                             agg: str = "sum") -> dict[str, float]:
        """Analytical-tier dashboard: dwell aggregate per *item* over
        committed history (callable regrouping — the key column carries
        shoppers, not items)."""
        store = getattr(self, "serving_store", None)
        if store is None:
            raise PipelineError("call build_serving_store() first")
        return store.group_by(agg, start=start, end=end,
                              by=lambda v: v["item"])

    # -- recommendation ---------------------------------------------------------

    def recommend(self, user: str, k: int = 5, personalized: bool = True,
                  now: float = 0.0,
                  position: tuple[float, float] | None = None,
                  ) -> list[tuple[str, float]]:
        """Top-k products; personalized uses CF + gaze/proximity context."""
        base = (self.cf if personalized else self.popularity).recommend(
            user, k=k * 4)
        if not personalized:
            return base[:k]
        scores = dict(base)
        if position is not None:
            px, py = position
            by_id = {p.product_id: p for p in self.world.products}
            for item in scores:
                product = by_id[item]
                distance = float(np.hypot(product.x - px, product.y - py))
                scores[item] *= 1.0 + 1.0 / (
                    1.0 + distance / self.ranker.proximity_scale)
        # Gaze context: boost candidates *similar* to recently gazed
        # products (gazed items themselves are seen and excluded).
        for gazed, ts in self._gaze.get(user, ()):
            recency = math.exp(-max(0.0, now - ts)
                               / self.ranker.recency_tau)
            if recency < 1e-3:
                continue
            for item in scores:
                similarity = self.cf.similarity(item, gazed)
                if similarity > 0:
                    scores[item] *= 1.0 + recency * similarity
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def publish_recommendations(self, user: str, k: int = 5,
                                now: float = 0.0) -> int:
        """Interpretation step: recommendations -> anchored annotations."""
        recs = self.recommend(user, k=k, now=now)
        results = [{"tag": "recommendation", "subject": item,
                    "value": f"score {score:.2f}", "priority": score}
                   for item, score in recs]
        bound = self.pipeline.interpret_and_publish(results)
        return bound.bound

    # -- X-ray locator --------------------------------------------------------------

    def locate_product(self, user: str, product_id: str,
                       user_position: tuple[float, float],
                       ) -> dict:
        """Highlight a product through the shelves (Section 3.1's
        "X-Ray vision ... to see a specific one behind")."""
        products = {p.product_id: p for p in self.world.products}
        if product_id not in products:
            raise PipelineError(f"unknown product {product_id!r}")
        product = products[product_id]
        self.pipeline.update_user_context(UserContext(
            user_id=user,
            position=np.array([user_position[0], user_position[1], 1.6])))
        bound = self.pipeline.interpret_and_publish([{
            "tag": "locator", "subject": product_id,
            "value": "HERE", "priority": 10.0}])
        if bound.bound != 1:
            raise PipelineError("locator annotation failed to bind")
        session = self._session_for(user)
        session.sync()
        eye = np.array([user_position[0], user_position[1], 1.6])
        target = np.array([product.x, product.y, product.z])
        pose = look_at(eye=eye, target=target, up=np.array([0.0, 0.0, 1.0]))
        frame = session.render(pose)
        item = next((i for i in frame.items
                     if i.annotation_id == f"locator:{product_id}"), None)
        distance = float(np.linalg.norm(target - eye))
        return {
            "found": item is not None,
            "xray": item.xray if item is not None else False,
            "occluded": item.occluded if item is not None else False,
            "distance_m": distance,
        }

    def _session_for(self, user: str):
        try:
            return self.pipeline.session(user)
        except PipelineError:
            return self.pipeline.open_session(
                user, occlusion=self._shelves, occlusion_policy="xray")

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, rng: np.random.Generator, k: int = 5,
                 holdout_per_user: int = 20,
                 max_users: int | None = None) -> RecommendationEval:
        """Precision@k of CF vs popularity against preference holdouts."""
        shoppers = self.world.shoppers[:max_users]
        cf_p, pop_p, cf_h, pop_h = [], [], [], []
        for shopper in shoppers:
            relevant = self.world.holdout_relevant(
                rng, shopper, n=holdout_per_user)
            # Recommenders exclude seen items, so judge them only on the
            # unseen part of the holdout.
            relevant = relevant - self.seen_items(shopper.shopper_id)
            if not relevant:
                continue
            cf_items = [i for i, _s in self.cf.recommend(
                shopper.shopper_id, k=k)]
            pop_items = [i for i, _s in self.popularity.recommend(
                shopper.shopper_id, k=k)]
            cf_p.append(precision_at_k(cf_items, relevant, k))
            pop_p.append(precision_at_k(pop_items, relevant, k))
            cf_h.append(hit_rate(cf_items, relevant, k))
            pop_h.append(hit_rate(pop_items, relevant, k))
        return RecommendationEval(
            users_evaluated=len(shoppers), k=k,
            cf_precision=float(np.mean(cf_p)) if cf_p else 0.0,
            popularity_precision=float(np.mean(pop_p)) if pop_p else 0.0,
            cf_hit_rate=float(np.mean(cf_h)) if cf_h else 0.0,
            popularity_hit_rate=float(np.mean(pop_h)) if pop_h else 0.0,
        )
