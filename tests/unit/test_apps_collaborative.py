"""Unit tests: the collaborative virtual operating room (Sec 3.3)."""

import pytest

from repro.apps import HealthcareApp
from repro.core import ARBigDataPipeline, PipelineConfig
from repro.datagen import generate_patients
from repro.util.errors import PipelineError
from repro.util.rng import make_rng


def _app(seed=0):
    rng = make_rng(seed)
    patients = generate_patients(rng, n=2, episode_rate=0.0)
    app = HealthcareApp(ARBigDataPipeline(PipelineConfig(seed=seed)),
                        patients)
    return app, rng


class TestCollaborativeConsult:
    def test_findings_propagate_to_all_peers(self):
        app, rng = _app(1)
        stats = app.collaborative_consult(
            rng, "pt-000", {"onsite": "lan", "remote": "wan"},
            duration_s=1200.0, finding_rate_per_s=0.05)
        assert stats.doctors == 2
        assert stats.findings_published > 20
        # Every finding eventually reached every peer.
        assert len(stats.propagation_delays_s) == stats.findings_published

    def test_propagation_bounded_by_sync_period_plus_links(self):
        app, rng = _app(2)
        stats = app.collaborative_consult(
            rng, "pt-000", {"a": "lan", "b": "lan"},
            duration_s=1200.0, finding_rate_per_s=0.05,
            sync_period_s=1.0)
        # LAN latency is negligible; propagation is dominated by the
        # sync cadence: mean ~ period/2, p95 < ~period.
        assert stats.mean_propagation_s < 1.0
        assert stats.p95_propagation_s < 1.5

    def test_faster_sync_cuts_propagation(self):
        app, rng = _app(3)
        slow = app.collaborative_consult(
            rng, "pt-000", {"a": "lan", "b": "lan"}, duration_s=800.0,
            finding_rate_per_s=0.05, sync_period_s=4.0)
        fast = app.collaborative_consult(
            rng, "pt-000", {"a": "lan", "b": "lan"}, duration_s=800.0,
            finding_rate_per_s=0.05, sync_period_s=0.25)
        assert fast.mean_propagation_s < slow.mean_propagation_s / 3

    def test_slow_link_slows_everyone(self):
        app, rng = _app(4)
        lan_only = app.collaborative_consult(
            rng, "pt-000", {"a": "lan", "b": "lan"}, duration_s=800.0,
            finding_rate_per_s=0.05, sync_period_s=0.25)
        with_lte = app.collaborative_consult(
            rng, "pt-000", {"a": "lan", "b": "lte"}, duration_s=800.0,
            finding_rate_per_s=0.05, sync_period_s=0.25)
        assert with_lte.mean_propagation_s > lan_only.mean_propagation_s

    def test_unknown_patient_rejected(self):
        app, rng = _app(5)
        with pytest.raises(PipelineError):
            app.collaborative_consult(rng, "pt-999",
                                      {"a": "lan", "b": "lan"})

    def test_single_doctor_rejected(self):
        app, rng = _app(6)
        with pytest.raises(PipelineError):
            app.collaborative_consult(rng, "pt-000", {"solo": "lan"})

    def test_unknown_link_rejected(self):
        app, rng = _app(7)
        with pytest.raises(PipelineError):
            app.collaborative_consult(rng, "pt-000",
                                      {"a": "lan", "b": "tin-cans"})
