"""Tourism application (Section 3.2, Figure 7).

A city guide: POIs become semantic entities; tourists move on mobility
traces; the guide overlays nearby-POI content either as naive floating
bubbles (the AR-browser baseline the paper criticizes) or registered,
decluttered and occlusion-aware.  The Ingress-style gamification places
portals at landmark POIs and measures visit engagement with and without
the game layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytics.incremental import DecayedCounter
from ..context.entities import SemanticEntity
from ..core.pipeline import ARBigDataPipeline
from ..datagen.mobility import Trace
from ..render.compositor import Compositor
from ..render.occlusion import OcclusionWorld
from ..render.scene import Annotation, SceneGraph
from ..sensors.poi import PoiDatabase
from ..util.errors import PipelineError
from ..vision.camera import CameraIntrinsics, look_at

__all__ = ["TourismApp", "OverlayComparison", "GameStats"]

VISITS_TOPIC = "tourism.visits"


@dataclass(frozen=True)
class OverlayComparison:
    """Registered/decluttered vs naive bubbles, one frame."""

    naive_useful_ratio: float
    smart_useful_ratio: float
    naive_overlap_ratio: float
    smart_overlap_ratio: float
    labels: int

    @property
    def useful_uplift(self) -> float:
        if self.smart_useful_ratio <= self.naive_useful_ratio:
            return 0.0
        return min(1.0, self.smart_useful_ratio - self.naive_useful_ratio)


@dataclass(frozen=True)
class GameStats:
    """Ingress-style engagement outcome."""

    tourists: int
    portal_count: int
    visits_plain: int  # POI encounters without the game
    visits_gamified: int  # encounters when portals attract detours

    @property
    def engagement_uplift(self) -> float:
        if self.visits_plain == 0:
            return 1.0 if self.visits_gamified > 0 else 0.0
        return max(0.0, (self.visits_gamified - self.visits_plain)
                   / self.visits_gamified) if self.visits_gamified else 0.0


class TourismApp:
    """City-guide AR service over the convergence pipeline."""

    def __init__(self, pipeline: ARBigDataPipeline, pois: PoiDatabase,
                 buildings: OcclusionWorld | None = None) -> None:
        self.pipeline = pipeline
        self.pois = pois
        self.buildings = buildings if buildings is not None \
            else OcclusionWorld()
        pipeline.create_topic(VISITS_TOPIC)
        for poi in pois.most_popular(k=len(pois)):
            pipeline.add_entity(SemanticEntity(
                entity_id=poi.poi_id, entity_type="poi",
                position=np.array([poi.x, poi.y, 2.0]),
                name=poi.name,
                tags={"category": poi.category,
                      "popularity": poi.popularity}))
        pipeline.interpreter.register_default("poi-info")
        self._trend = {}  # poi -> DecayedCounter of recent visits

    # -- guide overlays ----------------------------------------------------

    def nearby_content(self, x: float, y: float, radius_m: float = 150.0,
                       limit: int = 20) -> list[Annotation]:
        """Annotations for nearby POIs, popularity-prioritized."""
        nearby = self.pois.within(x, y, radius_m)[:limit]
        annotations = []
        for poi in nearby:
            annotations.append(Annotation(
                annotation_id=f"poi:{poi.poi_id}",
                anchor=np.array([poi.x, poi.y, 2.0]),
                text=poi.name,
                kind="poi-info",
                priority=poi.popularity,
                width_px=90.0, height_px=22.0))
        return annotations

    def compare_overlays(self, x: float, y: float,
                         heading_to: tuple[float, float],
                         intrinsics: CameraIntrinsics,
                         radius_m: float = 150.0,
                         limit: int = 20) -> OverlayComparison:
        """Render the same view naive vs smart and measure clutter."""
        annotations = self.nearby_content(x, y, radius_m, limit=limit)
        scene = SceneGraph()
        for annotation in annotations:
            scene.add(annotation)
        eye = np.array([x, y, 1.7])
        target = np.array([heading_to[0], heading_to[1], 1.7])
        pose = look_at(eye=eye, target=target, up=np.array([0.0, 0.0, 1.0]))
        naive = Compositor(intrinsics, occlusion=self.buildings,
                           occlusion_policy="ignore",
                           declutter=False).compose(scene, pose)
        smart = Compositor(intrinsics, occlusion=self.buildings,
                           occlusion_policy="xray",
                           declutter=True).compose(scene, pose)
        return OverlayComparison(
            naive_useful_ratio=naive.layout.useful_ratio,
            smart_useful_ratio=smart.layout.useful_ratio,
            naive_overlap_ratio=naive.layout.overlap_ratio,
            smart_overlap_ratio=smart.layout.overlap_ratio,
            labels=len(annotations))

    # -- visit tracking / trends -----------------------------------------------

    def record_visit(self, user: str, poi_id: str, timestamp: float) -> None:
        self.pois.get(poi_id)  # validate
        self.pipeline.ingest(VISITS_TOPIC,
                             {"user": user, "poi": poi_id, "x": 0, "y": 0},
                             key=user, timestamp=timestamp, personal=True)
        counter = self._trend.setdefault(poi_id, DecayedCounter(tau=3600.0))
        counter.add(timestamp)

    def trending(self, now: float, k: int = 5) -> list[tuple[str, float]]:
        scored = [(poi_id, counter.value(now))
                  for poi_id, counter in self._trend.items()]
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]

    # -- tiered serving store ---------------------------------------------------

    def build_serving_store(self, *, parallelism: int = 1,
                            ttl_s: float | None = None,
                            injector=None):
        """Stream the visits topic into a tiered serving store, exactly
        once: the hot tier answers "where was this tourist last" for the
        guide overlay, the analytical tier backs footfall dashboards.
        Returns the :class:`~repro.store.TieredStore`."""
        from ..store import serve_topic

        store, report = serve_topic(
            self.pipeline.log, VISITS_TOPIC, parallelism=parallelism,
            ttl_s=ttl_s, metric_fn=lambda v: 1.0,
            injector=injector, name="tourism-serving")
        self.serving_store = store
        self.serving_report = report
        return store

    def recent_visits(self, user: str, n: int = 5) -> list[tuple[float, str]]:
        """Hot-tier lookup for the guide overlay: the user's latest
        ``n`` POI visits, newest first, as ``(timestamp, poi_id)``."""
        store = getattr(self, "serving_store", None)
        if store is None:
            raise PipelineError("call build_serving_store() first")
        # Visits are ingested personal=True: the store keys by the
        # privacy guard's stable pseudonym, never the raw user id.
        anon = self.pipeline.guard.pseudonymize(user)
        return [(ts, v["poi"]) for ts, v in store.latest(anon, n)]

    def footfall_dashboard(self, start: float | None = None,
                           end: float | None = None) -> dict[str, float]:
        """Analytical-tier dashboard: visit counts per POI over the
        committed history, optionally time-bounded."""
        store = getattr(self, "serving_store", None)
        if store is None:
            raise PipelineError("call build_serving_store() first")
        return store.group_by("count", start=start, end=end,
                              by=lambda v: v["poi"])

    def dwell_sessions(self, gap_s: float = 900.0) -> list:
        """Session-window analysis of the visit stream: one session per
        (user, POI) burst of visits closer than ``gap_s`` apart.

        Returns the fired :class:`~repro.streaming.WindowResult`s —
        session length (count) per key — the dwell signal a smart guide
        uses to separate "walked past" from "spent an hour there".
        """
        from ..streaming.connectors import log_source
        from ..streaming.graph import JobBuilder
        from ..streaming.runtime import Executor
        from ..streaming.windows import SessionWindows

        builder = JobBuilder("dwell")
        (builder.source("visits", log_source(self.pipeline.log,
                                             VISITS_TOPIC))
                .key_by(lambda v: (v["user"], v["poi"]))
                .window(SessionWindows(gap=gap_s), "count")
                .sink("sessions"))
        sinks = Executor(builder.build()).run()
        return list(sinks["sessions"].values)

    def trending_private(self, now: float, k: int, epsilon: float,
                         rng: np.random.Generator) -> list[str]:
        """DP release of the trending list (Sec 4.3: recommendations
        from personal visit data with a bounded privacy cost).

        Uses exponential-mechanism peeling over the decayed visit
        scores; a single visit changes any score by at most 1 (decay
        only shrinks it), so per-pick sensitivity is 1.
        """
        from ..privacy.exponential import private_top_k
        scores = {poi_id: counter.value(now)
                  for poi_id, counter in self._trend.items()}
        if len(scores) < k:
            raise PipelineError(
                f"only {len(scores)} visited POIs; cannot release top-{k}")
        return private_top_k(scores, k=k, epsilon=epsilon, rng=rng)

    # -- gamification --------------------------------------------------------------

    def run_game(self, traces: list[Trace], portal_count: int = 10,
                 encounter_m: float = 60.0,
                 detour_m: float = 150.0) -> GameStats:
        """Ingress-style portals at the most popular POIs.

        Plain mode counts organic POI encounters along each trace; the
        gamified mode also captures portals within ``detour_m`` (players
        detour to capture), modelling the paper's "treasure hunt".
        """
        if portal_count < 1:
            raise PipelineError("need at least one portal")
        portals = self.pois.most_popular(k=portal_count)
        portal_xy = np.array([[p.x, p.y] for p in portals])
        visits_plain = 0
        visits_gamified = 0
        for trace in traces:
            seen_plain: set[int] = set()
            seen_game: set[int] = set()
            for x, y in zip(trace.xs, trace.ys):
                d = np.hypot(portal_xy[:, 0] - x, portal_xy[:, 1] - y)
                seen_plain.update(np.nonzero(d <= encounter_m)[0].tolist())
                seen_game.update(np.nonzero(d <= detour_m)[0].tolist())
            visits_plain += len(seen_plain)
            visits_gamified += len(seen_game)
        return GameStats(tourists=len(traces), portal_count=portal_count,
                         visits_plain=visits_plain,
                         visits_gamified=visits_gamified)

    # -- translation assist -----------------------------------------------------------

    def translate_signs(self, signs: list[tuple[str, str]],
                        phrasebook: dict[str, str]) -> list[dict]:
        """Mock native-language sign translation: a lookup 'model'.

        ``signs`` rows are (sign_id, native_text); unknown phrases stay
        untranslated (coverage is the metric, as with any MT system).
        """
        out = []
        for sign_id, text in signs:
            translated = phrasebook.get(text)
            out.append({"sign": sign_id, "native": text,
                        "translated": translated,
                        "covered": translated is not None})
        return out
