"""Live edge-vs-core tier selection: link conditions, not static
config, decide where a session is served."""

import pytest

from repro.core.session import ARSession, SharedDataset
from repro.offload import LiveTierSelector
from repro.render.compositor import Compositor
from repro.simnet import region_topology
from repro.util.errors import OffloadError, PipelineError
from repro.util.rng import make_rng
from repro.vision.camera import CameraIntrinsics

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)


@pytest.fixture()
def topo():
    return region_topology(make_rng(3))


@pytest.fixture()
def selector(topo):
    return LiveTierSelector(topo)


class TestLiveSelection:
    def test_prefers_local_edge_when_healthy(self, selector):
        decision = selector.select("edge-a-dev0")
        assert decision.node == "edge-a-edge"
        assert decision.region == "edge-a"
        assert decision.rtt_s < selector.rtt_s("edge-a-dev0", "core")

    def test_edge_down_degrades_to_core(self, topo, selector):
        topo.fail_node("edge-a-edge")
        decision = selector.select("edge-a-dev0", current="edge-a-edge")
        assert decision.node != "edge-a-edge"
        assert decision.switched

    def test_partition_degrades_to_core(self, topo, selector):
        # local access outage: the edge is only reachable the long way
        # around (through core), so serving from core wins outright
        topo.block_direction("edge-a-dev0", "edge-a-edge")
        topo.block_direction("edge-a-edge", "edge-a-dev0")
        decision = selector.select("edge-a-dev0", current="edge-a-edge")
        assert decision.node == "core"
        assert decision.candidates["edge-a-edge"] > decision.rtt_s

    def test_heal_restores_edge(self, topo, selector):
        topo.fail_node("edge-a-edge")
        degraded = selector.select("edge-a-dev0", current="edge-a-edge")
        topo.recover_node("edge-a-edge")
        restored = selector.select("edge-a-dev0", current=degraded.node)
        assert restored.node == "edge-a-edge"
        assert restored.switched

    def test_saturated_tier_priced_out(self, topo, selector):
        selector.set_load("edge-a-edge", 1.0)
        decision = selector.select("edge-a-dev0")
        assert decision.node != "edge-a-edge"

    def test_congestion_inflates_compute_share(self, selector):
        idle = selector.rtt_s("edge-a-dev0", "edge-a-edge")
        selector.set_load("edge-a-edge", 0.9)
        assert selector.rtt_s("edge-a-dev0", "edge-a-edge") > idle

    def test_hysteresis_keeps_incumbent(self, topo):
        # hysteresis=0.5: the edge is better than core, but only a
        # >2x improvement justifies leaving an incumbent
        selector = LiveTierSelector(topo, hysteresis=0.5)
        edge = selector.rtt_s("edge-a-dev0", "edge-a-edge")
        core = selector.rtt_s("edge-a-dev0", "core")
        if edge >= 0.5 * core:
            decision = selector.select("edge-a-dev0", current="core")
            assert decision.node == "core"
            assert not decision.switched

    def test_all_tiers_down_raises(self, topo, selector):
        for spec in topo.nodes():
            if spec.role in ("edge", "cloud"):
                topo.fail_node(spec.name)
        with pytest.raises(OffloadError, match="reachable"):
            selector.select("edge-a-dev0")


class TestSessionRehoming:
    def _session(self, device="edge-a-dev0"):
        return ARSession("u1", SharedDataset(), Compositor(INTR),
                         device=device)

    def test_rehome_binds_serving_tier(self, selector):
        session = self._session()
        decision = session.rehome(selector)
        assert session.serving_node == decision.node == "edge-a-edge"
        assert session.serving_region == "edge-a"
        assert session.tier_switches == 0

    def test_rehome_counts_switches(self, topo, selector):
        session = self._session()
        session.rehome(selector)
        topo.fail_node("edge-a-edge")
        session.rehome(selector)
        assert session.serving_node != "edge-a-edge"
        assert session.tier_switches == 1

    def test_stable_network_means_no_switch(self, selector):
        session = self._session()
        for _ in range(3):
            session.rehome(selector)
        assert session.tier_switches == 0

    def test_rehome_without_device_rejected(self, selector):
        session = ARSession("u2", SharedDataset(), Compositor(INTR))
        with pytest.raises(PipelineError, match="no device"):
            session.rehome(selector)
