"""Unit tests: region/zone tags, region topology builder, and the
region failure scenarios (asymmetric partitions, partial region loss,
heal-after-partition restoration)."""

import pytest

from repro.simnet import (
    LINK_PRESETS,
    FailureInjector,
    LinkSpec,
    NodeSpec,
    RegionFailureEvent,
    Simulator,
    Topology,
    region_topology,
)
from repro.util.errors import ConfigError, NetworkError
from repro.util.rng import make_rng


def _two_region_topo() -> Topology:
    topo = Topology(make_rng(0))
    lan = LinkSpec(latency_s=1e-3, bandwidth_bps=1e8)
    topo.add_node(NodeSpec("a1", 1e9, region="ra", zone="za"))
    topo.add_node(NodeSpec("a2", 1e9, region="ra", zone="za"))
    topo.add_node(NodeSpec("b1", 1e9, region="rb", zone="zb"))
    topo.add_link("a1", "a2", lan)
    topo.add_link("a2", "b1", lan)
    return topo


class TestRegionTags:
    def test_default_region(self):
        spec = NodeSpec("n", 1e9)
        assert spec.region == "default"
        assert spec.zone is None

    def test_region_filters_and_listing(self):
        topo = _two_region_topo()
        assert topo.regions() == ["ra", "rb"]
        assert {s.name for s in topo.nodes(region="ra")} == {"a1", "a2"}
        assert topo.region_of("b1") == "rb"

    def test_unknown_region_rejected(self):
        with pytest.raises(NetworkError):
            _two_region_topo().fail_region("nope")


class TestRegionTopologyBuilder:
    def test_builds_edges_devices_and_core(self):
        topo = region_topology(make_rng(1), edge_regions=("e1", "e2"),
                               devices_per_zone=2)
        assert topo.regions() == ["core", "e1", "e2"]
        assert {s.name for s in topo.nodes(role="edge")} == \
            {"e1-edge", "e2-edge"}
        assert len(topo.nodes(role="device", region="e1")) == 2
        assert topo.node("e1-edge").zone == "e1"

    def test_link_tiers(self):
        topo = region_topology(make_rng(1))
        # access link is wifi, inter-edge is metro, backhaul is wan
        assert topo.link("edge-a-dev0", "edge-a-edge").spec \
            == LINK_PRESETS["wifi"]
        assert topo.link("edge-a-edge", "edge-b-edge").spec \
            == LINK_PRESETS["metro"]
        assert topo.link("edge-a-edge", "core").spec == LINK_PRESETS["wan"]

    def test_edge_path_far_below_core_path(self):
        topo = region_topology(make_rng(1))
        edge = topo.nominal_path_latency("edge-a-dev0", "edge-a-edge")
        core = topo.nominal_path_latency("edge-a-dev0", "core")
        assert edge * 5 < core

    def test_duplicate_regions_rejected(self):
        with pytest.raises(ConfigError):
            region_topology(make_rng(0), edge_regions=("e", "e"))


class TestRegionLoss:
    def test_whole_region_loss_kills_routes(self):
        topo = _two_region_topo()
        topo.fail_region("ra")
        assert not topo.reachable("b1", "a1")
        topo.recover_region("ra")
        assert topo.route("b1", "a1") == ["b1", "a2", "a1"]

    def test_partial_region_loss_reroutes(self):
        """Losing part of a region only kills routes through it."""
        topo = region_topology(make_rng(2), edge_regions=("e1", "e2"),
                               fallback=None)
        topo.fail_node("e1-edge")
        assert not topo.reachable("e1-dev0", "core")  # zone uplink gone
        assert topo.reachable("e2-dev0", "core")      # other region fine

    def test_cellular_fallback_survives_edge_loss(self):
        """With the LTE fallback link, losing the zone edge server
        degrades the device to core instead of cutting it off."""
        topo = region_topology(make_rng(2), edge_regions=("e1", "e2"))
        topo.fail_node("e1-edge")
        assert topo.reachable("e1-dev0", "core")
        assert topo.route("e1-dev0", "core") == ["e1-dev0", "core"]

    def test_devices_never_forward_transit_traffic(self):
        """A client device can terminate a route but not relay one:
        with the edge's own links cut, core must not reach it by
        bouncing through another device's fallback link."""
        topo = region_topology(make_rng(2), edge_regions=("e1", "e2"))
        topo.block_direction("core", "e1-edge")
        topo.block_direction("e1-edge", "core")
        for other in ("e2-edge",):
            topo.block_direction(other, "e1-edge")
            topo.block_direction("e1-edge", other)
        assert not topo.reachable("core", "e1-edge")

    def test_scheduled_region_loss_and_recovery(self):
        topo = _two_region_topo()
        sim = Simulator()
        injector = FailureInjector(sim, topo)
        injector.schedule_region(
            RegionFailureEvent(region="ra", down_at=1.0, up_at=3.0))
        sim.run(until=2.0)
        assert not topo.node("a1").up and not topo.node("a2").up
        assert topo.node("b1").up
        sim.run(until=4.0)
        assert topo.node("a1").up and topo.reachable("b1", "a1")
        assert injector.region_injected[0].mode == "loss"


class TestAsymmetricPartition:
    def test_partition_out_blocks_only_outbound(self):
        topo = _two_region_topo()
        topo.partition_region("ra", "out")
        assert not topo.reachable("a1", "b1")
        assert topo.reachable("b1", "a1")

    def test_partition_in_blocks_only_inbound(self):
        topo = _two_region_topo()
        topo.partition_region("ra", "in")
        assert topo.reachable("a1", "b1")
        assert not topo.reachable("b1", "a1")

    def test_full_partition_blocks_both(self):
        topo = _two_region_topo()
        blocked = topo.partition_region("ra")
        assert blocked == 2  # one boundary link, two directions
        assert not topo.reachable("a1", "b1")
        assert not topo.reachable("b1", "a1")
        # intra-region traffic unaffected
        assert topo.reachable("a1", "a2")

    def test_scheduled_asymmetric_partition(self):
        topo = _two_region_topo()
        sim = Simulator()
        injector = FailureInjector(sim, topo)
        injector.schedule_region(RegionFailureEvent(
            region="ra", down_at=1.0, up_at=3.0, mode="partition_out"))
        sim.run(until=2.0)
        assert not topo.reachable("a1", "b1")
        assert topo.reachable("b1", "a1")
        sim.run(until=4.0)
        assert topo.reachable("a1", "b1")

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            RegionFailureEvent(region="ra", down_at=0.0, up_at=1.0,
                               mode="wat")


class TestHealAfterPartition:
    def test_heal_restores_exact_link_state(self):
        topo = _two_region_topo()
        before = topo.route("a1", "b1")
        topo.partition_region("ra")
        assert topo.blocked_directions()
        healed = topo.heal_region("ra")
        assert healed == 2
        assert topo.blocked_directions() == set()
        assert topo.route("a1", "b1") == before

    def test_heal_leaves_unrelated_blocks(self):
        topo = Topology(make_rng(3))
        lan = LinkSpec(latency_s=1e-3, bandwidth_bps=1e8)
        for name, region in (("a", "ra"), ("b", "rb"), ("c", "rc")):
            topo.add_node(NodeSpec(name, 1e9, region=region))
        topo.add_link("a", "b", lan)
        topo.add_link("b", "c", lan)
        topo.partition_region("ra")
        topo.partition_region("rc")
        topo.heal_region("ra")
        assert topo.reachable("a", "b")
        assert not topo.reachable("b", "c")

    def test_scheduled_partition_heals_on_time(self):
        topo = _two_region_topo()
        sim = Simulator()
        injector = FailureInjector(sim, topo)
        injector.schedule_region(RegionFailureEvent(
            region="rb", down_at=0.5, up_at=2.5, mode="partition"))
        sim.run(until=1.0)
        assert not topo.reachable("a1", "b1")
        sim.run(until=3.0)
        assert topo.blocked_directions() == set()
        assert topo.reachable("a1", "b1")
