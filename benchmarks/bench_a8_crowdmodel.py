"""Ablation A8: crowdsourced environment modelling (Section 3.2).

Claim under test: "Aggregating and compiling the redundant fragmented
data helps us to build a detailed and complete environmental model."
We sweep the number of (noisy, partly vandalized) contributions per
building and measure consensus-model error, with the robust median
aggregator against a naive mean.
"""

import numpy as np

from repro.sensors import BoxModel, Contribution, CrowdModel
from repro.util.rng import make_rng

from tableprint import print_table

TRUTH = BoxModel(cx=100.0, cy=50.0, width=20.0, depth=30.0, height=45.0)
CONTRIBUTIONS = [1, 3, 10, 30, 100, 300]
OUTLIER_RATE = 0.1


def run_experiment():
    rows = []
    for n in CONTRIBUTIONS:
        median_errors = []
        mean_errors = []
        for trial in range(15):
            rng = make_rng(1000 + 17 * n + trial)
            models = CrowdModel.simulate_contributions(
                TRUTH, n, rng, outlier_rate=OUTLIER_RATE)
            crowd = CrowdModel()
            for i, model in enumerate(models):
                crowd.submit(Contribution("b", f"c{i}", model))
            median_errors.append(crowd.consensus("b").error_to(TRUTH))
            stack = np.array([[m.cx, m.cy, m.width, m.depth, m.height]
                              for m in models])
            mean_model = BoxModel(*[float(max(v, 1e-6))
                                    for v in stack.mean(axis=0)])
            mean_errors.append(mean_model.error_to(TRUTH))
        rows.append([n, float(np.mean(median_errors)),
                     float(np.mean(mean_errors))])
    return rows


def bench_a8_crowdmodel(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A8  Sec 3.2: crowdsourced building model error vs contributions"
        f" ({OUTLIER_RATE:.0%} gross outliers)",
        ["contributions", "median consensus error m",
         "naive mean error m"],
        rows,
        note="redundant fragmented data does converge to a usable "
             "model — with a robust aggregator; the naive mean is "
             "capped by the outlier floor")
    median_err = [r[1] for r in rows]
    mean_err = [r[2] for r in rows]
    # Aggregation pays: error falls by >5x from 1 to 300 contributions.
    assert median_err[-1] < median_err[0] / 5
    # Sub-metre consensus with enough contributors.
    assert median_err[-1] < 1.0
    # The robust aggregator beats the naive mean once outliers matter.
    assert median_err[-1] < mean_err[-1] / 2
    # Error is (noisily) decreasing in contributions.
    assert median_err[-1] == min(median_err)
