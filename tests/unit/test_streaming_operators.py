"""Unit tests: stream operators, watermark generation, windows assigners."""

import pytest

from repro.streaming import (
    Element,
    FilterOperator,
    FlatMapOperator,
    KeyByOperator,
    MapOperator,
    ReduceOperator,
    SessionWindows,
    SlidingWindows,
    TimestampAssigner,
    TumblingWindows,
    Watermark,
    WatermarkGenerator,
    Window,
)
from repro.util.errors import ConfigError, StreamError


def _el(value, ts=0.0, key=None):
    return Element(value=value, timestamp=ts, key=key)


class TestBasicOperators:
    def test_map(self):
        op = MapOperator("m", lambda v: v * 2)
        out = op.handle(_el(3))
        assert [o.value for o in out] == [6]
        assert op.processed == 1
        assert op.emitted == 1

    def test_map_preserves_timestamp_and_key(self):
        op = MapOperator("m", str)
        out = op.handle(_el(1, ts=9.0, key="k"))
        assert out[0].timestamp == 9.0
        assert out[0].key == "k"

    def test_filter(self):
        op = FilterOperator("f", lambda v: v % 2 == 0)
        assert op.handle(_el(2)) == [_el(2)]
        assert op.handle(_el(3)) == []

    def test_flat_map(self):
        op = FlatMapOperator("fm", lambda v: range(v))
        out = op.handle(_el(3, ts=1.0))
        assert [o.value for o in out] == [0, 1, 2]
        assert all(o.timestamp == 1.0 for o in out)

    def test_key_by(self):
        op = KeyByOperator("k", lambda v: v["user"])
        out = op.handle(_el({"user": "u1"}))
        assert out[0].key == "u1"

    def test_reduce_requires_key(self):
        op = ReduceOperator("r", lambda a, b: a + b)
        with pytest.raises(StreamError):
            op.handle(_el(1))

    def test_reduce_accumulates_per_key(self):
        op = ReduceOperator("r", lambda a, b: a + b)
        assert op.handle(_el(1, key="a"))[0].value == 1
        assert op.handle(_el(2, key="a"))[0].value == 3
        assert op.handle(_el(10, key="b"))[0].value == 10

    def test_reduce_snapshot_restore(self):
        op = ReduceOperator("r", lambda a, b: a + b)
        op.handle(_el(5, key="a"))
        snap = op.snapshot()
        op.handle(_el(5, key="a"))
        op.restore(snap)
        assert op.handle(_el(1, key="a"))[0].value == 6

    def test_timestamp_assigner(self):
        op = TimestampAssigner("ts", lambda v: v["t"])
        out = op.handle(_el({"t": 42.0}, ts=0.0))
        assert out[0].timestamp == 42.0

    def test_watermark_passthrough_on_stateless(self):
        op = MapOperator("m", lambda v: v)
        assert op.handle(Watermark(5.0)) == [Watermark(5.0)]


class TestWatermarkGenerator:
    def test_emits_behind_max_timestamp(self):
        gen = WatermarkGenerator("wm", max_lateness=2.0)
        out = gen.handle(_el(1, ts=10.0))
        wms = [o for o in out if isinstance(o, Watermark)]
        assert wms == [Watermark(8.0)]

    def test_watermarks_monotone(self):
        gen = WatermarkGenerator("wm", max_lateness=0.0)
        gen.handle(_el(1, ts=10.0))
        out = gen.handle(_el(1, ts=5.0))  # late element
        assert not any(isinstance(o, Watermark) for o in out)

    def test_emit_every(self):
        gen = WatermarkGenerator("wm", max_lateness=0.0, emit_every=3)
        outs = [gen.handle(_el(1, ts=float(i))) for i in range(1, 4)]
        assert not any(isinstance(o, Watermark) for o in outs[0])
        assert not any(isinstance(o, Watermark) for o in outs[1])
        assert any(isinstance(o, Watermark) for o in outs[2])

    def test_swallows_upstream_watermarks(self):
        gen = WatermarkGenerator("wm", max_lateness=1.0)
        assert gen.handle(Watermark(99.0)) == []

    def test_flush_emits_final_watermark(self):
        gen = WatermarkGenerator("wm", max_lateness=1.0)
        gen.handle(_el(1, ts=1.0))
        assert gen.flush() == [Watermark(float("inf"))]

    def test_flush_empty_stream(self):
        assert WatermarkGenerator("wm", 1.0).flush() == []


class TestWindowAssigners:
    def test_tumbling_assigns_single_window(self):
        assigner = TumblingWindows(10.0)
        assert assigner.assign(25.0) == [Window(20.0, 30.0)]

    def test_tumbling_boundary_goes_to_next(self):
        assigner = TumblingWindows(10.0)
        assert assigner.assign(20.0) == [Window(20.0, 30.0)]

    def test_tumbling_offset(self):
        assigner = TumblingWindows(10.0, offset=3.0)
        assert assigner.assign(12.0) == [Window(3.0, 13.0)]

    def test_sliding_assigns_overlapping(self):
        assigner = SlidingWindows(size=10.0, slide=5.0)
        windows = assigner.assign(12.0)
        assert windows == [Window(5.0, 15.0), Window(10.0, 20.0)]
        assert all(w.contains(12.0) for w in windows)

    def test_sliding_rejects_gaps(self):
        with pytest.raises(ConfigError):
            SlidingWindows(size=5.0, slide=10.0)

    def test_session_is_merging(self):
        assigner = SessionWindows(gap=5.0)
        assert assigner.merging
        assert assigner.assign(10.0) == [Window(10.0, 15.0)]

    def test_window_merge(self):
        assert Window(0, 10).merged(Window(5, 15)) == Window(0, 15)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigError):
            Window(5.0, 5.0)
