"""Incremental computation over partial results (paper Section 4.1).

"Incrementally computing a small amount of new data based on partial
results in advance can get a quick determination, while the crowding new
data and new analysis criteria may render the results invalid."

These accumulators update in O(1) per element and can be *invalidated*
by a criteria change, at which point they must be rebuilt from history —
exactly the trade-off experiment T2 measures against batch recomputation.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

from ..util.errors import ConfigError

__all__ = ["RunningStats", "DecayedCounter", "IncrementalTopK",
           "IncrementalQuery"]


class RunningStats:
    """Welford's online mean/variance/min/max."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self.count if self.count else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    def merge(self, other: "RunningStats") -> None:
        """Chan's parallel merge — keeps distributed partials combinable."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta ** 2 * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class DecayedCounter:
    """Exponentially time-decayed count — recency-weighted popularity.

    ``count(now) = sum_i exp(-(now - t_i) / tau)``, maintained lazily.
    """

    def __init__(self, tau: float) -> None:
        if tau <= 0:
            raise ConfigError("decay constant tau must be positive")
        self.tau = tau
        self._value = 0.0
        self._last = 0.0

    def add(self, now: float, weight: float = 1.0) -> None:
        self._decay_to(now)
        self._value += weight

    def value(self, now: float) -> float:
        self._decay_to(now)
        return self._value

    def _decay_to(self, now: float) -> None:
        if now < self._last:
            raise ConfigError("time moved backwards in DecayedCounter")
        if now > self._last:
            self._value *= math.exp(-(now - self._last) / self.tau)
            self._last = now


class IncrementalTopK:
    """Top-k most frequent keys maintained incrementally (exact counts)."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigError("k must be >= 1")
        self.k = k
        self._counts: dict[str, float] = {}

    def add(self, key: str, weight: float = 1.0) -> None:
        self._counts[key] = self._counts.get(key, 0.0) + weight

    def top(self) -> list[tuple[str, float]]:
        # Sort by count desc, then key asc for determinism.
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[: self.k]

    def count(self, key: str) -> float:
        return self._counts.get(key, 0.0)

    def __len__(self) -> int:
        return len(self._counts)


class IncrementalQuery:
    """A query answered from an incrementally maintained partial result.

    Wraps an accumulator with the invalidation semantics the paper warns
    about: ``update`` folds one new element in O(1); changing the query
    ``criteria`` invalidates the partial result, forcing ``rebuild``
    over retained history.  Counters expose how often each path ran so
    experiment T2 can price them.
    """

    def __init__(self, criteria: Callable[[dict], bool],
                 value_fn: Callable[[dict], float]) -> None:
        self.criteria = criteria
        self.value_fn = value_fn
        self.stats = RunningStats()
        self.updates = 0
        self.rebuilds = 0
        self.rebuild_cost = 0  # elements rescanned by rebuilds

    def update(self, element: dict) -> None:
        """O(1) incremental fold of one new element."""
        self.updates += 1
        if self.criteria(element):
            self.stats.add(self.value_fn(element))

    def answer(self) -> float:
        """Current (possibly slightly stale upstream) aggregate."""
        return self.stats.mean

    def change_criteria(self, criteria: Callable[[dict], bool],
                        history: Iterable[dict]) -> None:
        """New analysis criteria invalidate the partial; rebuild from
        history (the expensive path)."""
        self.criteria = criteria
        self.stats = RunningStats()
        self.rebuilds += 1
        for element in history:
            self.rebuild_cost += 1
            if self.criteria(element):
                self.stats.add(self.value_fn(element))
