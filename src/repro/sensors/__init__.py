"""Sensing substrate: geo utilities, GPS/IMU models, Kalman fusion,
spatial index, POI database."""

from .crowdmodel import BoxModel, Contribution, CrowdModel
from .fusion import KalmanFusion
from .geo import (
    EARTH_RADIUS_M,
    LocalProjection,
    geohash_decode,
    geohash_encode,
    haversine_m,
)
from .models import GpsFix, GpsSensor, ImuReading, ImuSensor
from .poi import Poi, PoiDatabase
from .spatial import QuadTree, SpatialPoint

__all__ = [
    "BoxModel",
    "Contribution",
    "CrowdModel",
    "KalmanFusion",
    "EARTH_RADIUS_M",
    "LocalProjection",
    "geohash_decode",
    "geohash_encode",
    "haversine_m",
    "GpsFix",
    "GpsSensor",
    "ImuReading",
    "ImuSensor",
    "Poi",
    "PoiDatabase",
    "QuadTree",
    "SpatialPoint",
]
