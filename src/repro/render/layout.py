"""Label layout: from naive floating bubbles to decluttered placement.

MacIntyre's complaint the paper quotes — "a cluster of bobbling tags,
not aligned with anything ... not better than simply displaying the data
on a 2D map" — becomes measurable here:

- :func:`naive_layout` — every label centred on its anchor, overlaps and
  all (the AR-browser baseline).
- :func:`declutter_layout` — greedy priority placement over candidate
  offsets with overlap rejection and optional drop, producing leader-
  line offsets when a label moves off its anchor.
- :func:`clutter_metrics` — overlap ratio, dropped/overlapping counts,
  mean leader length: the quantities experiments F7/A1 report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import RenderError
from ..util.geometry import Rect

__all__ = ["PlacedLabel", "naive_layout", "declutter_layout",
           "clutter_metrics", "LayoutMetrics"]


@dataclass(frozen=True)
class PlacedLabel:
    """A label's final screen placement."""

    annotation_id: str
    rect: Rect
    anchor_x: float
    anchor_y: float
    priority: float
    dropped: bool = False

    @property
    def leader_length(self) -> float:
        """Distance from anchor to the label centre."""
        cx, cy = self.rect.center
        return ((cx - self.anchor_x) ** 2 + (cy - self.anchor_y) ** 2) ** 0.5


@dataclass(frozen=True)
class LayoutMetrics:
    """Quality summary of one laid-out frame."""

    total: int
    placed: int
    dropped: int
    overlapping: int
    overlap_ratio: float  # total pairwise overlap area / screen area
    mean_leader_px: float
    offscreen: int

    @property
    def useful_ratio(self) -> float:
        """Labels placed on-screen without overlap, over all labels."""
        if self.total == 0:
            return 1.0
        good = self.placed - self.overlapping - self.offscreen
        return max(0.0, good) / self.total


def _label_rect(x: float, y: float, width: float, height: float) -> Rect:
    return Rect(x - width / 2.0, y - height / 2.0, width, height)


def naive_layout(items: list[tuple[str, float, float, float, float, float]],
                 ) -> list[PlacedLabel]:
    """Floating bubbles: centre each label on its anchor, no collision
    handling.

    ``items`` rows: (annotation_id, anchor_x, anchor_y, width, height,
    priority).
    """
    return [PlacedLabel(annotation_id=aid,
                        rect=_label_rect(ax, ay, w, h),
                        anchor_x=ax, anchor_y=ay, priority=priority)
            for aid, ax, ay, w, h, priority in items]


_CANDIDATE_OFFSETS = [
    (0.0, 0.0), (0.0, -1.2), (1.2, 0.0), (0.0, 1.2), (-1.2, 0.0),
    (1.0, -1.0), (-1.0, -1.0), (1.0, 1.0), (-1.0, 1.0),
    (0.0, -2.4), (2.4, 0.0), (0.0, 2.4), (-2.4, 0.0),
]


def declutter_layout(items: list[tuple[str, float, float, float, float, float]],
                     screen: Rect, max_labels: int | None = None,
                     allow_drop: bool = True) -> list[PlacedLabel]:
    """Greedy priority placement with candidate offsets.

    Labels are processed in priority order; each tries offsets scaled by
    its own extent until it finds a position inside the screen that does
    not overlap an already-placed label.  Exhausting the candidates
    drops the label (when allowed) or accepts the overlapping anchor
    position.
    """
    ordered = sorted(items, key=lambda row: (-row[5], row[0]))
    if max_labels is not None:
        if max_labels < 0:
            raise RenderError("max_labels must be non-negative")
        overflow = ordered[max_labels:]
        ordered = ordered[:max_labels]
    else:
        overflow = []
    placed: list[PlacedLabel] = []
    occupied: list[Rect] = []
    for aid, ax, ay, w, h, priority in ordered:
        chosen: Rect | None = None
        for ox, oy in _CANDIDATE_OFFSETS:
            rect = _label_rect(ax + ox * w, ay + oy * h, w, h)
            inside = (rect.x >= screen.x and rect.y >= screen.y
                      and rect.x2 <= screen.x2 and rect.y2 <= screen.y2)
            if not inside:
                continue
            if any(rect.intersects(other) for other in occupied):
                continue
            chosen = rect
            break
        if chosen is None:
            if allow_drop:
                placed.append(PlacedLabel(aid, _label_rect(ax, ay, w, h),
                                          ax, ay, priority, dropped=True))
                continue
            chosen = _label_rect(ax, ay, w, h)
        occupied.append(chosen)
        placed.append(PlacedLabel(aid, chosen, ax, ay, priority))
    for aid, ax, ay, w, h, priority in overflow:
        placed.append(PlacedLabel(aid, _label_rect(ax, ay, w, h),
                                  ax, ay, priority, dropped=True))
    return placed


def clutter_metrics(labels: list[PlacedLabel], screen: Rect) -> LayoutMetrics:
    """Measure a laid-out frame."""
    active = [label for label in labels if not label.dropped]
    overlap_area = 0.0
    overlapping_ids: set[str] = set()
    for i, a in enumerate(active):
        for b in active[i + 1:]:
            inter = a.rect.intersection(b.rect)
            if inter is not None:
                overlap_area += inter.area
                overlapping_ids.add(a.annotation_id)
                overlapping_ids.add(b.annotation_id)
    offscreen = sum(
        1 for label in active
        if not (label.rect.x >= screen.x and label.rect.y >= screen.y
                and label.rect.x2 <= screen.x2 and label.rect.y2 <= screen.y2))
    leaders = [label.leader_length for label in active]
    return LayoutMetrics(
        total=len(labels),
        placed=len(active),
        dropped=len(labels) - len(active),
        overlapping=len(overlapping_ids),
        overlap_ratio=overlap_area / screen.area if screen.area > 0 else 0.0,
        mean_leader_px=(sum(leaders) / len(leaders)) if leaders else 0.0,
        offscreen=offscreen,
    )
