"""Mobility re-identification attack.

"It has been proven that users' identities and their movement patterns
have a close correlation [Gonzalez et al. 2008] ... an attacker can
infer private information from their location information."

The attack (after de Montjoye et al.'s uniqueness-of-mobility result):
traces are discretized into (cell, time-bucket) points; the adversary
knows ``p`` random points of a target and matches them against the
trace database.  A target is re-identified when exactly one candidate
trace is consistent with all known points.  Defences plug in as trace
transforms (cloaking coarsens cells, planar Laplace moves points), and
experiment T5 sweeps p against them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import PrivacyError

__all__ = ["discretize_trace", "TraceDatabase", "AttackResult"]


def discretize_trace(xs: np.ndarray, ys: np.ndarray, ts: np.ndarray,
                     cell_m: float, bucket_s: float) -> set[tuple[int, int, int]]:
    """Spatio-temporal points of a trace: (cell_x, cell_y, time_bucket)."""
    if cell_m <= 0 or bucket_s <= 0:
        raise PrivacyError("cell size and time bucket must be positive")
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    ts = np.asarray(ts, dtype=float)
    if not len(xs) == len(ys) == len(ts):
        raise PrivacyError("trace arrays must have equal length")
    return {(int(np.floor(x / cell_m)), int(np.floor(y / cell_m)),
             int(np.floor(t / bucket_s)))
            for x, y, t in zip(xs, ys, ts)}


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one attack sweep."""

    targets: int
    unique: int  # re-identified exactly
    ambiguous: int  # >1 consistent candidate
    missed: int  # 0 consistent candidates (defence distorted the points)

    @property
    def reidentification_rate(self) -> float:
        return self.unique / self.targets if self.targets else 0.0


class TraceDatabase:
    """Discretized traces indexed for the matching attack."""

    def __init__(self, cell_m: float, bucket_s: float) -> None:
        self.cell_m = cell_m
        self.bucket_s = bucket_s
        self._traces: dict[str, set[tuple[int, int, int]]] = {}

    def add_trace(self, user: str, xs: np.ndarray, ys: np.ndarray,
                  ts: np.ndarray) -> None:
        if user in self._traces:
            raise PrivacyError(f"duplicate user {user!r}")
        self._traces[user] = discretize_trace(xs, ys, ts, self.cell_m,
                                              self.bucket_s)

    def __len__(self) -> int:
        return len(self._traces)

    def users(self) -> list[str]:
        return sorted(self._traces)

    def points_of(self, user: str) -> set[tuple[int, int, int]]:
        try:
            return self._traces[user]
        except KeyError:
            raise PrivacyError(f"unknown user {user!r}") from None

    def candidates(self, known_points: set[tuple[int, int, int]],
                   ) -> list[str]:
        """Users whose trace contains every known point."""
        return [user for user, points in sorted(self._traces.items())
                if known_points <= points]

    def attack(self, rng: np.random.Generator, known_points: int,
               observed: "TraceDatabase | None" = None,
               targets: list[str] | None = None) -> AttackResult:
        """Sample ``known_points`` true points per target and match them
        against this (possibly defended) database.

        ``observed`` supplies the adversary's side knowledge — the TRUE
        undefended traces the points are drawn from; defaults to self
        (no defence).  The database being attacked is ``self``.
        """
        observed = observed if observed is not None else self
        if targets is None:
            targets = observed.users()
        unique = ambiguous = missed = 0
        for user in targets:
            true_points = sorted(observed.points_of(user))
            if not true_points:
                missed += 1
                continue
            k = min(known_points, len(true_points))
            idx = rng.choice(len(true_points), size=k, replace=False)
            known = {true_points[i] for i in idx}
            matches = self.candidates(known)
            if matches == [user]:
                unique += 1
            elif matches:
                ambiguous += 1
            else:
                missed += 1
        return AttackResult(targets=len(targets), unique=unique,
                            ambiguous=ambiguous, missed=missed)
