"""Stream elements: data records, watermarks and checkpoint barriers.

Everything flowing through the dataflow graph is either an
:class:`Element` (a value with an event timestamp and optional key), a
:class:`Watermark` asserting "no element with timestamp <= t will arrive
after me", or a :class:`CheckpointBarrier` — the in-band marker the
checkpoint coordinator injects at sources (Chandy–Lamport style, see
:mod:`repro.streaming.barrier`).  Watermarks drive event-time windowing
— the mechanism that lets the timeliness experiments (T2, A3) trade
latency against completeness exactly the way the paper's Section 4.1
discusses.  Barriers never reach operator ``process`` paths: the
executor consumes them at the channel layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Element", "Watermark", "CheckpointBarrier", "StreamItem"]


@dataclass(frozen=True, slots=True)
class Element:
    """A data record in flight."""

    value: Any
    timestamp: float
    key: Any = None

    def with_value(self, value: Any) -> "Element":
        return Element(value=value, timestamp=self.timestamp, key=self.key)

    def with_key(self, key: Any) -> "Element":
        return Element(value=self.value, timestamp=self.timestamp, key=key)


@dataclass(frozen=True, slots=True)
class Watermark:
    """Event-time progress marker."""

    timestamp: float


@dataclass(frozen=True, slots=True)
class CheckpointBarrier:
    """In-band checkpoint marker, numbered by the coordinator.

    A subtask that has seen barrier *n* on **all** of its input channels
    snapshots its state and forwards the barrier; everything before the
    barrier is inside checkpoint *n*, everything after will be replayed
    from the sources on a restore to *n*.
    """

    checkpoint_id: int


StreamItem = Element | Watermark | CheckpointBarrier
