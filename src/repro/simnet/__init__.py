"""Discrete-event simulation kernel, network model, topology, failures."""

from .builders import region_topology
from .failures import FailureEvent, FailureInjector, RegionFailureEvent
from .kernel import ScheduledEvent, Simulator
from .network import LINK_PRESETS, Link, LinkSpec
from .queueing import ProcessingQueue, QueuedTask
from .topology import NodeSpec, Topology

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "LinkSpec",
    "Link",
    "LINK_PRESETS",
    "NodeSpec",
    "Topology",
    "region_topology",
    "ProcessingQueue",
    "QueuedTask",
    "FailureEvent",
    "RegionFailureEvent",
    "FailureInjector",
]
