"""Geo-distributed control plane: region health, session handoff,
whole-region failover.

The streaming engine, event log, and simnet each gained a region
dimension; this package is the controller that ties them together:

- :class:`RegionController` — a deadline failure detector over
  *regions* (reusing the engine's
  :class:`~repro.streaming.coordinator.HeartbeatMonitor`), fed from
  live simnet topology observations.
- :class:`GeoDeployment` — supervises a parallel job placed across
  regions, pumps the cross-region log mirror, performs stop-with-
  savepoint session handoff when users cross zone boundaries, and
  fails the whole deployment over to a surviving region from the
  replicated log plus the newest finalized checkpoint the replica
  covers — reporting exactly how much replay that saved versus a
  cold restart.
"""

from .controller import RegionController
from .deployment import (
    FailoverReport,
    GeoDeployment,
    GeoReport,
    HandoffReport,
)

__all__ = [
    "RegionController",
    "GeoDeployment",
    "GeoReport",
    "FailoverReport",
    "HandoffReport",
]
