"""Unit tests: cross-region topic mirroring — prefix property, bounded
observable lag, idempotent re-pump, epoch fencing, crash resync."""

import pytest

from repro.eventlog import (
    LogCluster,
    Producer,
    Record,
    ReplicatedTopic,
    TopicConfig,
)
from repro.util.errors import ConfigError, LogError


def _clusters(partitions: int = 2):
    source = LogCluster(num_brokers=1)
    source.create_topic(TopicConfig(name="t", partitions=partitions))
    dest = LogCluster(num_brokers=1)
    return source, dest


def _produce(source: LogCluster, n: int, partitions: int = 2) -> None:
    for i in range(n):
        source.append("t", i % partitions, Record(value=i, key=str(i)))


def _contents(cluster: LogCluster, partition: int) -> list:
    end = cluster.end_offset("t", partition)
    return [r.value for _o, r in cluster.read("t", partition, 0, end or 1)]


class TestMirrorBasics:
    def test_replica_is_prefix_with_aligned_offsets(self):
        source, dest = _clusters()
        mirror = ReplicatedTopic(source, dest, "t")
        _produce(source, 10)
        applied = mirror.pump()
        assert applied == 10
        for p in (0, 1):
            assert _contents(dest, p) == _contents(source, p)
            assert dest.end_offset("t", p) == source.end_offset("t", p)

    def test_creates_destination_topic(self):
        source, dest = _clusters(partitions=3)
        ReplicatedTopic(source, dest, "t")
        assert dest.partition_count("t") == 3

    def test_partition_count_mismatch_rejected(self):
        source, dest = _clusters(partitions=3)
        dest.create_topic(TopicConfig(name="t", partitions=2))
        with pytest.raises(ConfigError):
            ReplicatedTopic(source, dest, "t")


class TestLag:
    def test_lag_observable_before_pump(self):
        source, dest = _clusters()
        mirror = ReplicatedTopic(source, dest, "t")
        _produce(source, 6)
        assert mirror.lag() == {0: 3, 1: 3}
        assert mirror.max_observed_lag() == 3
        mirror.pump()
        assert mirror.max_observed_lag() == 0

    def test_pump_respects_lag_bound(self):
        source, dest = _clusters()
        mirror = ReplicatedTopic(source, dest, "t", max_lag=2)
        _produce(source, 10)
        mirror.pump()
        assert all(lag <= 2 for lag in mirror.lag().values())
        # already within bound: nothing more moves
        assert mirror.pump() == 0

    def test_incremental_pump_cadence(self):
        source, dest = _clusters()
        mirror = ReplicatedTopic(source, dest, "t")
        for round_ in range(4):
            _produce(source, 4)
            mirror.pump()
            assert mirror.max_observed_lag() == 0
        assert mirror.mirrored == 16


class TestExactlyOnce:
    def test_resync_after_crash_never_duplicates(self):
        source, dest = _clusters()
        mirror = ReplicatedTopic(source, dest, "t")
        _produce(source, 8)
        mirror.pump()
        # a restarted mirror derives its positions from the replica
        restarted = ReplicatedTopic(source, dest, "t")
        _produce(source, 4)
        restarted.pump()
        for p in (0, 1):
            assert _contents(dest, p) == _contents(source, p)

    def test_explicit_resync(self):
        source, dest = _clusters()
        mirror = ReplicatedTopic(source, dest, "t")
        _produce(source, 8)
        mirror.pump()
        mirror.resync()
        assert mirror.pump() == 0  # nothing to re-apply
        for p in (0, 1):
            assert _contents(dest, p) == _contents(source, p)


class TestFencing:
    def test_fenced_mirror_cannot_pump(self):
        source, dest = _clusters()
        mirror = ReplicatedTopic(source, dest, "t")
        _produce(source, 4)
        mirror.fence()
        with pytest.raises(LogError):
            mirror.pump()

    def test_zombie_incarnation_fenced_by_broker(self):
        """A newer epoch on the same producer id locks out appends from
        the older one at the broker itself."""
        source, dest = _clusters(partitions=1)
        zombie = ReplicatedTopic(source, dest, "t")
        _produce(source, 2, partitions=1)
        zombie.pump()
        # failover: a controller-side bump writes at a newer epoch
        dest.append_idempotent("t", 0, Record(value="fence-marker"),
                               producer_id=zombie.producer_id,
                               sequence=0, epoch=zombie.epoch + 1)
        _produce(source, 2, partitions=1)
        with pytest.raises(LogError, match="fenced"):
            zombie.pump()


class TestProducerInterop:
    def test_mirror_of_producer_traffic(self):
        source, dest = _clusters()
        producer = Producer(source)
        for i in range(20):
            producer.send("t", {"v": i}, key=f"k{i % 5}",
                          timestamp=float(i))
        mirror = ReplicatedTopic(source, dest, "t")
        mirror.pump()
        for p in (0, 1):
            assert dest.end_offset("t", p) == source.end_offset("t", p)
