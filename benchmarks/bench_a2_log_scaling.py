"""Ablation A2: event-log partitioning and consumer-group scaling.

The "velocity" leg of the 3Vs needs horizontal scaling: more partitions
let more consumers drain a topic in parallel.  We measure drain work per
member as the group grows, replication write amplification, and failover
data safety — the substrate guarantees every experiment above relies on.
"""

import time

from repro.eventlog import ConsumerGroup, LogCluster, Producer, TopicConfig
from repro.util.rng import make_rng

from tableprint import print_table

RECORDS = 20_000
PARTITIONS = 8
GROUP_SIZES = [1, 2, 4, 8]


def _loaded_cluster(replication=2):
    cluster = LogCluster(num_brokers=3)
    cluster.create_topic(TopicConfig("events", partitions=PARTITIONS,
                                     replication=replication))
    producer = Producer(cluster)
    rng = make_rng(72)
    for i in range(RECORDS):
        producer.send("events", {"i": i, "v": float(rng.random())},
                      key=f"k{i % 997}")
    return cluster


def run_experiment():
    rows = []
    cluster = _loaded_cluster()
    for size in GROUP_SIZES:
        group = ConsumerGroup(cluster, "events", f"g{size}")
        for m in range(size):
            group.join(f"m{m}")
        start = time.perf_counter()
        consumed_per_member = []
        for m in range(size):
            consumer = group.member(f"m{m}")
            count = 0
            while True:
                batch = consumer.poll(max_records=2048)
                if not batch:
                    break
                count += len(batch)
            consumed_per_member.append(count)
        elapsed = time.perf_counter() - start
        total = sum(consumed_per_member)
        rows.append([size, total, max(consumed_per_member),
                     min(consumed_per_member),
                     total / elapsed / 1e6])
    return rows


def run_failover():
    cluster = _loaded_cluster(replication=2)
    end_before = sum(cluster.end_offset("events", p)
                     for p in range(PARTITIONS))
    cluster.fail_broker(0)
    end_after = sum(cluster.end_offset("events", p)
                    for p in range(PARTITIONS))
    return end_before, end_after


def bench_a2_group_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A2a ablation: consumer-group scaling over 8 partitions",
        ["members", "records drained", "max/member", "min/member",
         "Mrec/s"],
        rows,
        note="work per member shrinks ~1/n up to the partition count")
    for row in rows:
        assert row[1] == RECORDS  # nothing lost, nothing duplicated
    max_per_member = [r[2] for r in rows]
    # Per-member load drops as the group grows (range assignment).
    assert max_per_member[-1] < max_per_member[0] / (len(GROUP_SIZES) - 1)


def bench_a2_failover_safety(benchmark):
    before, after = benchmark.pedantic(run_failover, rounds=1,
                                       iterations=1)
    print_table(
        "A2b ablation: broker failover data safety (acks=all, rf=2)",
        ["records before failure", "records after failover"],
        [[before, after]],
        note="synchronous ISR replication: leader loss costs zero "
             "acknowledged records")
    assert before == RECORDS
    assert after == before


def bench_a2_produce_throughput(benchmark):
    """Micro-benchmark: keyed produce path."""
    cluster = LogCluster(3)
    cluster.create_topic(TopicConfig("t", partitions=8, replication=2))
    producer = Producer(cluster)
    counter = iter(range(10**9))

    def produce_batch():
        for _ in range(1000):
            i = next(counter)
            producer.send("t", {"i": i}, key=f"k{i % 97}")

    benchmark(produce_batch)
