"""Tourism scenario (paper Section 3.2, Figure 7).

A tourist explores a city: the guide compares the naive floating-bubble
overlay against the registered/decluttered one in the dense old town,
tracks trending POIs from the visit stream, exports the overlay as ARML,
and runs an Ingress-style portal game over simulated tourist movement.

Run:  python examples/tourism_city_guide.py
"""

from repro import ARBigDataPipeline, PipelineConfig
from repro.apps import TourismApp
from repro.context import serialize_arml
from repro.core import DEFAULT_INTRINSICS
from repro.datagen import MobilityConfig, generate_population
from repro.render.occlusion import BoxOccluder, OcclusionWorld
from repro.sensors import Poi, PoiDatabase
from repro.util.geometry import Rect
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(27)
    city = Rect(0, 0, 3000, 3000)
    pois = PoiDatabase(city)
    categories = ["landmark", "museum", "cafe", "park", "theatre"]
    for i in range(140):
        # Old town cluster + scattered suburbs.
        if i < 70:
            x = 1500.0 + float(rng.normal(0, 160.0))
            y = 1500.0 + float(rng.normal(0, 160.0))
        else:
            x = float(rng.uniform(0, 3000))
            y = float(rng.uniform(0, 3000))
        pois.add(Poi(poi_id=f"poi-{i:03d}", name=f"Sight {i}",
                     category=categories[i % 5],
                     x=min(max(x, 0.0), 3000.0),
                     y=min(max(y, 0.0), 3000.0),
                     popularity=float(140 - i)))
    buildings = OcclusionWorld([BoxOccluder(
        "cathedral", (1530.0, 1480.0, 0.0), (1580.0, 1530.0, 40.0))])
    app = TourismApp(ARBigDataPipeline(PipelineConfig(seed=27)), pois,
                     buildings=buildings)

    # -- the bubble problem, measured ------------------------------------
    comparison = app.compare_overlays(1500, 1500, (1600, 1500),
                                      DEFAULT_INTRINSICS, radius_m=600,
                                      limit=80)
    print(f"old-town view with {comparison.labels} POIs:")
    print(f"  floating bubbles: useful {comparison.naive_useful_ratio:.0%},"
          f" overlap {comparison.naive_overlap_ratio:.2f}")
    print(f"  registered+decluttered: useful "
          f"{comparison.smart_useful_ratio:.0%}, overlap "
          f"{comparison.smart_overlap_ratio:.2f}")

    # -- crowd trends drive recommendations ------------------------------
    for k in range(200):
        poi = pois.most_popular(k=20)[k % 20]
        app.record_visit(f"tourist-{k % 40}", poi.poi_id,
                         timestamp=k * 30.0)
    print("\ntrending now:", app.trending(now=6000.0, k=3))

    # -- overlay content travels as ARML ----------------------------------
    nearby = app.nearby_content(1500, 1500, radius_m=300, limit=5)
    bound = app.pipeline.interpret_and_publish([
        {"tag": "poi-info", "subject": a.annotation_id.split(":")[1],
         "value": a.text, "priority": a.priority} for a in nearby])
    arml = serialize_arml(app.pipeline.interpreter.to_arml(bound))
    print(f"\nARML export of {bound.bound} features "
          f"({len(arml)} bytes):\n  {arml[:120]}...")

    # -- gamification ------------------------------------------------------
    tourists = generate_population(
        25, rng, MobilityConfig(steps=200, area_m=3000.0))
    stats = app.run_game(tourists, portal_count=20, encounter_m=40.0,
                         detour_m=200.0)
    print(f"\nportal game: {stats.visits_plain} organic encounters vs "
          f"{stats.visits_gamified} with portals "
          f"(engagement uplift {stats.engagement_uplift:.0%})")

    # -- sign translation assist ------------------------------------------
    phrasebook = {"出口": "Exit", "美術館": "Art museum", "駅": "Station"}
    signs = [("s1", "出口"), ("s2", "美術館"), ("s3", "薬局")]
    for row in app.translate_signs(signs, phrasebook):
        text = row["translated"] or f"?? ({row['native']})"
        print(f"sign {row['sign']}: {text}")


if __name__ == "__main__":
    main()
