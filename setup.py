"""Legacy setup shim: the environment has no `wheel` package, so PEP 660
editable installs fail; `pip install -e .` falls back to this."""

from setuptools import setup

setup()
