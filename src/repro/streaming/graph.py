"""Dataflow job graph and its fluent builder.

A :class:`JobGraph` is a DAG: named sources feed chains of operators
into named sinks.  Edges carry an optional *side* tag ("left"/"right")
for two-input joins.  Validation catches cycles, dangling operators and
mis-wired joins at build time rather than mid-run.

The fluent :class:`JobBuilder` mirrors the Flink DataStream API::

    builder = JobBuilder("traffic")
    (builder.source("gps", gps_elements)
            .key_by(lambda v: v["car"])
            .window(TumblingWindows(10.0), "mean", value_fn=lambda v: v["speed"])
            .sink("speeds"))
    job = builder.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import networkx as nx

from ..util.errors import JobGraphError
from .element import Element
from .errors import DLQ_SINK, ErrorPolicy
from .join import IntervalJoinOperator
from .operators import (
    FilterOperator,
    FlatMapOperator,
    KeyByOperator,
    MapOperator,
    Operator,
    ReduceOperator,
    TimestampAssigner,
    WatermarkGenerator,
)
from .window_operator import WindowAggregateOperator
from .windows import WindowAssigner

__all__ = ["JobGraph", "JobBuilder", "SourceSpec"]


@dataclass
class SourceSpec:
    """A named stream input.

    ``elements`` is any iterable of :class:`Element`; it may also be a
    zero-arg callable returning one, so jobs can be re-run.

    Parallel plans read a source as a set of **splits** (the rescaling
    unit — analogous to topic partitions; see
    :mod:`repro.streaming.execution`):

    - ``splits`` pins the split count independently of parallelism, so
      a checkpoint taken at parallelism N restores at parallelism M
      (both must divide the same split set).  Defaults to the compiled
      source parallelism.
    - ``split_factory(split, num_splits)`` produces one split's
      elements directly — how eventlog-backed sources map partitions to
      splits (see :func:`~repro.streaming.connectors.parallel_log_source`).
    - ``partitioner(element, num_splits)`` assigns a materialized
      element to a split.  Default: key-aligned hashing for keyed
      elements (same key, same split — preserving per-key order, the
      parallel-equivalence contract), round-robin for unkeyed ones.
    """

    name: str
    elements: Iterable[Element] | Callable[[], Iterable[Element]] | None
    splits: int | None = None
    split_factory: Callable[[int, int], Iterable[Element]] | None = None
    partitioner: Callable[[Element, int], int] | None = None

    def iterate(self) -> Iterable[Element]:
        src = self.elements
        if src is None:
            if self.split_factory is None:
                raise JobGraphError(
                    f"source {self.name!r} has neither elements nor a "
                    "split_factory")
            n = self.splits or 1
            out: list[Element] = []
            for s in range(n):
                out.extend(self.split_factory(s, n))
            return out
        return src() if callable(src) else src


@dataclass
class JobGraph:
    """Validated dataflow DAG ready for execution."""

    name: str
    sources: dict[str, SourceSpec]
    operators: dict[str, Operator]
    #: edges as (upstream, downstream, side); side is None or left/right
    edges: list[tuple[str, str, str | None]]
    sinks: set[str] = field(default_factory=set)
    #: optional region pins declared on the job itself (merged under any
    #: compile-time placement; node -> region tag)
    regions: dict[str, str] = field(default_factory=dict)
    #: (up, down) pairs *declared* as allowed to cross regions.  The
    #: compiler rejects any placement that makes an undeclared edge span
    #: two regions: a WAN hop in a dataflow is an explicit design
    #: decision, never an inference (see CONTRIBUTING.md).
    cross_region_edges: set[tuple[str, str]] = field(default_factory=set)
    #: per-operator error policies (operator name ->
    #: :class:`~repro.streaming.errors.ErrorPolicy`).  Undeclared
    #: operators default to FAIL — exactly the pre-policy behaviour.
    error_policies: dict[str, "ErrorPolicy"] = field(default_factory=dict)

    @property
    def needs_dead_letters(self) -> bool:
        """Whether any declared policy can route records to the DLQ
        (executors add the reserved DLQ sink only then)."""
        return any(p.can_dead_letter for p in self.error_policies.values())

    def validate(self) -> None:
        graph = nx.DiGraph()
        for node in set(self.sources) | set(self.operators) | set(self.sinks):
            graph.add_node(node)
        for up, down, _side in self.edges:
            for node in (up, down):
                known = (node in self.sources or node in self.operators
                         or node in self.sinks)
                if not known:
                    raise JobGraphError(f"edge references unknown node {node!r}")
            graph.add_edge(up, down)
        if not nx.is_directed_acyclic_graph(graph):
            raise JobGraphError(f"job {self.name!r} contains a cycle")
        if not self.sources:
            raise JobGraphError(f"job {self.name!r} has no sources")
        for up, down, _side in self.edges:
            if up in self.sinks:
                raise JobGraphError(
                    f"sink {up!r} has an outgoing edge to {down!r}; sinks "
                    "are terminal"
                )
        for sink in self.sinks:
            if sink in self.sources or sink in self.operators:
                raise JobGraphError(
                    f"sink {sink!r} collides with an existing "
                    f"{'source' if sink in self.sources else 'operator'}"
                )
        for name, op in self.operators.items():
            in_edges = [(u, s) for u, d, s in self.edges if d == name]
            if not in_edges:
                raise JobGraphError(f"operator {name!r} has no input")
            if isinstance(op, IntervalJoinOperator):
                sides = sorted(s for _u, s in in_edges)
                if sides != ["left", "right"]:
                    raise JobGraphError(
                        f"join {name!r} needs exactly one 'left' and one "
                        f"'right' input, got {sides}"
                    )
            elif any(s is not None for _u, s in in_edges):
                raise JobGraphError(
                    f"operator {name!r} is single-input but has a tagged edge"
                )
        for sink in self.sinks:
            if not any(d == sink for _u, d, _s in self.edges):
                raise JobGraphError(f"sink {sink!r} has no input")
        known = set(self.sources) | set(self.operators) | set(self.sinks)
        for node in self.regions:
            if node not in known:
                raise JobGraphError(
                    f"region pin references unknown node {node!r}")
        edge_pairs = {(u, d) for u, d, _s in self.edges}
        for up, down in self.cross_region_edges:
            if (up, down) not in edge_pairs:
                raise JobGraphError(
                    f"declared cross-region edge {up!r} -> {down!r} does "
                    "not exist in the job graph")
        if DLQ_SINK in self.sinks:
            raise JobGraphError(
                f"sink name {DLQ_SINK!r} is reserved for the dead-letter "
                "queue")
        for name, policy in self.error_policies.items():
            if name not in self.operators:
                raise JobGraphError(
                    f"error policy declared for unknown operator {name!r}")
            if not isinstance(policy, ErrorPolicy):
                raise JobGraphError(
                    f"error policy for {name!r} must be an ErrorPolicy, "
                    f"got {type(policy).__name__}")
        self._topo_order = [n for n in nx.topological_sort(graph)]

    def topological_operators(self) -> list[str]:
        """Operator names in execution order (sources/sinks excluded)."""
        return [n for n in self._topo_order if n in self.operators]

    def downstream(self, node: str) -> list[tuple[str, str | None]]:
        """(downstream node, side-tag-at-downstream) pairs for ``node``."""
        return [(d, s) for u, d, s in self.edges if u == node]


class _StreamHandle:
    """Fluent cursor over the node most recently added to the builder."""

    def __init__(self, builder: "JobBuilder", node: str) -> None:
        self._builder = builder
        self._node = node

    # -- transforms ------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], name: str | None = None,
            vectorized: bool = False):
        return self._attach(MapOperator(self._builder._auto(name, "map"), fn,
                                        vectorized=vectorized))

    def filter(self, predicate: Callable[[Any], bool], name: str | None = None,
               vectorized: bool = False):
        return self._attach(FilterOperator(
            self._builder._auto(name, "filter"), predicate,
            vectorized=vectorized))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]],
                 name: str | None = None):
        return self._attach(FlatMapOperator(
            self._builder._auto(name, "flat_map"), fn))

    def key_by(self, key_fn: Callable[[Any], Any], name: str | None = None,
               vectorized: bool = False):
        return self._attach(KeyByOperator(
            self._builder._auto(name, "key_by"), key_fn,
            vectorized=vectorized))

    def reduce(self, reduce_fn: Callable[[Any, Any], Any],
               name: str | None = None, vectorized: bool = False):
        return self._attach(ReduceOperator(
            self._builder._auto(name, "reduce"), reduce_fn,
            vectorized=vectorized))

    def assign_timestamps(self, ts_fn: Callable[[Any], float],
                          name: str | None = None):
        return self._attach(TimestampAssigner(
            self._builder._auto(name, "assign_ts"), ts_fn))

    def with_watermarks(self, max_lateness: float, emit_every: int = 1,
                        name: str | None = None):
        return self._attach(WatermarkGenerator(
            self._builder._auto(name, "watermarks"), max_lateness,
            emit_every))

    def window(self, assigner: WindowAssigner, aggregate: str = "count",
               allowed_lateness: float = 0.0,
               value_fn: Callable[[Any], Any] | None = None,
               emit_late: bool = False,
               name: str | None = None):
        return self._attach(WindowAggregateOperator(
            self._builder._auto(name, "window"), assigner, aggregate,
            allowed_lateness, value_fn, emit_late=emit_late))

    def join(self, other: "_StreamHandle", lower: float, upper: float,
             project: Callable[[Any, Any], Any] | None = None,
             name: str | None = None):
        op = IntervalJoinOperator(self._builder._auto(name, "join"),
                                  lower, upper, project)
        self._builder._add_operator(op)
        self._builder._add_edge(self._node, op.name, "left")
        self._builder._add_edge(other._node, op.name, "right")
        return _StreamHandle(self._builder, op.name)

    def apply(self, operator: Operator):
        """Attach a custom operator instance."""
        return self._attach(operator)

    def in_region(self, region: str) -> "_StreamHandle":
        """Pin the current node to a region (fluent form of
        :meth:`JobBuilder.pin_region`)."""
        self._builder.pin_region(self._node, region)
        return self

    def sink(self, name: str) -> "JobBuilder":
        self._builder._add_sink(name)
        self._builder._add_edge(self._node, name, None)
        return self._builder

    # -- plumbing --------------------------------------------------------

    def _attach(self, operator: Operator) -> "_StreamHandle":
        self._builder._add_operator(operator)
        self._builder._add_edge(self._node, operator.name, None)
        return _StreamHandle(self._builder, operator.name)

    def on_error(self, policy: ErrorPolicy) -> "_StreamHandle":
        """Declare the error policy of the operator at the cursor."""
        self._builder.on_error(self._node, policy)
        return self

    @property
    def node(self) -> str:
        return self._node


class JobBuilder:
    """Accumulates sources/operators/edges and builds a validated graph."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._sources: dict[str, SourceSpec] = {}
        self._operators: dict[str, Operator] = {}
        self._edges: list[tuple[str, str, str | None]] = []
        self._sinks: set[str] = set()
        self._counters: dict[str, int] = {}
        self._regions: dict[str, str] = {}
        self._cross_region: set[tuple[str, str]] = set()
        self._error_policies: dict[str, ErrorPolicy] = {}

    def _auto(self, name: str | None, kind: str) -> str:
        if name is not None:
            return name
        i = self._counters.get(kind, 0)
        self._counters[kind] = i + 1
        return f"{kind}_{i}"

    def source(self, name: str,
               elements: Iterable[Element] | Callable[[], Iterable[Element]]
               | None = None,
               *, splits: int | None = None,
               split_factory: Callable[[int, int], Iterable[Element]]
               | None = None,
               partitioner: Callable[[Element, int], int] | None = None,
               ) -> _StreamHandle:
        if name in self._sources:
            raise JobGraphError(f"duplicate source {name!r}")
        if elements is None and split_factory is None:
            raise JobGraphError(
                f"source {name!r} needs elements or a split_factory")
        self._sources[name] = SourceSpec(name, elements, splits=splits,
                                         split_factory=split_factory,
                                         partitioner=partitioner)
        return _StreamHandle(self, name)

    def _add_operator(self, operator: Operator) -> None:
        if operator.name in self._operators or operator.name in self._sources:
            raise JobGraphError(f"duplicate node name {operator.name!r}")
        self._operators[operator.name] = operator

    def _add_edge(self, up: str, down: str, side: str | None) -> None:
        if (up, down, side) in self._edges:
            # A duplicate identical edge would double-deliver every
            # element on it — always a wiring bug, never intentional.
            raise JobGraphError(
                f"duplicate edge {up!r} -> {down!r}"
                + (f" (side {side!r})" if side else "")
            )
        self._edges.append((up, down, side))

    def _add_sink(self, name: str) -> None:
        if name == DLQ_SINK:
            raise JobGraphError(
                f"sink name {DLQ_SINK!r} is reserved for the "
                "dead-letter queue")
        if name in self._sources or name in self._operators:
            raise JobGraphError(
                f"sink name {name!r} collides with an existing "
                f"{'source' if name in self._sources else 'operator'}"
            )
        self._sinks.add(name)

    def pin_region(self, node: str, region: str) -> "JobBuilder":
        """Pin a named node to a region."""
        self._regions[node] = region
        return self

    def on_error(self, operator: str, policy: ErrorPolicy) -> "JobBuilder":
        """Declare an operator's error policy (FAIL / SKIP / RETRY(n) /
        DEAD_LETTER from :mod:`repro.streaming.errors`).  Validated at
        :meth:`build`; undeclared operators keep the FAIL default."""
        if not isinstance(policy, ErrorPolicy):
            raise JobGraphError(
                f"on_error({operator!r}) needs an ErrorPolicy, got "
                f"{type(policy).__name__}")
        self._error_policies[operator] = policy
        return self

    def declare_cross_region(self, up: str, down: str) -> "JobBuilder":
        """Declare that the edge ``up -> down`` is allowed to cross
        regions.  Cross-region edges are never inferred: an undeclared
        edge that a placement would stretch across regions fails
        compilation."""
        self._cross_region.add((up, down))
        return self

    def build(self) -> JobGraph:
        job = JobGraph(name=self.name, sources=dict(self._sources),
                       operators=dict(self._operators),
                       edges=list(self._edges), sinks=set(self._sinks),
                       regions=dict(self._regions),
                       cross_region_edges=set(self._cross_region),
                       error_policies=dict(self._error_policies))
        job.validate()
        return job
