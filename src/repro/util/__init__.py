"""Shared infrastructure: clock, ids, RNG plumbing, metrics, pub/sub."""

from .clock import MICROS, MILLIS, SimClock
from .events import EventBus
from .geometry import Rect, clamp
from .ids import IdFactory, monotonic_ids
from .metrics import Counter, Gauge, MetricsRegistry, Summary
from .retry import CircuitBreaker, Retrier, RetryPolicy, retry_call
from .rng import RngRegistry, make_rng, spawn

__all__ = [
    "SimClock",
    "MILLIS",
    "MICROS",
    "EventBus",
    "Rect",
    "clamp",
    "IdFactory",
    "monotonic_ids",
    "Counter",
    "Gauge",
    "Summary",
    "MetricsRegistry",
    "RngRegistry",
    "make_rng",
    "spawn",
    "RetryPolicy",
    "Retrier",
    "CircuitBreaker",
    "retry_call",
]
