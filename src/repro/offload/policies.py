"""Offloading policies.

Four policies span the design space the Section-4.1 experiment sweeps:

- :class:`AlwaysLocal` — the baseline the paper says cannot keep up.
- :class:`AlwaysRemote` — everything to a fixed tier (CloudRiDAR's
  simple mode); wins on big frames, loses on thin networks.
- :class:`GreedyLatency` — pick the globally fastest plan.
- :class:`DeadlineEnergyAware` — among plans meeting the deadline pick
  the lowest energy; if none meets it, degrade to the fastest (the AR
  session continues at reduced rate rather than dying).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import OffloadError
from .executor import OffloadPlanner, PlanOutcome
from .tasks import Pipeline

__all__ = ["OffloadPolicy", "AlwaysLocal", "AlwaysRemote", "GreedyLatency",
           "DeadlineEnergyAware", "PolicyDecision"]


@dataclass(frozen=True)
class PolicyDecision:
    """What a policy chose and why."""

    outcome: PlanOutcome
    met_deadline: bool | None
    considered: int


class OffloadPolicy:
    """Interface: choose a plan for one frame."""

    name = "abstract"

    def decide(self, planner: OffloadPlanner,
               pipeline: Pipeline) -> PolicyDecision:
        raise NotImplementedError


class AlwaysLocal(OffloadPolicy):
    name = "always-local"

    def decide(self, planner: OffloadPlanner,
               pipeline: Pipeline) -> PolicyDecision:
        outcome = planner.price(pipeline, max(pipeline.valid_cuts()),
                                planner.device.name)
        return PolicyDecision(outcome=outcome, met_deadline=None,
                              considered=1)


class AlwaysRemote(OffloadPolicy):
    """Fixed tier, fixed cut (defaults to the earliest valid cut: ship
    the frame, run everything remote)."""

    def __init__(self, tier: str, cut: int | None = None) -> None:
        self.tier = tier
        self.cut = cut
        self.name = f"always-{tier}"

    def decide(self, planner: OffloadPlanner,
               pipeline: Pipeline) -> PolicyDecision:
        cuts = pipeline.valid_cuts()
        cut = self.cut if self.cut is not None else min(cuts)
        outcome = planner.price(pipeline, cut, self.tier)
        return PolicyDecision(outcome=outcome, met_deadline=None,
                              considered=1)


class GreedyLatency(OffloadPolicy):
    name = "greedy-latency"

    def __init__(self, tiers: list[str] | None = None) -> None:
        self.tiers = tiers

    def decide(self, planner: OffloadPlanner,
               pipeline: Pipeline) -> PolicyDecision:
        outcomes = planner.plan(pipeline, self.tiers)
        if not outcomes:
            raise OffloadError("no feasible plan")
        best = min(outcomes, key=lambda o: (o.latency_s, o.energy_j))
        return PolicyDecision(outcome=best, met_deadline=None,
                              considered=len(outcomes))


class DeadlineEnergyAware(OffloadPolicy):
    """Least energy among deadline-meeting plans; fastest otherwise."""

    def __init__(self, deadline_s: float,
                 tiers: list[str] | None = None) -> None:
        if deadline_s <= 0:
            raise OffloadError("deadline must be positive")
        self.deadline_s = deadline_s
        self.tiers = tiers
        self.name = f"deadline-{deadline_s * 1000:.0f}ms"

    def decide(self, planner: OffloadPlanner,
               pipeline: Pipeline) -> PolicyDecision:
        outcomes = planner.plan(pipeline, self.tiers)
        if not outcomes:
            raise OffloadError("no feasible plan")
        meeting = [o for o in outcomes if o.latency_s <= self.deadline_s]
        if meeting:
            best = min(meeting, key=lambda o: (o.energy_j, o.latency_s))
            return PolicyDecision(outcome=best, met_deadline=True,
                                  considered=len(outcomes))
        best = min(outcomes, key=lambda o: (o.latency_s, o.energy_j))
        return PolicyDecision(outcome=best, met_deadline=False,
                              considered=len(outcomes))
