"""Planar fiducial markers (ArUco-style, simplified).

A marker is an (n x n) grid of black/white cells inside a black border.
Generation embeds the marker id as row-wise bits with a parity column;
identification rectifies the marker region through an estimated
homography and decodes the bits, checking parity — so detection failure
and mis-identification are measurable, not assumed away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import VisionError
from .geometry import apply_homography

__all__ = ["MarkerSpec", "generate_marker", "decode_marker"]


@dataclass(frozen=True)
class MarkerSpec:
    """Marker family parameters."""

    grid: int = 4  # data cells per side (payload bits = grid*(grid-1))
    cell_px: int = 16
    border_cells: int = 1

    @property
    def payload_bits(self) -> int:
        return self.grid * (self.grid - 1)

    @property
    def max_id(self) -> int:
        return (1 << self.payload_bits) - 1

    @property
    def side_px(self) -> int:
        return (self.grid + 2 * self.border_cells) * self.cell_px


def _id_to_bits(marker_id: int, spec: MarkerSpec) -> np.ndarray:
    """Bits as a grid x grid array; last column is per-row *odd* parity.

    Odd parity guarantees every row contains at least one white cell, so
    even marker id 0 has contrast against the black border.
    """
    bits = np.zeros((spec.grid, spec.grid), dtype=bool)
    payload = [(marker_id >> i) & 1 for i in range(spec.payload_bits)]
    k = 0
    for row in range(spec.grid):
        for col in range(spec.grid - 1):
            bits[row, col] = bool(payload[k])
            k += 1
        bits[row, spec.grid - 1] = (
            int(bits[row, :spec.grid - 1].sum()) % 2 == 0)
    return bits


def _bits_to_id(bits: np.ndarray, spec: MarkerSpec) -> int | None:
    """Decode; None when any row parity fails."""
    marker_id = 0
    k = 0
    for row in range(spec.grid):
        if int(bits[row, :spec.grid].sum()) % 2 != 1:  # odd parity
            return None
        for col in range(spec.grid - 1):
            if bits[row, col]:
                marker_id |= 1 << k
            k += 1
    return marker_id


def generate_marker(marker_id: int, spec: MarkerSpec = MarkerSpec(),
                    ) -> np.ndarray:
    """Render the marker texture (float image in [0, 1])."""
    if not 0 <= marker_id <= spec.max_id:
        raise VisionError(
            f"marker id {marker_id} out of range [0, {spec.max_id}]")
    bits = _id_to_bits(marker_id, spec)
    side = spec.grid + 2 * spec.border_cells
    cells = np.zeros((side, side), dtype=float)  # black border
    for row in range(spec.grid):
        for col in range(spec.grid):
            cells[row + spec.border_cells, col + spec.border_cells] = (
                1.0 if bits[row, col] else 0.0)
    return np.kron(cells, np.ones((spec.cell_px, spec.cell_px)))


def decode_marker(image: np.ndarray, homography: np.ndarray,
                  spec: MarkerSpec = MarkerSpec()) -> int | None:
    """Decode a marker from ``image`` given the homography mapping marker
    texture pixel coords to image pixel coords.

    Samples each cell centre (3x3 average) in the image, thresholds at
    the mid-intensity between sampled border (black) and brightest cell,
    and checks parity.  Returns the id or None.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise VisionError("expected grayscale image")
    h, w = image.shape

    def sample_at(texture_xy: np.ndarray) -> np.ndarray:
        pixels = apply_homography(homography, texture_xy)
        values = []
        for px, py in pixels:
            xi, yi = int(round(px)), int(round(py))
            if not (1 <= xi < w - 1 and 1 <= yi < h - 1):
                values.append(np.nan)
                continue
            values.append(float(image[yi - 1:yi + 2, xi - 1:xi + 2].mean()))
        return np.array(values)

    # Cell centres in texture coordinates.
    centres = []
    for row in range(spec.grid):
        for col in range(spec.grid):
            cx = (col + spec.border_cells + 0.5) * spec.cell_px
            cy = (row + spec.border_cells + 0.5) * spec.cell_px
            centres.append((cx, cy))
    cell_values = sample_at(np.array(centres))
    if np.isnan(cell_values).any():
        return None
    # Border samples give the black reference.
    border_pts = [(spec.cell_px * 0.5, spec.cell_px * 0.5),
                  (spec.side_px - spec.cell_px * 0.5, spec.cell_px * 0.5),
                  (spec.cell_px * 0.5, spec.side_px - spec.cell_px * 0.5),
                  (spec.side_px - spec.cell_px * 0.5,
                   spec.side_px - spec.cell_px * 0.5)]
    border_values = sample_at(np.array(border_pts))
    if np.isnan(border_values).any():
        return None
    black = float(border_values.mean())
    white = float(cell_values.max())
    if white - black < 0.1:
        return None  # no contrast; not a marker view
    threshold = (black + white) / 2.0
    bits = (cell_values > threshold).reshape(spec.grid, spec.grid)
    return _bits_to_id(bits, spec)
