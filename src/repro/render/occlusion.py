"""Occlusion against world geometry, and "X-ray vision".

Occluders are axis-aligned world boxes (buildings, shelves, vehicles).
An anchor is occluded when the camera->anchor segment intersects a box.
Three policies mirror the paper:

- ``hide``  — occluded content is dropped (physically consistent),
- ``xray``  — occluded content is shown in a distinct see-through style
  (the "look through walls and shelves" capability of Sections 2.1/3.1/3.4),
- ``ignore`` — the naive AR-browser behaviour that draws everything on
  top, which the visualization experiments penalize.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import RenderError

__all__ = ["BoxOccluder", "OcclusionWorld", "Visibility"]


@dataclass(frozen=True)
class BoxOccluder:
    """Axis-aligned box: min/max corners in world coordinates."""

    name: str
    minimum: tuple[float, float, float]
    maximum: tuple[float, float, float]

    def __post_init__(self) -> None:
        if any(lo >= hi for lo, hi in zip(self.minimum, self.maximum)):
            raise RenderError(f"box {self.name!r} has empty extent")

    def segment_intersects(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Slab test for segment a->b against the box."""
        a = np.asarray(a, dtype=float)
        direction = np.asarray(b, dtype=float) - a
        t_min, t_max = 0.0, 1.0
        for axis in range(3):
            lo, hi = self.minimum[axis], self.maximum[axis]
            d = direction[axis]
            if abs(d) < 1e-12:
                if not lo <= a[axis] <= hi:
                    return False
                continue
            t1 = (lo - a[axis]) / d
            t2 = (hi - a[axis]) / d
            if t1 > t2:
                t1, t2 = t2, t1
            t_min = max(t_min, t1)
            t_max = min(t_max, t2)
            if t_min > t_max:
                return False
        return True

    def contains(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=float)
        return bool(np.all(point >= self.minimum)
                    and np.all(point <= self.maximum))


@dataclass(frozen=True)
class Visibility:
    """Occlusion verdict for one anchor."""

    visible: bool
    occluder: str | None = None


class OcclusionWorld:
    """A set of box occluders with segment queries."""

    def __init__(self, occluders: list[BoxOccluder] | None = None) -> None:
        self.occluders = list(occluders or [])

    def add(self, occluder: BoxOccluder) -> None:
        self.occluders.append(occluder)

    def check(self, camera_center: np.ndarray,
              anchor: np.ndarray) -> Visibility:
        """Is the anchor visible from the camera?

        An anchor *inside* a box is attributed to that box (looking for
        an item behind a shelf face counts as occluded by the shelf);
        the segment test is shortened a hair so an anchor sitting on a
        box face doesn't self-occlude.
        """
        camera_center = np.asarray(camera_center, dtype=float)
        anchor = np.asarray(anchor, dtype=float)
        direction = anchor - camera_center
        shortened = camera_center + direction * 0.999
        for box in self.occluders:
            if box.contains(anchor):
                if box.segment_intersects(camera_center, shortened):
                    return Visibility(visible=False, occluder=box.name)
                continue
            if box.segment_intersects(camera_center, shortened):
                return Visibility(visible=False, occluder=box.name)
        return Visibility(visible=True)
