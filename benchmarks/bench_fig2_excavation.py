"""Experiment F2 (Figure 2: excavation progress vs design overlay).

The figure overlays excavation progress on the real site "to be compared
against designs".  We simulate a voxel site excavated day by day,
regenerate the design-vs-as-built diff overlay each day, and measure:
progress, deviation cells needing action, overlay size, and compositing
quality from a field worker's viewpoint.
"""

import numpy as np

from repro.apps import PublicServicesApp
from repro.core import ARBigDataPipeline, DEFAULT_INTRINSICS, PipelineConfig
from repro.datagen import ExcavationSite
from repro.render.compositor import Compositor
from repro.util.rng import make_rng
from repro.vision.camera import look_at

from tableprint import print_table

DAYS = 16


def run_experiment():
    rng = make_rng(22)
    app = PublicServicesApp(ARBigDataPipeline(PipelineConfig(seed=22)))
    site = ExcavationSite(rng, nx=40, ny=30)
    compositor = Compositor(DEFAULT_INTRINSICS, declutter=True)
    pose = look_at(eye=[40.0, -30.0, 25.0], target=[40.0, 30.0, -5.0],
                   up=np.array([0.0, 0.0, 1.0]))
    rows = []
    for day in range(DAYS):
        scene = app.excavation_overlay(site, tolerance_m=0.3)
        frame = compositor.compose(scene, pose)
        rows.append([day, site.progress, site.deviation_cells(),
                     len(scene), frame.drawn,
                     frame.layout.overlap_ratio])
        site.excavate_day(fraction=0.25, noise_m=0.08)
    return rows


def bench_fig2_excavation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "F2  Figure 2: excavation progress vs design overlay",
        ["day", "progress", "deviation cells", "overlay annotations",
         "drawn", "overlap ratio"],
        rows,
        note="daily scans shrink the diff; the overlay tracks exactly "
             "the cells a worker must act on")
    progress = [r[1] for r in rows]
    deviations = [r[2] for r in rows]
    # Work progresses monotonically and deviations shrink with it.
    assert progress == sorted(progress)
    assert progress[-1] > 0.98
    assert deviations[-1] < deviations[0] * 0.05
    # Overlay size tracks deviation cells exactly.
    assert all(r[2] == r[3] for r in rows)
