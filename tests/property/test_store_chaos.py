"""Tiered-store chaos suite: exactly-once serving state under crashes.

The property (satellite #4, proving the tentpole's epoch protocol): a
job streaming a topic into the tiered store through a
:class:`~repro.store.StoreSink` is killed mid-**stage**, mid-**apply**
(the commit listener's install step), during **compaction**, inside an
operator, and inside the coordinator's commit — at parallelism 1, 2 and
4 — and after recovery the hot-store contents (every key, every
version, every timestamp) and the analytical tier's row count are
**bit-identical** to the fault-free run.  A lost delta would drop rows;
a double-applied delta would duplicate versions; either breaks the
canonical comparison.

TTL expiry runs on the SimClock only, so two identical runs expire
identically — the determinism half of the satellite.

Marked ``store``: run via ``make store`` / ``tools/check_store.py``,
excluded from tier 1.  Two fixed-schedule smokes in
``tests/unit/test_store_sink.py`` keep the seam covered in tier 1.
"""

import pytest

from repro.chaos import (
    SITE_COORDINATOR,
    SITE_OPERATOR,
    SITE_STORE,
    STORE_PHASES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.eventlog import LogCluster, Producer, TopicConfig
from repro.store import TieredStore, canonical_contents, serve_topic
from repro.util.clock import SimClock
from repro.util.rng import make_rng

pytestmark = pytest.mark.store

N_RECORDS = 300
KEYS = 7


def _cluster(topic: str, seed: int = 17) -> LogCluster:
    cluster = LogCluster(num_brokers=1)
    cluster.create_topic(TopicConfig(name=topic, partitions=2))
    producer = Producer(cluster)
    rng = make_rng(seed)
    for i in range(N_RECORDS):
        producer.send(topic, {"m": float(rng.uniform(0, 100)),
                              "u": f"u-{i % KEYS}", "i": i},
                      key=f"u-{i % KEYS}", timestamp=float(i))
    return cluster


def _run(plan: FaultPlan | None, parallelism: int,
         store: TieredStore | None = None):
    """One serving run over a fresh replica of the reference topic.

    ``key_by`` re-keys through a real operator so SITE_OPERATOR crashes
    have somewhere to land (a bare source->sink job has no operators).
    """
    injector = FaultInjector(plan) if plan is not None else None
    result, report = serve_topic(
        _cluster("store.chaos"), "store.chaos", store=store,
        key_fn=lambda v: v["u"], metric_fn=lambda v: v["m"],
        parallelism=parallelism, source_batch=32, interval_cycles=1,
        injector=injector)
    return result, report, injector


def _state(store: TieredStore):
    return canonical_contents(store), store.analytical.rows


class TestCrashSweep:
    """Fixed fault matrix x parallelism: state identical to fault-free."""

    SPECS = [
        FaultSpec("store_crash", SITE_STORE, at=1, target="stage"),
        FaultSpec("store_crash", SITE_STORE, at=2, target="stage"),
        FaultSpec("store_crash", SITE_STORE, at=1, target="apply"),
        FaultSpec("store_crash", SITE_STORE, at=2, target="apply"),
        FaultSpec("store_crash", SITE_STORE, at=0, target="compact"),
        FaultSpec("store_crash", SITE_STORE, at=2, target="compact"),
        FaultSpec("coordinator_crash", SITE_COORDINATOR, at=1),
        FaultSpec("operator_crash", SITE_OPERATOR, at=40,
                  target="key_by"),
    ]

    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_state_survives_every_crash_site(self, parallelism):
        golden_store, golden_report, _ = _run(None, parallelism)
        golden = _state(golden_store)
        assert golden_report.checkpoints >= 3
        fired_total = 0
        for spec in self.SPECS:
            store, report, injector = _run(FaultPlan(specs=(spec,)),
                                           parallelism)
            fired = report.crashes + report.coordinator_crashes
            fired_total += min(fired, 1)
            assert _state(store) == golden, \
                f"divergence under {spec} at parallelism {parallelism}"
        # the sweep must actually exercise the sites (shorter cycles at
        # higher parallelism can leave late occurrence indices unmet,
        # but most of the matrix has to land)
        assert fired_total >= len(self.SPECS) - 2

    def test_double_fault_apply_then_coordinator(self):
        golden, _, _ = _run(None, 2)
        plan = FaultPlan(specs=(
            FaultSpec("store_crash", SITE_STORE, at=1, target="apply"),
            FaultSpec("coordinator_crash", SITE_COORDINATOR, at=2),
        ))
        store, report, _ = _run(plan, 2)
        assert report.crashes >= 1 and report.coordinator_crashes >= 1
        assert _state(store) == _state(golden)


class TestRandomSweep:
    """Seeded random schedules mixing store crashes with the classics."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_schedules_converge(self, seed):
        golden, _, _ = _run(None, 2)
        plan = FaultPlan.random(
            seed, horizon=6, operators=("key_by",),
            crashes=1, torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0,
            coordinator_crashes=1, store_crashes=2,
            name=f"store-random-{seed}")
        store, report, _ = _run(plan, 2)
        assert _state(store) == _state(golden)


class TestTTLDeterminism:
    """SimClock-driven expiry: byte-identical across identical runs."""

    def _expired_run(self, plan):
        clock = SimClock()
        store = TieredStore(num_shards=4, clock=clock, ttl_s=100.0,
                            metric_fn=lambda v: v["m"])
        store, _report, _ = _run(plan, 2, store=store)
        clock.advance(250.0)  # events span ts 0..299: expire ts < 150
        store.expire()
        return store

    def test_expiry_is_deterministic_and_crash_independent(self):
        baseline = self._expired_run(None)
        again = self._expired_run(None)
        assert _state(baseline) == _state(again)
        # TTL filtering really happened: every surviving version is live
        for _kr, versions in canonical_contents(baseline):
            for ts, _value in versions:
                assert ts >= 150.0
        assert 0 < baseline.hot.rows < N_RECORDS
        # a crashed-and-recovered run expires to the same state
        plan = FaultPlan(specs=(
            FaultSpec("store_crash", SITE_STORE, at=1, target="apply"),))
        crashed = self._expired_run(plan)
        assert _state(crashed) == _state(baseline)
        # the analytical tier is the unexpiring full log
        assert baseline.analytical.rows == N_RECORDS
