"""Checkpoint coordination: barriers in, manifests out, regions back.

The :class:`CheckpointCoordinator` drives Chandy–Lamport snapshots of a
running :class:`~repro.streaming.execution.ParallelExecutor` *without*
waiting for quiescence: it injects numbered
:class:`~repro.streaming.element.CheckpointBarrier` markers at every
source subtask, collects per-subtask state fragments as barriers pass
(see :mod:`repro.streaming.barrier` for the alignment rules), collects
two-phase-commit acks from transactional sinks
(:mod:`repro.streaming.txn_sink`), and — once every subtask, sink and
open spill has reported — **finalizes** the checkpoint: the assembled
:class:`~repro.streaming.execution.ParallelCheckpoint` and its manifest
are committed to the :class:`CheckpointStore` atomically, sinks commit
phase 2, listeners (event-log mirrors) are notified, and superseded
checkpoints are pruned.

A coordinator crash (:class:`~repro.util.errors.CoordinatorDown`,
injectable) abandons the in-progress checkpoint; the 2PC abort demotes
sink pre-commits back into the open transaction, so nothing is lost and
nothing becomes visible early.  A rebuilt coordinator resumes from the
last *finalized* manifest — pending manifests are recovery debris, never
restore targets.

The module also houses the two failure-handling companions:

- :class:`HeartbeatMonitor` — a deadline failure detector over
  :class:`~repro.util.clock.SimClock`.  Subtasks beat once per macro
  cycle; a subtask that misses ``timeout_s`` of beats is declared dead
  even if it never raised (the *fail-silent* case the
  ``subtask_stall`` chaos fault exercises).
- :func:`failover_regions` — partitions the physical plan into regions
  that must restart together: the weakly connected components of the
  execution graph, cut at *replayable* edges (edges whose downstream can
  re-read its input from a durable log rather than from the upstream
  operator).  Regional recovery restores only the dead subtask's region
  and replays strictly less input than a whole-job restart.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable

from ..util.clock import SimClock
from ..util.errors import (
    CheckpointError,
    CheckpointIntegrityError,
    CoordinatorDown,
)
from .execution import ExecutionGraph, ParallelCheckpoint

__all__ = [
    "CheckpointManifest",
    "CheckpointStore",
    "CheckpointCoordinator",
    "HeartbeatMonitor",
    "failover_regions",
    "failover_region_of",
]

PENDING = "pending"
FINALIZED = "finalized"
ABORTED = "aborted"


def _digest(obj: Any) -> str:
    """Content digest of a snapshot payload.

    Pickle gives a stable byte encoding for ordinary checkpoint state
    (dicts keep insertion order, so re-digesting the same object
    reproduces the bytes); state holding unpicklable objects (bound
    lambdas in exotic operator snapshots) falls back to ``repr``, which
    is equally stable within one process — the only scope where a
    digest is ever re-checked.
    """
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        payload = repr(obj).encode("utf-8", "replace")
    return hashlib.sha256(payload).hexdigest()


def _manifest_checksum(manifest: "CheckpointManifest") -> str:
    """Checksum over every manifest field except the checksum itself."""
    record = manifest.as_dict()
    record.pop("checksum", None)
    encoded = repr(sorted(record.items())).encode("utf-8", "replace")
    return hashlib.sha256(encoded).hexdigest()


@dataclass
class CheckpointManifest:
    """The durable record of one checkpoint attempt.

    Only a manifest whose status is ``finalized`` names a restorable
    checkpoint; a ``pending`` or ``aborted`` manifest is an attempt that
    never completed (crash debris) and is skipped by recovery.
    """

    checkpoint_id: int
    status: str = PENDING
    started_at: float = 0.0
    finalized_at: float | None = None
    #: source -> split -> position at barrier injection (the cut point)
    source_positions: dict[str, dict[int, int]] = field(default_factory=dict)
    acked_subtasks: list[str] = field(default_factory=list)
    acked_sinks: list[str] = field(default_factory=list)
    spilled_items: int = 0
    #: sha256 of the snapshot payload, recorded at finalize — restore
    #: re-derives it to detect bit-rot/truncation before trusting state
    payload_digest: str | None = None
    #: sha256 over the manifest's own fields (metadata self-check)
    checksum: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "checkpoint_id": self.checkpoint_id,
            "status": self.status,
            "started_at": self.started_at,
            "finalized_at": self.finalized_at,
            "source_positions": {s: dict(p)
                                 for s, p in self.source_positions.items()},
            "acked_subtasks": list(self.acked_subtasks),
            "acked_sinks": list(self.acked_sinks),
            "spilled_items": self.spilled_items,
            "payload_digest": self.payload_digest,
            "checksum": self.checksum,
        }


class CheckpointStore:
    """Manifest-backed checkpoint storage with pruning.

    ``finalize`` is the atomic commit point: the manifest flips to
    ``finalized`` and the snapshot becomes ``latest()`` in one step —
    there is no observable state where the snapshot exists without its
    manifest.  Superseded snapshots are pruned (their manifests stay, as
    aborted/finalized history), so storage holds one live checkpoint.

    **Retain watermark.**  Downstream consumers that apply committed
    epochs asynchronously (a serving-store sink, regional recovery) may
    still need to rewind to an old checkpoint.  They register here and
    report ``last_applied_epoch``; pruning never deletes a snapshot at
    or above the minimum of those watermarks, regardless of ``keep``.
    Before this, a fast checkpoint cadence could prune the very
    manifest a lagging consumer needed for replay, turning its next
    restore into data loss.
    """

    def __init__(self, keep: int = 1) -> None:
        if keep < 1:
            raise CheckpointError("store must keep at least one checkpoint")
        self.keep = keep
        self._snapshots: dict[int, ParallelCheckpoint] = {}
        self.manifests: dict[int, CheckpointManifest] = {}
        self.pruned = 0
        #: checkpoint ids that failed verification: never restore
        #: targets again, never counted against ``keep``
        self.quarantined: set[int] = set()
        #: verification failures detected (each id counted once)
        self.integrity_failures = 0
        #: consumer name -> last checkpoint epoch it fully applied
        self._consumers: dict[str, int] = {}

    # -- consumer watermarks --------------------------------------------------

    def register_consumer(self, name: str,
                          last_applied_epoch: int = 0) -> None:
        """A downstream consumer announces it may rewind to any
        checkpoint >= its last applied epoch (0 = retain everything)."""
        current = self._consumers.get(name)
        if current is None or last_applied_epoch > current:
            self._consumers[name] = int(last_applied_epoch)

    def unregister_consumer(self, name: str) -> None:
        self._consumers.pop(name, None)
        self._prune()

    def consumer_applied(self, name: str, checkpoint_id: int) -> None:
        """Advance a consumer's watermark (monotonic) and re-run
        pruning — an advancing consumer releases retained snapshots."""
        if name not in self._consumers:
            raise CheckpointError(f"unknown consumer {name!r}")
        if checkpoint_id > self._consumers[name]:
            self._consumers[name] = int(checkpoint_id)
            self._prune()

    def retain_watermark(self) -> int | None:
        """Oldest epoch any registered consumer may still rewind to,
        or ``None`` when no consumers are registered."""
        if not self._consumers:
            return None
        return min(self._consumers.values())

    def record(self, manifest: CheckpointManifest) -> None:
        """Register a pending manifest (checkpoint attempt started)."""
        self.manifests[manifest.checkpoint_id] = manifest

    def finalize(self, checkpoint: ParallelCheckpoint,
                 manifest: CheckpointManifest) -> None:
        if manifest.checkpoint_id != checkpoint.checkpoint_id:
            raise CheckpointError("manifest/checkpoint id mismatch")
        recorded = self.manifests.get(manifest.checkpoint_id)
        if manifest.status == ABORTED or (recorded is not None
                                          and recorded.status == ABORTED):
            # The 2PC abort already demoted the sinks' pre-commits;
            # committing the snapshot now would resurrect a transaction
            # everyone else rolled back.
            raise CheckpointError(
                f"checkpoint {manifest.checkpoint_id} was aborted and "
                "cannot be finalized")
        manifest.status = FINALIZED
        manifest.payload_digest = _digest(checkpoint)
        manifest.checksum = _manifest_checksum(manifest)
        self.manifests[manifest.checkpoint_id] = manifest
        self._snapshots[checkpoint.checkpoint_id] = checkpoint
        self._prune()

    def abort(self, checkpoint_id: int) -> None:
        manifest = self.manifests.get(checkpoint_id)
        if manifest is not None and manifest.status == PENDING:
            manifest.status = ABORTED

    # -- integrity -----------------------------------------------------------

    def verify(self, checkpoint_id: int) -> bool:
        """Does this retained checkpoint still match what was committed?

        Checks the manifest's self-checksum and re-derives the snapshot
        payload digest.  A checkpoint without both records (never
        finalized, pruned, or pre-integrity legacy data) fails closed.
        """
        manifest = self.manifests.get(checkpoint_id)
        snapshot = self._snapshots.get(checkpoint_id)
        if manifest is None or snapshot is None:
            return False
        if manifest.status != FINALIZED:
            return False
        if manifest.checksum != _manifest_checksum(manifest):
            return False
        return manifest.payload_digest == _digest(snapshot)

    def require(self, checkpoint_id: int) -> ParallelCheckpoint:
        """A specific snapshot, verified — or
        :class:`~repro.util.errors.CheckpointIntegrityError`."""
        if not self.verify(checkpoint_id):
            if checkpoint_id not in self.quarantined:
                self.quarantined.add(checkpoint_id)
                self.integrity_failures += 1
            raise CheckpointIntegrityError(
                f"checkpoint {checkpoint_id} failed verification")
        return self._snapshots[checkpoint_id]

    def corrupt(self, checkpoint_id: int, mode: str = "payload") -> None:
        """Chaos helper: silently damage a retained checkpoint.

        ``payload`` mangles the snapshot object (models bit-rot in the
        state blob); ``manifest`` overwrites the manifest checksum
        (models a torn metadata write).  Detection happens at restore,
        exactly like real corruption.
        """
        if checkpoint_id not in self._snapshots:
            raise CheckpointError(
                f"no retained snapshot for checkpoint {checkpoint_id}")
        if mode == "payload":
            self._snapshots[checkpoint_id] = (  # type: ignore[assignment]
                "\x00corrupt", self._snapshots[checkpoint_id])
        elif mode == "manifest":
            self.manifests[checkpoint_id].checksum = "0" * 64
        else:
            raise CheckpointError(f"unknown corruption mode {mode!r}")

    def latest(self) -> ParallelCheckpoint | None:
        """Newest retained checkpoint that passes verification.

        A corrupt newest checkpoint is quarantined (counted once) and
        recovery falls back to the next-newest verifiable snapshot —
        the reason ``keep >= 2`` matters on deployments that fear
        storage rot.  Returns ``None`` only when nothing verifies.
        """
        for cid in sorted(self._snapshots, reverse=True):
            if cid in self.quarantined:
                continue
            if self.verify(cid):
                return self._snapshots[cid]
            self.quarantined.add(cid)
            self.integrity_failures += 1
        return None

    def snapshot(self, checkpoint_id: int) -> ParallelCheckpoint | None:
        """A specific retained snapshot (None once pruned)."""
        return self._snapshots.get(checkpoint_id)

    def retained_ids(self) -> list[int]:
        return sorted(self._snapshots)

    def latest_manifest(self) -> CheckpointManifest | None:
        finalized = [m for m in self.manifests.values()
                     if m.status == FINALIZED]
        if not finalized:
            return None
        return max(finalized, key=lambda m: m.checkpoint_id)

    def next_checkpoint_id(self) -> int:
        """Ids keep increasing across coordinator incarnations: a
        rebuilt coordinator must never reuse an id a dead one claimed."""
        return max(self.manifests, default=0) + 1

    def _prune(self) -> None:
        watermark = self.retain_watermark()
        # Quarantined snapshots never count against ``keep``: pruning
        # must not let a corrupt newest checkpoint push out the healthy
        # fallback that recovery would need.
        healthy = [cid for cid in sorted(self._snapshots)
                   if cid not in self.quarantined]
        while len(healthy) > self.keep:
            victim = healthy[0]
            if watermark is not None and victim >= watermark:
                # A registered consumer may still rewind here; keep the
                # snapshot (and everything newer) until it catches up.
                break
            healthy.pop(0)
            del self._snapshots[victim]
            self.pruned += 1
        if healthy:
            # Quarantined debris older than the oldest healthy snapshot
            # can never be a restore target; reclaim it.
            for cid in [c for c in self._snapshots
                        if c in self.quarantined and c < healthy[0]]:
                del self._snapshots[cid]
                self.pruned += 1


class HeartbeatMonitor:
    """Deadline failure detector: who has not beaten lately?"""

    def __init__(self, clock: SimClock, timeout_s: float = 5.0) -> None:
        if timeout_s <= 0:
            raise CheckpointError("heartbeat timeout must be positive")
        self.clock = clock
        self.timeout_s = timeout_s
        self._last: dict[str, float] = {}

    def register(self, subtask: str) -> None:
        self._last.setdefault(subtask, self.clock.now)

    def beat(self, subtask: str) -> None:
        self._last[subtask] = self.clock.now

    def dead(self) -> list[str]:
        """Subtasks whose last beat is older than the timeout."""
        now = self.clock.now
        return sorted(s for s, t in self._last.items()
                      if now - t > self.timeout_s)

    def reset(self, subtask: str) -> None:
        """A recovered subtask starts a fresh deadline."""
        self._last[subtask] = self.clock.now

    def reset_all(self) -> None:
        """Whole-job restart: everyone gets a fresh deadline."""
        now = self.clock.now
        for subtask in self._last:
            self._last[subtask] = now


class _Pending:
    """Mutable assembly state for one in-progress checkpoint."""

    def __init__(self, checkpoint_id: int, started_at: float,
                 source_positions: dict[str, dict[int, int]],
                 expected_subtasks: set[tuple[str, int]],
                 expected_sinks: set[str]) -> None:
        self.checkpoint_id = checkpoint_id
        self.started_at = started_at
        self.source_positions = source_positions
        self.expected_subtasks = expected_subtasks
        self.acked: set[tuple[str, int]] = set()
        self.expected_sinks = expected_sinks
        self.sink_acked: set[str] = set()
        #: logical operator -> key group -> blob
        self.keyed: dict[str, dict[int, Any]] = {}
        #: logical operator -> subtask idx -> scalar snapshot
        self.scalar: dict[str, dict[int, Any]] = {}
        #: unaligned in-flight state: channel key -> spilled items
        self.in_flight: dict[tuple, list] = {}
        self.open_spills: set[tuple] = set()
        #: routing capture: values recorded at each channel's cut point
        self.channel_wm: dict[tuple, dict[tuple, float]] = {}
        self.aligned_wm: dict[tuple, float] = {}
        self.rr: dict[tuple[int, int], int] = {}
        #: shed-tier state captured at the cut (plans + counts), so the
        #: finalized checkpoint rewinds shed accounting with positions
        self.shed_state: dict[str, Any] = {}
        #: chaos data-fault counters at each subtask's cut (physical
        #: clone name -> records seen); restores rewind them so replay
        #: re-poisons the same records
        self.data_counts: dict[str, int] = {}

    @property
    def complete(self) -> bool:
        return (self.acked == self.expected_subtasks
                and self.sink_acked == self.expected_sinks
                and not self.open_spills)

    @property
    def spilled_items(self) -> int:
        return sum(len(v) for v in self.in_flight.values())


class CheckpointCoordinator:
    """Injects barriers, assembles snapshots, finalizes atomically.

    Attach to a :class:`~repro.streaming.execution.ParallelExecutor`
    built with ``transactional_sinks=True``; the executor then calls
    :meth:`on_cycle_start` / :meth:`on_cycle_end` from its run loop and
    reports barrier passage through the ``on_*`` callbacks.  One
    checkpoint is in progress at a time; ``interval_cycles`` paces
    triggers.
    """

    def __init__(self, executor: Any, *,
                 store: CheckpointStore | None = None,
                 clock: SimClock | None = None,
                 interval_cycles: int = 4,
                 cycle_seconds: float = 1.0,
                 heartbeat_timeout_s: float = 5.0,
                 injector: Any = None,
                 metrics: Any = None) -> None:
        if interval_cycles < 1:
            raise CheckpointError("interval_cycles must be >= 1")
        self.executor = executor
        self.store = store if store is not None else CheckpointStore()
        self.clock = clock if clock is not None else SimClock()
        self.interval_cycles = interval_cycles
        self.cycle_seconds = cycle_seconds
        self.injector = injector
        self.metrics = metrics
        self.monitor = HeartbeatMonitor(self.clock,
                                        timeout_s=heartbeat_timeout_s)
        #: commit listeners: f(checkpoint_id, sink_name, committed_elements)
        self.listeners: list[Callable[[int, str, list], Any]] = []
        self._pending: _Pending | None = None
        self._cycles_since_trigger = 0
        self.finalized = 0
        self.aborted = 0
        executor.attach_coordinator(self)
        for name in executor.graph.topo:
            for idx in range(executor.graph.nodes[name].parallelism):
                self.monitor.register(f"{name}[{idx}]")

    # -- pacing (driven by the executor's run loop) --------------------------

    def on_cycle_start(self, executor: Any) -> None:
        """Called once per macro cycle, after sources pulled.  Triggers
        a new checkpoint when due and none is in progress."""
        self._cycles_since_trigger += 1
        if (self._pending is None
                and self._cycles_since_trigger >= self.interval_cycles):
            self.trigger(executor)

    def on_cycle_end(self, executor: Any) -> None:
        """Advance simulated time, then try to finalize."""
        self.clock.advance(self.cycle_seconds)
        self.maybe_finalize()

    @property
    def in_progress(self) -> int | None:
        """Checkpoint id currently being assembled, or None.  The
        scaling supervisor waits this out before cutting a savepoint
        (one checkpoint in progress at a time is a coordinator
        invariant)."""
        return (self._pending.checkpoint_id
                if self._pending is not None else None)

    def heartbeat(self, subtask: str) -> None:
        self.monitor.beat(subtask)

    def dead_subtasks(self) -> list[str]:
        return self.monitor.dead()

    # -- trigger -------------------------------------------------------------

    def trigger(self, executor: Any | None = None) -> int:
        """Start checkpoint N: record the cut's source positions and
        inject barriers at every source subtask (finished and empty
        splits included — every channel must carry the marker)."""
        if self._pending is not None:
            raise CheckpointError(
                f"checkpoint {self._pending.checkpoint_id} still in "
                "progress")
        executor = executor if executor is not None else self.executor
        cid = self.store.next_checkpoint_id()
        positions = executor.source_positions_snapshot()
        expected = {(name, idx)
                    for name in executor.graph.topo
                    for idx in range(
                        executor.graph.nodes[name].parallelism)}
        self._pending = _Pending(
            checkpoint_id=cid, started_at=self.clock.now,
            source_positions=positions, expected_subtasks=expected,
            expected_sinks=set(executor.sinks))
        self._pending.shed_state = executor.shed_state_snapshot()
        self.store.record(CheckpointManifest(
            checkpoint_id=cid, started_at=self.clock.now,
            source_positions=positions))
        self._cycles_since_trigger = 0
        executor.inject_barriers(cid)
        if self.metrics is not None:
            self.metrics.counter("coordinator.triggered").inc()
        return cid

    # -- barrier-passage callbacks (from the executor) -----------------------

    def _pending_for(self, checkpoint_id: int) -> _Pending | None:
        if (self._pending is None
                or self._pending.checkpoint_id != checkpoint_id):
            return None  # ack for an abandoned checkpoint: drop it
        return self._pending

    def on_subtask_ack(self, checkpoint_id: int, name: str, idx: int,
                       keyed: dict[str, dict[int, Any]],
                       scalar: dict[str, Any]) -> None:
        """One subtask snapshotted on barrier passage."""
        pending = self._pending_for(checkpoint_id)
        if pending is None:
            return
        pending.acked.add((name, idx))
        for m, groups in keyed.items():
            pending.keyed.setdefault(m, {}).update(groups)
        for m, snap in scalar.items():
            pending.scalar.setdefault(m, {})[idx] = snap

    def on_sink_ack(self, checkpoint_id: int, sink_name: str) -> None:
        """A transactional sink pre-committed (2PC phase 1)."""
        pending = self._pending_for(checkpoint_id)
        if pending is not None:
            pending.sink_acked.add(sink_name)
            return
        # Pre-commit for a checkpoint this coordinator is not assembling
        # (barriers from an abandoned attempt, or from before a
        # coordinator crash, finishing their journey): abort it so the
        # elements fold back into the open transaction instead of being
        # orphaned in a sealed one nobody will ever commit.
        self.executor.sinks[sink_name].abort_pending(checkpoint_id)

    def on_spill_open(self, checkpoint_id: int, channel: tuple) -> None:
        """Unaligned snapshot taken; this lagging channel's pre-barrier
        items will stream in until its straggler barrier."""
        pending = self._pending_for(checkpoint_id)
        if pending is not None:
            pending.open_spills.add(channel)
            pending.in_flight.setdefault(channel, [])

    def on_spill(self, checkpoint_id: int, channel: tuple,
                 items: list) -> None:
        pending = self._pending_for(checkpoint_id)
        if pending is not None and channel in pending.open_spills:
            pending.in_flight[channel].extend(items)

    def on_spill_closed(self, checkpoint_id: int, channel: tuple) -> None:
        """Straggler barrier arrived: the channel's spill is complete."""
        pending = self._pending_for(checkpoint_id)
        if pending is not None:
            pending.open_spills.discard(channel)

    # -- routing capture (values at each channel's cut point) ----------------

    def capture_channel_wm(self, key: tuple, sender: tuple,
                           watermark: float) -> None:
        if self._pending is not None:
            self._pending.channel_wm.setdefault(key, {})[sender] = watermark

    def capture_aligned_wm(self, key: tuple, watermark: float) -> None:
        if self._pending is not None:
            self._pending.aligned_wm[key] = watermark

    def capture_rr(self, key: tuple[int, int], cursor: int) -> None:
        if self._pending is not None:
            self._pending.rr[key] = cursor

    def capture_data_counts(self, checkpoint_id: int,
                            counts: dict[str, int]) -> None:
        """A subtask's data-fault counters at its barrier cut (only
        reported when the injector carries data-fault specs)."""
        pending = self._pending_for(checkpoint_id)
        if pending is not None:
            pending.data_counts.update(counts)

    # -- finalize / abort ----------------------------------------------------

    def maybe_finalize(self) -> ParallelCheckpoint | None:
        pending = self._pending
        if pending is None or not pending.complete:
            return None
        if self.injector is not None:
            # May raise CoordinatorDown: the crash-point *before* the
            # atomic commit — the checkpoint is lost, sinks must abort.
            self.injector.before_finalize(pending.checkpoint_id)
        executor = self.executor
        cid = pending.checkpoint_id
        parallelism: dict[str, int] = {}
        scalar_state: dict[str, list[Any]] = {}
        for m in executor.job.operators:
            width = len(executor.subtask_operators(m))
            parallelism[m] = width
            per_subtask = pending.scalar.get(m, {})
            if set(per_subtask) != set(range(width)):
                raise CheckpointError(
                    f"checkpoint {cid}: operator {m!r} acked subtasks "
                    f"{sorted(per_subtask)} of {width}")
            scalar_state[m] = [per_subtask[i] for i in range(width)]
        for name in executor.job.sources:
            parallelism[name] = executor.graph.source_parallelism[name]
        sink_elements = {
            name: sink.projected_committed(cid)
            for name, sink in executor.sinks.items()
        }
        checkpoint = ParallelCheckpoint(
            checkpoint_id=cid,
            num_key_groups=executor.num_key_groups,
            parallelism=parallelism,
            num_splits=dict(executor.graph.source_splits),
            source_positions={s: dict(p) for s, p
                              in pending.source_positions.items()},
            keyed_state={m: dict(g) for m, g in pending.keyed.items()},
            scalar_state=scalar_state,
            sink_elements=sink_elements,
            routing_state={
                "channel_wm": {k: dict(v)
                               for k, v in pending.channel_wm.items()},
                "aligned_wm": dict(pending.aligned_wm),
                "rr": dict(pending.rr),
            },
            in_flight={k: list(v) for k, v in pending.in_flight.items()
                       if v},
            shed_state=dict(pending.shed_state),
            data_counts=dict(pending.data_counts),
        )
        manifest = self.store.manifests[cid]
        manifest.finalized_at = self.clock.now
        manifest.acked_subtasks = sorted(f"{n}[{i}]"
                                         for n, i in pending.acked)
        manifest.acked_sinks = sorted(pending.sink_acked)
        manifest.spilled_items = pending.spilled_items
        # Atomic commit point: manifest + snapshot become visible
        # together, then phase 2 runs.  A crash after this line loses
        # nothing — recovery restores checkpoint N and the sinks'
        # recorded (projected) output already includes transaction N.
        self.store.finalize(checkpoint, manifest)
        if self.injector is not None:
            # Storage-rot chaos site: the checkpoint committed cleanly,
            # then the stored bytes went bad.  Detection is restore's
            # job, so the hook fires after the atomic commit.
            after = getattr(self.injector, "after_finalize", None)
            if after is not None:
                after(self.store, cid)
        self._pending = None
        self.finalized += 1
        for name, sink in executor.sinks.items():
            sink.commit(cid)
            for listener in self.listeners:
                listener(cid, name, sink.committed)
        duration = self.clock.now - pending.started_at
        if self.metrics is not None:
            self.metrics.counter("coordinator.finalized").inc()
            self.metrics.summary("checkpoint.duration_s").observe(duration)
            self.metrics.gauge("checkpoint.latest_id").set(cid)
            if pending.spilled_items:
                self.metrics.counter("checkpoint.spilled_items").inc(
                    pending.spilled_items)
        executor.on_checkpoint_finalized(cid, duration)
        return checkpoint

    def abandon_pending(self) -> int | None:
        """Abort the in-progress checkpoint (2PC abort): sinks demote
        their pre-committed transactions, the manifest is marked
        aborted.  Returns the abandoned id, if any."""
        pending, self._pending = self._pending, None
        if pending is None:
            return None
        cid = pending.checkpoint_id
        for sink in self.executor.sinks.values():
            sink.abort_pending(cid)
        self.store.abort(cid)
        self.aborted += 1
        if self.metrics is not None:
            self.metrics.counter("coordinator.aborted").inc()
        return cid

    def on_executor_restored(self) -> None:
        """The executor rewound (full or regional): any in-progress
        checkpoint is meaningless now."""
        self.abandon_pending()
        self._cycles_since_trigger = 0

    # -- completion ----------------------------------------------------------

    def final_checkpoint(self, executor: Any | None = None,
                         max_cycles: int = 64) -> ParallelCheckpoint:
        """After the job drains, commit the tail: trigger one last
        checkpoint and drive drain cycles until it finalizes, so the
        transactional sinks' committed output is the complete run."""
        executor = executor if executor is not None else self.executor
        if self._pending is None:
            self.trigger(executor)
        for _ in range(max_cycles):
            if self._pending is None:
                break
            executor.drain_for_coordinator()
            self.on_cycle_end(executor)
        if self._pending is not None:
            raise CheckpointError(
                "final checkpoint did not complete: barriers are stuck "
                "(blocked channel or stalled subtask at end of job)")
        latest = self.store.latest()
        assert latest is not None
        return latest


# -- failover regions --------------------------------------------------------


def failover_regions(graph: ExecutionGraph,
                     replayable: set[tuple[str, str]] | frozenset = frozenset()
                     ) -> list[set[str]]:
    """Partition the physical plan into restart units.

    Two nodes share a region when a (non-replayable) physical edge
    connects them, in either direction: a failed subtask invalidates
    everything downstream of it (missing/partial output) and everything
    upstream feeding it (their emitted-but-unprocessed output is lost in
    the failed node's channels).  ``replayable`` names edges — as
    ``(up, down)`` execution-node pairs — whose downstream re-reads from
    a durable log, so the dependency is cut and the components come
    apart.  Returns the regions sorted by their smallest member.
    """
    names = (set(graph.source_parallelism) | set(graph.nodes)
             | set(graph.job.sinks))
    parent = {n: n for n in names}

    def find(n: str) -> str:
        while parent[n] != n:
            parent[n] = parent[parent[n]]
            n = parent[n]
        return n

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    cut = {(u, d) for u, d in replayable}
    for edge in graph.edges:
        if (edge.up, edge.down) in cut:
            continue
        union(edge.up, edge.down)
    regions: dict[str, set[str]] = {}
    for n in names:
        regions.setdefault(find(n), set()).add(n)
    return sorted(regions.values(), key=lambda r: min(r))


def failover_region_of(graph: ExecutionGraph, op_name: str,
                       replayable: set[tuple[str, str]] | frozenset
                       = frozenset()) -> set[str]:
    """The region containing ``op_name`` — a logical operator, a
    physical subtask (``"window_sum[1]"``), a fused chain (logical
    ``"chain(a+b)"`` or a physical instance ``"chain(a[0]+b[0])"``), a
    source or a sink."""
    base = op_name
    if base.startswith("chain(") and base.endswith(")"):
        # all chain members share a region (they are directly wired),
        # so any one of them resolves it
        base = base[len("chain("):-1].split("+")[0]
    if base.endswith("]"):
        head, bracket, idx = base.rpartition("[")
        if bracket and idx[:-1].isdigit():
            base = head
    node = graph.rename.get(base, base)
    for region in failover_regions(graph, replayable):
        if node in region:
            return region
    raise CheckpointError(
        f"{op_name!r} does not name a node in the plan")
