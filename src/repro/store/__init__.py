"""Tiered serving store: millisecond point lookups + columnar scans.

The serving layer the paper's Section 4.1 split demands (ROADMAP item
3): a log-structured **hot store** (:mod:`repro.store.hot`) answering
"latest N per key" from memtable + sorted runs, and a columnar
**analytical store** (:mod:`repro.store.analytical`) appending
committed history and serving filter/group-by/window aggregates over
numpy columns.  Both tiers mutate only through committed checkpoint
epochs, fed by :class:`StoreSink` (:mod:`repro.store.sink`) — the
exactly-once bridge off the transactional-sink commit stream.
"""

from .analytical import AnalyticalStore
from .hot import HotShard, HotStore, SortedRun, key_repr
from .sink import StoreSink
from .tiered import TieredStore, canonical_contents, serve_topic

__all__ = [
    "AnalyticalStore",
    "HotShard",
    "HotStore",
    "SortedRun",
    "key_repr",
    "StoreSink",
    "TieredStore",
    "serve_topic",
    "canonical_contents",
]
