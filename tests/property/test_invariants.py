"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import CountMinSketch, HyperLogLog, RunningStats
from repro.eventlog import LogCluster, Partition, Producer, Record, TopicConfig
from repro.privacy import discretize_trace
from repro.sensors import QuadTree, SpatialPoint, geohash_decode, geohash_encode
from repro.streaming import (
    Element,
    SlidingWindows,
    TumblingWindows,
    Watermark,
    WindowAggregateOperator,
)
from repro.util.geometry import Rect
from repro.vision import apply_homography, estimate_homography

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
small_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPartitionProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                    max_size=60),
           st.integers(min_value=0, max_value=70))
    def test_truncate_then_read_never_returns_dropped(self, values, cut):
        partition = Partition("t", 0)
        for v in values:
            partition.append(Record(value=v))
        cut = min(cut, partition.end_offset)
        partition.truncate_before(cut)
        if cut < partition.end_offset:
            rows = partition.read(cut, max_records=1000)
            assert all(offset >= cut for offset, _r in rows)
            assert [r.value for _o, r in rows] == values[cut:]

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", None]),
                              st.integers()), min_size=1, max_size=50))
    def test_compaction_keeps_latest_per_key(self, rows):
        partition = Partition("t", 0)
        for key, value in rows:
            partition.append(Record(value=value, key=key))
        partition.compact()
        retained = [r for _o, r in partition.read(0, max_records=1000)]
        # Latest value per key must be present exactly once.
        last = {}
        for key, value in rows:
            if key is not None:
                last[key] = value
        for key, value in last.items():
            matching = [r for r in retained if r.key == key]
            assert len(matching) == 1
            assert matching[0].value == value
        # All keyless records retained in order.
        keyless = [r.value for r in retained if r.key is None]
        assert keyless == [v for k, v in rows if k is None]


class TestKeyedPartitioningProperty:
    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1,
                    max_size=40))
    @settings(max_examples=30)
    def test_same_key_same_partition(self, keys):
        cluster = LogCluster(3)
        cluster.create_topic(TopicConfig("t", partitions=5, replication=1))
        producer = Producer(cluster)
        placements = {}
        for key in keys:
            partition, _offset = producer.send("t", 0, key=key)
            if key in placements:
                assert placements[key] == partition
            placements[key] = partition


class TestWindowProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                              allow_nan=False), min_size=1, max_size=80),
           st.floats(min_value=0.5, max_value=100.0))
    def test_tumbling_assignment_contains_timestamp(self, timestamps, size):
        assigner = TumblingWindows(size)
        for ts in timestamps:
            windows = assigner.assign(ts)
            assert len(windows) == 1
            assert windows[0].contains(ts)

    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
           st.floats(min_value=1.0, max_value=50.0),
           st.integers(min_value=1, max_value=5))
    def test_sliding_every_window_contains_timestamp(self, ts, slide,
                                                     factor):
        assigner = SlidingWindows(size=slide * factor, slide=slide)
        windows = assigner.assign(ts)
        # Exactly `factor` windows in exact arithmetic; floating-point
        # boundaries may add or drop one at the edges.
        assert factor - 1 <= len(windows) <= factor + 1
        assert all(w.contains(ts) for w in windows)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.floats(min_value=0.0, max_value=100.0,
                                        allow_nan=False)),
                    min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_window_counts_conserve_elements(self, rows):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "count")
        for key, ts in rows:
            op.process(Element(value=1, timestamp=ts, key=key))
        fired = op.flush()
        total = sum(item.value.value for item in fired)
        assert total == len(rows)


class TestSketchProperties:
    @given(st.lists(st.text(min_size=1, max_size=6), min_size=1,
                    max_size=200))
    @settings(max_examples=30)
    def test_cms_never_underestimates(self, items):
        cms = CountMinSketch(epsilon=0.01, delta=0.05)
        truth = {}
        for item in items:
            cms.add(item)
            truth[item] = truth.get(item, 0) + 1
        for item, count in truth.items():
            assert cms.estimate(item) >= count

    @given(st.sets(st.text(min_size=1, max_size=10), min_size=1,
                   max_size=500))
    @settings(max_examples=20)
    def test_hll_monotone_in_set_size(self, items):
        hll = HyperLogLog(precision=12)
        previous = 0.0
        for i, item in enumerate(sorted(items)):
            hll.add(item)
            if i % 50 == 0:
                estimate = hll.estimate()
                assert estimate >= previous - 1e-6
                previous = estimate

    @given(st.lists(small_floats, min_size=1, max_size=300))
    def test_running_stats_matches_numpy(self, values):
        stats = RunningStats()
        for v in values:
            stats.add(v)
        assert math.isclose(stats.mean, float(np.mean(values)),
                            rel_tol=1e-9, abs_tol=1e-6)
        assert stats.variance >= -1e-9

    @given(st.lists(small_floats, min_size=1, max_size=100),
           st.lists(small_floats, min_size=1, max_size=100))
    def test_running_stats_merge_associative(self, a_vals, b_vals):
        merged = RunningStats()
        for v in a_vals + b_vals:
            merged.add(v)
        a = RunningStats()
        b = RunningStats()
        for v in a_vals:
            a.add(v)
        for v in b_vals:
            b.add(v)
        a.merge(b)
        assert math.isclose(a.mean, merged.mean, rel_tol=1e-9,
                            abs_tol=1e-6)
        assert math.isclose(a.variance, merged.variance, rel_tol=1e-6,
                            abs_tol=1e-5)


class TestGeoProperties:
    @given(st.floats(min_value=-89.9, max_value=89.9),
           st.floats(min_value=-179.9, max_value=179.9))
    def test_geohash_roundtrip_close(self, lat, lon):
        gh = geohash_encode(lat, lon, precision=10)
        lat2, lon2 = geohash_decode(gh)
        assert abs(lat - lat2) < 1e-4
        assert abs(lon - lon2) < 1e-4

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              st.floats(min_value=0, max_value=100)),
                    min_size=1, max_size=100),
           st.tuples(st.floats(min_value=0, max_value=100),
                     st.floats(min_value=0, max_value=100),
                     st.floats(min_value=1, max_value=60)))
    @settings(max_examples=40)
    def test_quadtree_radius_query_equals_bruteforce(self, points, query):
        tree = QuadTree(Rect(0, 0, 100, 100), bucket_size=4)
        sps = [SpatialPoint(x, y, payload=i)
               for i, (x, y) in enumerate(points)]
        for sp in sps:
            tree.insert(sp)
        qx, qy, radius = query
        expected = {sp.payload for sp in sps
                    if sp.distance_sq(qx, qy) <= radius * radius}
        got = {sp.payload for sp in tree.query_radius(qx, qy, radius)}
        assert got == expected


class TestHomographyProperty:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25)
    def test_estimate_inverts_apply(self, seed):
        rng = np.random.default_rng(seed)
        h = np.eye(3) + rng.normal(0, 0.05, size=(3, 3))
        h[2, 2] = 1.0
        src = rng.uniform(0, 100, size=(12, 2))
        dst = apply_homography(h, src)
        if not np.isfinite(dst).all():
            return  # degenerate draw
        try:
            h_est = estimate_homography(src, dst)
        except Exception:
            return  # degenerate configuration is allowed to fail loudly
        back = apply_homography(h_est, src)
        assert np.allclose(back, dst, atol=1e-4)


class TestDiscretizeProperty:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e4),
                              st.floats(min_value=0, max_value=1e4),
                              st.floats(min_value=0, max_value=1e5)),
                    min_size=1, max_size=50),
           st.floats(min_value=1.0, max_value=500.0),
           st.floats(min_value=1.0, max_value=5000.0))
    @settings(max_examples=40)
    def test_coarser_grid_never_more_points(self, rows, cell, bucket):
        xs = np.array([r[0] for r in rows])
        ys = np.array([r[1] for r in rows])
        ts = np.array([r[2] for r in rows])
        fine = discretize_trace(xs, ys, ts, cell, bucket)
        coarse = discretize_trace(xs, ys, ts, cell * 4, bucket * 4)
        assert len(coarse) <= len(fine)
