"""Unit tests: late-data side output on the window operator."""

from repro.streaming import (
    Element,
    Executor,
    JobBuilder,
    LateRecord,
    TumblingWindows,
    Watermark,
    WindowAggregateOperator,
    WindowResult,
)


def _el(value, ts, key="k"):
    return Element(value=value, timestamp=ts, key=key)


class TestLateSideOutput:
    def test_late_element_emitted_not_dropped(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "count",
                                     emit_late=True)
        op.handle(_el(1, 5.0))
        op.handle(Watermark(20.0))
        out = op.handle(_el(2, 5.0))  # late
        assert len(out) == 1
        late = out[0].value
        assert isinstance(late, LateRecord)
        assert late.value == 2
        assert late.lateness == 15.0
        assert late.key == "k"
        assert op.dropped_late == 1  # still counted

    def test_default_still_drops(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "count")
        op.handle(_el(1, 5.0))
        op.handle(Watermark(20.0))
        assert op.handle(_el(2, 5.0)) == []

    def test_pipeline_splits_results_and_late(self):
        # Out-of-order stream: one element arrives long after the
        # watermark passed its window.
        elements = [
            _el(1, 1.0), _el(1, 2.0), _el(1, 30.0), _el(1, 40.0),
            _el(1, 3.0),  # very late
        ]
        builder = JobBuilder("late-split")
        windowed = (builder.source("s", elements)
                           .with_watermarks(0.0)
                           .key_by(lambda v: "all")
                           .window(TumblingWindows(10.0), "count",
                                   emit_late=True))
        windowed.filter(lambda v: isinstance(v, WindowResult),
                        name="results").sink("out")
        windowed.filter(lambda v: isinstance(v, LateRecord),
                        name="late").sink("late_out")
        sinks = Executor(builder.build()).run()
        late = sinks["late_out"].values
        assert len(late) == 1
        assert late[0].timestamp == 3.0
        # On-time elements all counted in their windows.
        counted = sum(r.value for r in sinks["out"].values)
        assert counted == 4

    def test_late_records_enable_correction(self):
        """The correction pattern: amend released counts with late data."""
        elements = [_el(1, t) for t in
                    [1.0, 2.0, 15.0, 16.0, 3.0, 4.0, 25.0]]
        builder = JobBuilder("amend")
        windowed = (builder.source("s", elements)
                           .with_watermarks(0.0)
                           .key_by(lambda v: "all")
                           .window(TumblingWindows(10.0), "count",
                                   emit_late=True))
        windowed.sink("mixed")
        sinks = Executor(builder.build()).run()
        released = {}
        for value in sinks["mixed"].values:
            if isinstance(value, WindowResult):
                released[value.window.start] = released.get(
                    value.window.start, 0) + value.value
            else:  # LateRecord: amend the window it belonged to
                start = (value.timestamp // 10.0) * 10.0
                released[start] = released.get(start, 0) + 1
        # After amendment, every element is accounted for.
        assert sum(released.values()) == len(elements)
        assert released[0.0] == 4  # 1, 2 on time + 3, 4 amended
