"""Ablation A7: temporal label stability — the "bobbling tags" fix.

The paper (quoting MacIntyre) calls unstabilized AR labels "bobbling
tags".  We render a walking tourist's view over 30 frames (anchors
shift a few pixels per frame from camera motion + pose noise) and
compare per-frame label motion and layout quality between fresh
per-frame declutter and the hysteresis :class:`StableLayout`.
"""

import numpy as np

from repro.render import StableLayout, clutter_metrics, declutter_layout
from repro.util.geometry import Rect
from repro.util.rng import make_rng

from tableprint import print_table

SCREEN = Rect(0, 0, 640, 480)
FRAMES = 30
LABELS = 20


def _anchor_track(rng):
    """Per-frame anchor positions: slow drift + per-frame pose noise."""
    base = [(f"poi-{i:02d}",
             float(rng.uniform(120, 520)), float(rng.uniform(100, 380)),
             70.0, 20.0, float(rng.uniform(1, 5)))
            for i in range(LABELS)]
    frames = []
    for frame in range(FRAMES):
        drift = frame * 1.5  # camera pans right
        jitter = rng.normal(0, 1.2, size=(LABELS, 2))
        frames.append([
            (aid, x - drift + float(jitter[i, 0]),
             y + float(jitter[i, 1]), w, h, p)
            for i, (aid, x, y, w, h, p) in enumerate(base)])
    return frames


def _frame_motion(prev, curr):
    moves = []
    for aid in set(prev) & set(curr):
        moves.append(np.hypot(curr[aid][0] - prev[aid][0],
                              curr[aid][1] - prev[aid][1]))
    return moves


def run_experiment():
    rng = make_rng(95)
    frames = _anchor_track(rng)
    rows = []
    for mode in ("fresh", "stable"):
        stable = StableLayout(SCREEN)
        motions = []
        overlaps = 0
        drawn_total = 0
        previous = None
        for items in frames:
            if mode == "fresh":
                placed = declutter_layout(items, SCREEN)
            else:
                placed = stable.layout(items)
            active = {l.annotation_id: l.rect.center
                      for l in placed if not l.dropped}
            metrics = clutter_metrics(placed, SCREEN)
            overlaps += metrics.overlapping
            drawn_total += metrics.placed - metrics.dropped \
                if metrics.dropped < 0 else metrics.placed
            if previous is not None:
                motions.extend(_frame_motion(previous, active))
            previous = active
        # Anchor motion itself is ~1.5 px drift + jitter; motion beyond
        # that is bobbling.
        rows.append([mode, float(np.mean(motions)),
                     float(np.percentile(motions, 95)),
                     float(np.max(motions)),
                     overlaps, drawn_total / FRAMES])
    return rows


def bench_a7_label_stability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A7  ablation: per-frame label motion, fresh declutter vs "
        "hysteresis (camera pans 1.5 px/frame + 1.2 px pose noise)",
        ["layout", "mean motion px", "p95 motion px", "max motion px",
         "overlap events", "mean labels drawn"],
        rows,
        note="anchor motion is ~2 px/frame; anything beyond that is "
             "'bobbling'. Hysteresis pins label offsets to anchors.")
    fresh = next(r for r in rows if r[0] == "fresh")
    stable = next(r for r in rows if r[0] == "stable")
    # Stability: hysteresis caps the tail that makes labels "bobble".
    assert stable[3] <= fresh[3]
    assert stable[2] <= fresh[2] + 0.5
    assert stable[1] <= fresh[1] + 0.2
    # Neither mode overlaps, and both keep most labels on screen.
    assert fresh[4] == 0 and stable[4] == 0
    assert stable[5] > LABELS * 0.5
    # Fresh layout shows motion spikes well beyond anchor motion.
    assert fresh[3] > 10.0
