"""Ablation A9: adaptive quality under changing network conditions.

Section 4.1's real-time contract must survive the network turning bad.
A session starts at 720p over a good WiFi edge; mid-run the access link
collapses (e.g. the user walks into a dead zone) and later recovers.
The adaptive controller steps resolution down to keep the deadline and
steps back up when conditions return; a fixed-quality session just
misses frames for the whole outage.
"""

import numpy as np

from repro.core import (
    AdaptiveQualityController,
    ARBigDataPipeline,
    PipelineConfig,
)
from repro.simnet.network import LINK_PRESETS, LinkSpec
from repro.vision.tracker import StageProfile

from tableprint import print_table

PHASES = [  # (name, frames, access link)
    ("good wifi", 60, LINK_PRESETS["wifi"]),
    ("dead zone", 60, LinkSpec(latency_s=0.2, bandwidth_bps=5e4,
                               jitter_s=0.02)),
    ("recovered", 60, LINK_PRESETS["wifi"]),
]
DEADLINE_S = 1.0 / 30.0


def _fixed_profile():
    width, height = 1280, 720
    pixels = width * height
    features = min(1200, int(80 * (pixels / (160 * 120)) ** 0.5))
    return StageProfile(pixels=pixels, features=features,
                        matches=int(features * 0.4),
                        ransac_iterations=80)


def run_experiment():
    rows = []
    # Adaptive session.
    adaptive_pipeline = ARBigDataPipeline(PipelineConfig(
        seed=97, deadline_s=DEADLINE_S))
    controller = AdaptiveQualityController(
        adaptive_pipeline.timeliness, window=10, start_level=0)
    # Fixed-quality session.
    fixed_pipeline = ARBigDataPipeline(PipelineConfig(
        seed=97, deadline_s=DEADLINE_S))
    fixed_profile = _fixed_profile()
    for phase, frames, link in PHASES:
        adaptive_pipeline.set_access_link(link)
        fixed_pipeline.set_access_link(link)
        adaptive_miss = 0
        fixed_miss = 0
        levels = []
        for _ in range(frames):
            timing = controller.admit_frame()
            adaptive_miss += 0 if timing.met_deadline else 1
            levels.append(controller.level)
            fixed = fixed_pipeline.timeliness.admit_frame(fixed_profile)
            fixed_miss += 0 if fixed.met_deadline else 1
        width, height = AdaptiveQualityController.LADDER[
            int(round(float(np.median(levels))))]
        rows.append([phase, frames, f"{width}x{height}",
                     adaptive_miss / frames, fixed_miss / frames,
                     controller.downshifts, controller.upshifts])
    return rows


def bench_a9_adaptive_quality(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A9  Sec 4.1: adaptive quality through a network outage "
        "(33 ms deadline)",
        ["phase", "frames", "median resolution", "adaptive miss rate",
         "fixed-720p miss rate", "downshifts so far", "upshifts so far"],
        rows,
        note="the controller trades resolution for the deadline during "
             "the outage and recovers afterwards; the fixed session "
             "just fails")
    good, dead, recovered = rows
    # During the outage the fixed session misses everything; the
    # adaptive one recovers a (much) lower miss rate by downshifting.
    assert dead[4] == 1.0
    assert dead[3] < dead[4]
    assert dead[5] >= 1  # it actually downshifted
    # After recovery the controller steps quality back up and meets the
    # deadline again.
    assert recovered[6] >= 1
    assert recovered[3] < 0.4
    # In the good phase the adaptive session meets the deadline (it
    # settles at VGA — this phone cannot do 720p in 33 ms even offloaded,
    # which is exactly why the fixed-720p session misses everywhere).
    assert good[3] < 0.2
