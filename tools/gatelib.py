"""Shared scaffolding for the ``tools/check_*`` gate family.

Every gate follows the same shape: optionally run a marked pytest
suite in a subprocess, run some in-process acceptance checks (often
reusing a ``benchmarks/`` experiment), and report ``check_X: OK`` /
``check_X: FAIL (reason)`` with exit code 0/1.  The shape lives here
so the gates cannot drift apart:

- :data:`REPO` / :func:`ensure_paths` — one definition of where the
  repo root, ``src/`` and ``benchmarks/`` are;
- :func:`repo_env` — the PYTHONPATH prepend every subprocess needs;
- :func:`run_suite` — marked pytest suites (``-m store``, ``-m geo``,
  tier 1 with ``-x``) with the ``== label ==`` banner;
- :func:`run_bench` — a bench script in a subprocess writing to a
  throwaway ``--out``, returning the parsed JSON (``None`` on crash);
- :class:`Gate` — the FAIL/OK print-and-exit-code convention.

Gates stay thin argparse ``main()``s on top; the domain checks they
gate remain their own.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["REPO", "Gate", "ensure_paths", "repo_env", "run_bench",
           "run_suite"]

REPO = Path(__file__).resolve().parent.parent


def ensure_paths() -> None:
    """Put ``src/`` and ``benchmarks/`` on ``sys.path`` so gates can
    import the library and the bench experiments in-process."""
    for sub in ("benchmarks", "src"):
        path = str(REPO / sub)
        if path not in sys.path:
            sys.path.insert(0, path)


def repo_env() -> dict[str, str]:
    """A copy of the environment with ``src/`` prepended to PYTHONPATH
    — what every pytest/bench subprocess runs under."""
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def run_suite(label: str, marker: str | None = None, *,
              fail_fast: bool = False) -> bool:
    """Run a pytest suite in a subprocess.

    ``marker`` selects with ``-m`` (``None`` runs the default tier-1
    selection from ``pyproject.toml``); ``fail_fast`` adds ``-x``.
    """
    print(f"== {label} ==", flush=True)
    cmd = [sys.executable, "-m", "pytest", "-q"]
    if fail_fast:
        cmd.append("-x")
    if marker is not None:
        cmd += ["-m", marker]
    proc = subprocess.run(cmd, cwd=REPO, env=repo_env())
    return proc.returncode == 0


def run_bench(script: str, *args: str) -> dict | None:
    """Run ``benchmarks/<script>`` in a subprocess against a throwaway
    ``--out`` file and return the JSON it wrote (``None`` on crash) —
    gates must never clobber the committed baseline."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / script),
             *args, "--out", str(out)],
            cwd=REPO, env=repo_env())
        if proc.returncode != 0:
            return None
        return json.loads(out.read_text())


class Gate:
    """The reporting convention: ``gate.fail(reason)`` prints
    ``check_X: FAIL (reason)`` and returns 1, ``gate.ok()`` prints
    ``check_X: OK`` and returns 0 — both ready to hand to
    ``sys.exit`` from ``main()``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def fail(self, reason: str) -> int:
        print(f"\n{self.name}: FAIL ({reason})")
        return 1

    def ok(self) -> int:
        print(f"\n{self.name}: OK")
        return 0

    def verdict(self, passed: bool, reason: str) -> int:
        """One-shot form for gates that accumulate a boolean."""
        return self.ok() if passed else self.fail(reason)
