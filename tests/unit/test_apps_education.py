"""Unit tests: the AR classroom application."""

import pytest

from repro.apps import EducationApp, Lesson, Student
from repro.core import ARBigDataPipeline, DEFAULT_INTRINSICS, PipelineConfig
from repro.util.errors import PipelineError
from repro.util.rng import make_rng


def _lessons():
    return [
        Lesson("l-frac", "fractions", marker_id=7,
               position=(0.0, 0.0, 1.0)),
        Lesson("l-geo", "geometry", marker_id=21,
               position=(3.0, 0.0, 1.0)),
        Lesson("l-time", "clock-reading", marker_id=42,
               position=(6.0, 0.0, 1.0)),
    ]


def _app(seed=0):
    return EducationApp(ARBigDataPipeline(PipelineConfig(seed=seed)),
                        _lessons()), make_rng(seed)


class TestMarkerTriggeredContent:
    def test_close_scan_triggers_content(self):
        app, rng = _app(1)
        outcome = app.scan_marker(rng, "l-frac", distance_m=0.4,
                                  intrinsics=DEFAULT_INTRINSICS)
        assert outcome["decoded"] == 7
        assert outcome["triggered"]
        assert app.pipeline.dataset.version == 1

    def test_far_scan_fails_gracefully(self):
        app, rng = _app(2)
        outcome = app.scan_marker(rng, "l-frac", distance_m=20.0,
                                  intrinsics=DEFAULT_INTRINSICS)
        assert not outcome["triggered"]
        assert app.pipeline.dataset.version == 0

    def test_trigger_rate_degrades_with_distance(self):
        app, rng = _app(3)
        def rate(distance):
            hits = 0
            for _ in range(10):
                if app.scan_marker(rng, "l-geo", distance_m=distance,
                                   intrinsics=DEFAULT_INTRINSICS,
                                   noise_sigma=0.03)["triggered"]:
                    hits += 1
            return hits / 10
        assert rate(0.4) > rate(8.0)
        assert rate(0.4) >= 0.9

    def test_unknown_lesson_rejected(self):
        app, rng = _app(4)
        with pytest.raises(PipelineError):
            app.scan_marker(rng, "nope", 0.5, DEFAULT_INTRINSICS)


class TestMasteryAnalytics:
    def test_estimates_track_true_mastery(self):
        app, rng = _app(5)
        student = Student("s1", mastery={"fractions": 0.9,
                                         "geometry": 0.2,
                                         "clock-reading": 0.5})
        for i in range(60):
            for topic in student.mastery:
                app.ingest_quiz(student, topic,
                                student.answer_correctly(topic, rng),
                                timestamp=float(i))
        assert app.estimated_mastery("s1", "fractions") > 0.75
        assert app.estimated_mastery("s1", "geometry") < 0.4

    def test_weakest_topics_ranked(self):
        app, rng = _app(6)
        student = Student("s1", mastery={"fractions": 0.95,
                                         "geometry": 0.1,
                                         "clock-reading": 0.5})
        for i in range(80):
            for topic in student.mastery:
                app.ingest_quiz(student, topic,
                                student.answer_correctly(topic, rng),
                                timestamp=float(i))
        assert app.weakest_topics("s1", k=1) == ["geometry"]

    def test_unseen_student_defaults_neutral(self):
        app, _rng = _app(7)
        assert app.estimated_mastery("ghost", "fractions") == 0.5

    def test_review_hints_anchor_at_weak_lessons(self):
        app, rng = _app(8)
        student = Student("s1", mastery={"fractions": 0.95,
                                         "geometry": 0.05,
                                         "clock-reading": 0.9})
        for i in range(60):
            for topic in student.mastery:
                app.ingest_quiz(student, topic,
                                student.answer_correctly(topic, rng),
                                timestamp=float(i))
        bound = app.publish_review_hints("s1", k=1)
        assert bound == 1
        session = app.pipeline.open_session("s1")
        session.sync()
        assert "review-hint:l-geo" in session.visible_annotation_ids()


class TestSemester:
    def test_targeted_review_beats_random(self):
        # A wider curriculum gives targeting room to matter.
        lessons = [Lesson(f"l{i}", f"topic-{i}", marker_id=i + 1,
                          position=(float(i), 0.0, 1.0))
                   for i in range(6)]
        app = EducationApp(ARBigDataPipeline(PipelineConfig(seed=9)),
                           lessons)
        rng = make_rng(9)
        outcome = app.run_semester(rng, num_students=25, quiz_rounds=20)
        assert outcome.targeted_gain > outcome.untargeted_gain
        assert outcome.uplift > 0.05

    def test_validation(self):
        with pytest.raises(PipelineError):
            EducationApp(ARBigDataPipeline(PipelineConfig(seed=0)), [])
        dup = [Lesson("x", "t", 1, (0, 0, 0)),
               Lesson("x", "t2", 2, (1, 0, 0))]
        with pytest.raises(PipelineError):
            EducationApp(ARBigDataPipeline(PipelineConfig(seed=1)), dup)
