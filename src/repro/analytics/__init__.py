"""Big-data analytics: sketches, incremental aggregation, recommenders,
anomaly detection, correlation mining."""

from .anomaly import Alarm, EwmaDetector, ThresholdDetector
from .correlation import AssociationRule, LiftMiner, StreamingPearson
from .heavyhitters import HeavyHitters
from .incremental import (
    DecayedCounter,
    IncrementalQuery,
    IncrementalTopK,
    RunningStats,
)
from .quantiles import P2Quantile
from .recommend import (
    ContextRanker,
    Interaction,
    ItemCFRecommender,
    PopularityRecommender,
    Recommender,
    hit_rate,
    precision_at_k,
)
from .sketches import BloomFilter, CountMinSketch, HyperLogLog, ReservoirSample

__all__ = [
    "Alarm",
    "EwmaDetector",
    "ThresholdDetector",
    "AssociationRule",
    "LiftMiner",
    "StreamingPearson",
    "HeavyHitters",
    "DecayedCounter",
    "IncrementalQuery",
    "IncrementalTopK",
    "RunningStats",
    "P2Quantile",
    "ContextRanker",
    "Interaction",
    "ItemCFRecommender",
    "PopularityRecommender",
    "Recommender",
    "hit_rate",
    "precision_at_k",
    "BloomFilter",
    "CountMinSketch",
    "HyperLogLog",
    "ReservoirSample",
]
