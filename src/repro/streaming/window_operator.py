"""Event-time window aggregation operator.

Keyed elements are assigned to windows; when the watermark passes a
window's end (+ allowed lateness), the window fires and an aggregate is
emitted as ``WindowResult``.  Elements arriving after their window has
fired-and-purged are counted as *dropped late* — the quantity the A3
watermark experiment sweeps.

Session windows merge on insert, the standard merging-window algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..util.errors import StreamError
from .batch import RecordBatch
from .element import Element, StreamItem, Watermark
from .operators import Operator, _segmented
from .windows import TumblingWindows, Window, WindowAssigner

__all__ = ["WindowResult", "LateRecord", "WindowAggregateOperator",
           "aggregators"]


@dataclass(frozen=True)
class WindowResult:
    """Output of a fired window."""

    key: Any
    window: Window
    value: Any
    count: int


@dataclass(frozen=True)
class LateRecord:
    """A late element surfaced on the side output instead of dropped.

    Downstream can route these to a correction path (e.g. re-aggregate
    and amend released results) — the recovery story for the timeliness
    vs completeness trade-off of experiment A3.
    """

    value: Any
    timestamp: float
    key: Any
    lateness: float  # how far behind the watermark it arrived


class _Agg:
    """An incremental aggregator: (init, add, merge, result)."""

    def __init__(self, init: Callable[[], Any],
                 add: Callable[[Any, Any], Any],
                 merge: Callable[[Any, Any], Any],
                 result: Callable[[Any], Any]) -> None:
        self.init = init
        self.add = add
        self.merge = merge
        self.result = result


def _exact_add(partials: list, x: float) -> list:
    """Shewchuk's grow-partials step: fold ``x`` into a list of
    non-overlapping partial sums that exactly represent the true sum."""
    x = float(x)
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]
    return partials


#: accumulator length at which _sum_add collapses to exact partials
_COMPACT_AT = 64


def _exact_partials(values: list) -> list:
    """Compact a float list to a short list with the same *exact* sum.

    Iterated-fsum expansion: each round appends the correctly rounded
    sum of the residual and subtracts it back out, so the invariant
    ``exact_sum(out) + exact_sum(work) == exact_sum(values)`` holds at
    every step; the residual shrinks below one ulp per round and almost
    always hits exactly zero within a few rounds.  Runs at ``math.fsum``
    (C) speed — the reason the windowed-sum hot path can afford exact
    arithmetic.  Non-finite inputs (or a stubborn residual) fall back to
    the Shewchuk grow-partials fold, which is also exact-sum-preserving.
    """
    out: list = []
    work = list(values)
    for _ in range(8):
        try:
            s = math.fsum(work)
        except (OverflowError, ValueError):
            break
        if s == 0.0:
            return out if out else [0.0]
        if not math.isfinite(s):
            break
        out.append(s)
        work.append(-s)
    partials: list = []
    for y in work:
        _exact_add(partials, y)
    out.extend(partials)
    return out


def _sum_add(acc: list, v) -> list:
    """Accumulate for an *order-independent* float sum.

    The accumulator is a list whose exact (infinite-precision) sum is
    the window's true sum: the hot path is a C-speed ``append``, and
    when the list grows it is compacted with :func:`_exact_partials` —
    an exact-sum-preserving rewrite, so where the compaction boundary
    falls cannot affect the result.  ``math.fsum`` at finalize is then
    the correctly rounded true sum whatever the arrival interleaving
    across parallel channels (or its perturbation by injected network
    delays) was.
    """
    acc.append(float(v))
    if len(acc) >= _COMPACT_AT:
        acc[:] = _exact_partials(acc)
    return acc


def _sum_extend(acc: list, values: list, pure: bool = False) -> list:
    """Bulk-append floats into a sum accumulator, compacting at exactly
    the boundaries the per-item :func:`_sum_add` loop would hit — the
    accumulator list stays bit-identical across execution modes.

    ``pure`` declares every value is already a Python ``float`` (e.g.
    from ``ndarray.tolist()``), where ``float(v)`` is an identity and
    the slice can extend directly.
    """
    i = 0
    n = len(values)
    while i < n:
        room = _COMPACT_AT - len(acc)
        if room <= 0:
            acc.append(float(values[i]))
            i += 1
            acc[:] = _exact_partials(acc)
            continue
        take = min(room, n - i)
        if pure:
            acc.extend(values[i:i + take])
        else:
            acc.extend(float(v) for v in values[i:i + take])
        i += take
        if len(acc) >= _COMPACT_AT:
            acc[:] = _exact_partials(acc)
    return acc


def _sum_merge(a: list, b: list) -> list:
    a.extend(b)
    if len(a) >= _COMPACT_AT:
        a[:] = _exact_partials(a)
    return a


def _mean_init():
    return [[], 0]


def _mean_add(acc, v):
    _sum_add(acc[0], v)
    acc[1] += 1
    return acc


def _mean_merge(a, b):
    return [_sum_merge(a[0], b[0]), a[1] + b[1]]


aggregators: dict[str, _Agg] = {
    "count": _Agg(lambda: 0, lambda a, _v: a + 1, lambda a, b: a + b,
                  lambda a: a),
    "sum": _Agg(list, _sum_add, _sum_merge,
                lambda a: math.fsum(a)),
    "min": _Agg(lambda: float("inf"), min, min,
                lambda a: a),
    "max": _Agg(lambda: float("-inf"), max, max,
                lambda a: a),
    "mean": _Agg(_mean_init, _mean_add, _mean_merge,
                 lambda a: math.fsum(a[0]) / a[1] if a[1] else float("nan")),
    "list": _Agg(list, lambda a, v: a + [v], lambda a, b: a + b,
                 lambda a: a),
}


class WindowAggregateOperator(Operator):
    """Keyed event-time windowing with incremental aggregation."""

    requires_shuffle = True

    def __init__(self, name: str, assigner: WindowAssigner,
                 aggregate: str | _Agg = "count",
                 allowed_lateness: float = 0.0,
                 value_fn: Callable[[Any], Any] | None = None,
                 emit_late: bool = False) -> None:
        super().__init__(name)
        self.assigner = assigner
        if isinstance(aggregate, str):
            try:
                aggregate = aggregators[aggregate]
            except KeyError:
                raise StreamError(
                    f"unknown aggregate {aggregate!r}; choose from "
                    f"{sorted(aggregators)}"
                ) from None
        self.agg = aggregate
        if allowed_lateness < 0:
            raise StreamError("allowed_lateness must be non-negative")
        self.allowed_lateness = allowed_lateness
        self._identity_value = value_fn is None
        #: transient cache: last key dictionary verified None-free by
        #: the bulk-eligibility check (slices of one macro batch share
        #: their dictionary, so the scan runs once per batch, not per
        #: slice).  Never snapshotted.
        self._kd_clean: list | None = None
        self.value_fn = value_fn if value_fn is not None else (lambda v: v)
        self.emit_late = emit_late
        # key -> {window -> [acc, count]}
        self._windows: dict[Any, dict[Window, list[Any]]] = {}
        #: transient window -> {key: None} reverse index: the firing
        #: scan visits distinct windows (usually a handful) instead of
        #: every (key, window) pair.  ``None`` means "rebuild on next
        #: firing" (after restores and session merges); never
        #: snapshotted.
        self._win_index: dict[Window, dict[Any, None]] | None = {}
        self._current_wm = float("-inf")
        # Lower bound on min(window.end + allowed_lateness) over all open
        # windows: lets on_watermark skip the full ripeness scan when no
        # window can possibly fire (the overwhelmingly common case with
        # per-element watermarks).
        self._min_deadline = float("inf")
        self.dropped_late = 0
        self.fired = 0

    # -- element path --------------------------------------------------------

    def process(self, element: Element) -> list[StreamItem]:
        if element.key is None:
            raise StreamError(
                f"window {self.name!r} requires keyed input; add key_by()"
            )
        if element.timestamp + self.allowed_lateness <= self._current_wm:
            self.dropped_late += 1
            if self.emit_late:
                late = LateRecord(
                    value=element.value, timestamp=element.timestamp,
                    key=element.key,
                    lateness=self._current_wm - element.timestamp)
                return [Element(value=late, timestamp=element.timestamp,
                                key=element.key)]
            return []
        per_key = self._windows.setdefault(element.key, {})
        value = self.value_fn(element.value)
        for window in self.assigner.assign(element.timestamp):
            if self.assigner.merging:
                window = self._merge_sessions(per_key, window)
            slot = per_key.get(window)
            if slot is None:
                slot = [self.agg.init(), 0]
                per_key[window] = slot
                deadline = window.end + self.allowed_lateness
                if deadline < self._min_deadline:
                    self._min_deadline = deadline
                index = self._win_index
                if index is not None:
                    index.setdefault(window, {})[element.key] = None
            slot[0] = self.agg.add(slot[0], value)
            slot[1] += 1
        return []

    def process_batch(self, items) -> list[StreamItem]:
        items = list(items)
        if self._bulk_eligible(items):
            return self._process_bulk(items)
        return _segmented(self, items)

    # -- columnar bulk path --------------------------------------------------

    def _bulk_eligible(self, items: list) -> bool:
        """The grouped-reduction kernel covers the common shape: keyed
        columnar batches into non-merging tumbling windows without the
        late side output.  Everything else (loose elements, unkeyed
        batches, sessions/sliding, emit_late) takes the per-item
        fallback via :func:`_segmented`."""
        if self.emit_late or type(self.assigner) is not TumblingWindows:
            return False
        saw_batch = False
        clean = self._kd_clean  # last key dictionary known None-free
        for item in items:
            if type(item) is RecordBatch:
                if item.key_codes is None:
                    return False
                kd = item.key_dict
                if kd is not clean:
                    if any(k is None for k in kd):
                        return False
                    clean = kd
                saw_batch = True
            elif not isinstance(item, Watermark):
                return False
        self._kd_clean = clean
        return saw_batch

    def _process_bulk(self, items: list) -> list[StreamItem]:
        """Accumulate every accepted element of the batch, then replay
        the watermarks in order.

        Equivalence with the per-item interleaving: an element accepted
        at position *q* has ``ts + lateness > wm(q)`` and its tumbling
        window ends after ``ts``, so no watermark at ``p <= q`` can have
        fired that window — accumulate-then-fire emits byte-identical
        results.  Late drops still use the running watermark at each
        segment, so the drop set is unchanged too.
        """
        out: list[StreamItem] = []
        wm = self._current_wm
        batches: list[RecordBatch] = []
        batch_wms: list[float] = []
        watermarks: list[Watermark] = []
        n_processed = 0
        for item in items:
            if type(item) is RecordBatch:
                n_processed += len(item)
                batches.append(item)
                batch_wms.append(wm)
            else:
                if item.timestamp > wm:
                    wm = item.timestamp
                watermarks.append(item)
        dropped = self._bulk_accumulate(batches, batch_wms) \
            if batches else 0
        emitted = 0
        # Replay watermarks in order, inlining ``on_watermark``'s
        # no-ripe-window fast path (its exact state transition) so the
        # common below-deadline watermark costs one compare, not a call.
        cur = self._current_wm
        min_dl = self._min_deadline
        for watermark in watermarks:
            if watermark.timestamp > cur:
                cur = watermark.timestamp
            if min_dl > cur:
                out.append(watermark)
                continue
            self._current_wm = cur
            wm_out = self.on_watermark(watermark)
            emitted += len(wm_out) - 1  # all Elements plus the watermark
            out.extend(wm_out)
            cur = self._current_wm
            min_dl = self._min_deadline
        self._current_wm = cur
        self.dropped_late += dropped
        self.processed += n_processed
        self.emitted += emitted
        return out

    def _bulk_accumulate(self, batches: list[RecordBatch],
                         batch_wms: list[float]) -> int:
        """One grouped reduction over (key, window) for the whole run:
        remap per-batch key codes to a global dictionary, concatenate
        columns once, drop late rows with a single vectorized mask
        (``batch_wms`` carries the running watermark each batch arrived
        under), assign tumbling starts vectorized, then update each
        group's accumulator in arrival order.  Returns the late-drop
        count."""
        agg = self.agg
        # Global key-code remap: consecutive batches usually share one
        # key dictionary (zero-copy slices of a macro batch), so gather
        # through a per-dictionary remap built once.
        gindex: dict[Any, int] = {}
        gkeys: list[Any] = []
        remap_cache: dict[int, np.ndarray] = {}
        code_parts: list[np.ndarray] = []
        run_codes: list[np.ndarray] = []
        run_remap: np.ndarray | None = None

        def _flush_codes() -> None:
            if not run_codes:
                return
            raw = (run_codes[0] if len(run_codes) == 1
                   else np.concatenate(run_codes))
            code_parts.append(run_remap[raw])
            run_codes.clear()

        for b in batches:
            kd = b.key_dict
            remap = remap_cache.get(id(kd))
            if remap is None:
                remap = np.empty(len(kd), dtype=np.int64)
                for i, k in enumerate(kd):
                    g = gindex.get(k)
                    if g is None:
                        g = len(gkeys)
                        gindex[k] = g
                        gkeys.append(k)
                    remap[i] = g
                remap_cache[id(kd)] = remap
            if remap is not run_remap:
                _flush_codes()
                run_remap = remap
            run_codes.append(b.key_codes)
        _flush_codes()
        codes = (code_parts[0] if len(code_parts) == 1
                 else np.concatenate(code_parts))
        ts = (batches[0].timestamps if len(batches) == 1
              else np.concatenate([b.timestamps for b in batches]))

        # Per-element aggregation inputs, in arrival order.
        is_sum = agg is aggregators["sum"]
        is_mean = agg is aggregators["mean"]
        is_count = agg is aggregators["count"]
        values_arr: np.ndarray | None = None
        values_src: list | None = None
        if self._identity_value:
            if (is_sum or is_mean or is_count) and \
                    all(isinstance(b.values, np.ndarray) for b in batches):
                if not is_count:
                    values_arr = (batches[0].values
                                  if len(batches) == 1 else
                                  np.concatenate([b.values
                                                  for b in batches]))
            else:
                values_src = []
                for b in batches:
                    values_src.extend(b.values_list())
        else:
            value_fn = self.value_fn
            values_src = []
            for b in batches:
                values_src.extend(value_fn(v) for v in b.values_list())

        # Late drop: one mask over the concatenation, each row judged
        # against the watermark its batch arrived under — the same
        # ``ts + lateness <= wm`` test the per-item path applies.
        dropped = 0
        lateness = self.allowed_lateness
        if batch_wms[-1] != float("-inf"):  # wms nondecreasing: max is last
            wm_arr = np.repeat(np.asarray(batch_wms, dtype=np.float64),
                               [len(b) for b in batches])
            late = ts + lateness <= wm_arr
            dropped = int(late.sum())
            if dropped:
                keep = ~late
                ts = ts[keep]
                codes = codes[keep]
                if values_arr is not None:
                    values_arr = values_arr[keep]
                elif values_src is not None:
                    values_src = [v for v, k in zip(values_src, keep)
                                  if k]
                if not len(ts):
                    return dropped

        starts = self.assigner.assign_starts(ts)
        size = self.assigner.size
        if len(starts) > 1 and bool(np.all(starts[1:] >= starts[:-1])):
            # Monotone timestamps (the common replay shape): unique
            # starts are run boundaries — no sort needed.
            new_run = np.empty(len(starts), dtype=bool)
            new_run[0] = True
            np.not_equal(starts[1:], starts[:-1], out=new_run[1:])
            uniq_starts = starts[new_run]
            start_inv = np.cumsum(new_run) - 1
        else:
            uniq_starts, start_inv = np.unique(starts, return_inverse=True)
        gid = codes * np.int64(len(uniq_starts)) + start_inv
        order = np.argsort(gid, kind="stable")
        bounds = np.flatnonzero(np.diff(gid[order])) + 1

        # Contiguous-slice gathers: group membership is constant within
        # a run after the stable sort, so key code and window index are
        # read from each group's first row only; values are gathered
        # fully (every row's value feeds its accumulator, in arrival
        # order).
        first_rows = np.empty(len(bounds) + 1, dtype=np.int64)
        first_rows[0] = 0
        first_rows[1:] = bounds
        leaders = order[first_rows]
        group_codes = codes[leaders].tolist()
        group_sidx = start_inv[leaders].tolist()
        if values_arr is not None:
            sorted_vals: list | None = values_arr[order].tolist()
        elif values_src is not None:
            sorted_vals = [values_src[i] for i in order.tolist()]
        else:
            sorted_vals = None

        windows = self._windows
        min_deadline = self._min_deadline
        win_index = self._win_index
        pure_vals = values_arr is not None  # tolist() gave Python floats
        start_list = uniq_starts.tolist()
        window_cache: list[Window | None] = [None] * len(start_list)
        edges = bounds.tolist()
        edges.append(len(order))
        a = 0
        for gi, b_ in enumerate(edges):
            key = gkeys[group_codes[gi]]
            sidx = group_sidx[gi]
            window = window_cache[sidx]
            if window is None:
                start = start_list[sidx]
                window = window_cache[sidx] = Window(start, start + size)
            per_key = windows.get(key)
            if per_key is None:
                per_key = windows[key] = {}
            slot = per_key.get(window)
            if slot is None:
                slot = per_key[window] = [agg.init(), 0]
                deadline = window.end + lateness
                if deadline < min_deadline:
                    min_deadline = deadline
                if win_index is not None:
                    win_index.setdefault(window, {})[key] = None
            m = b_ - a
            if is_count:
                slot[0] += m
            elif is_sum:
                _sum_extend(slot[0], sorted_vals[a:b_], pure_vals)
            elif is_mean:
                acc = slot[0]
                _sum_extend(acc[0], sorted_vals[a:b_], pure_vals)
                acc[1] += m
            else:
                acc = slot[0]
                add = agg.add
                for v in sorted_vals[a:b_]:
                    acc = add(acc, v)
                slot[0] = acc
            slot[1] += m
            a = b_
        self._min_deadline = min_deadline
        return dropped

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        """Watermark-free element run with hoisted hot-path locals; the
        watermark is constant across the run so the late check is a pure
        comparison."""
        assigner = self.assigner
        assign = assigner.assign
        merging = assigner.merging
        value_fn = self.value_fn
        agg_init = self.agg.init
        agg_add = self.agg.add
        windows = self._windows
        lateness = self.allowed_lateness
        current_wm = self._current_wm
        min_deadline = self._min_deadline
        emit_late = self.emit_late
        dropped = 0
        late_emitted = 0
        for element in elements:
            key = element.key
            if key is None:
                raise StreamError(
                    f"window {self.name!r} requires keyed input; add key_by()"
                )
            ts = element.timestamp
            if ts + lateness <= current_wm:
                dropped += 1
                if emit_late:
                    late = LateRecord(value=element.value, timestamp=ts,
                                      key=key, lateness=current_wm - ts)
                    out.append(Element(value=late, timestamp=ts, key=key))
                    late_emitted += 1
                continue
            per_key = windows.get(key)
            if per_key is None:
                per_key = windows[key] = {}
            value = value_fn(element.value)
            for window in assign(ts):
                if merging:
                    window = self._merge_sessions(per_key, window)
                slot = per_key.get(window)
                if slot is None:
                    slot = per_key[window] = [agg_init(), 0]
                    deadline = window.end + lateness
                    if deadline < min_deadline:
                        min_deadline = deadline
                    index = self._win_index
                    if index is not None:
                        index.setdefault(window, {})[key] = None
                slot[0] = agg_add(slot[0], value)
                slot[1] += 1
        self._min_deadline = min_deadline
        self.dropped_late += dropped
        self.processed += len(elements)
        self.emitted += late_emitted

    def _merge_sessions(self, per_key: dict[Window, list[Any]],
                        new_window: Window) -> Window:
        """Merge the provisional session window with overlapping ones."""
        # Merging rewrites window identities mid-stream; cheaper to
        # rebuild the firing index lazily than to track the rewrite.
        self._win_index = None
        overlapping = [w for w in per_key if w.intersects(new_window)]
        if not overlapping:
            return new_window
        merged = new_window
        acc = self.agg.init()
        count = 0
        for w in overlapping:
            merged = merged.merged(w)
            slot = per_key.pop(w)
            acc = self.agg.merge(acc, slot[0])
            count += slot[1]
        per_key[merged] = [acc, count]
        return merged

    # -- watermark path ---------------------------------------------------------

    def on_watermark(self, watermark: Watermark) -> list[StreamItem]:
        self._current_wm = max(self._current_wm, watermark.timestamp)
        if self._min_deadline > self._current_wm:
            # No open window can be ripe yet; skip the full scan.  The
            # bound is conservative (a lower bound), so this fast path
            # never suppresses a firing.
            return [watermark]
        wm = self._current_wm
        lateness = self.allowed_lateness
        index = self._win_index
        if index is None:
            index = self._win_index = {}
            for key, per_key in self._windows.items():
                for w in per_key:
                    index.setdefault(w, {})[key] = None
        # Ripeness over *distinct* windows (a handful), not every
        # (key, window) pair; survivors seen in the same pass give the
        # exact post-fire min deadline.
        ripe: list[Window] = []
        min_deadline = float("inf")
        for w in index:
            deadline = w.end + lateness
            if deadline <= wm:
                ripe.append(w)
            elif deadline < min_deadline:
                min_deadline = deadline
        if not ripe:
            self._min_deadline = min_deadline
            return [watermark]
        ripe.sort()
        keys: dict[Any, None] = {}
        for w in ripe:
            keys.update(index[w])
        out: list[StreamItem] = []
        windows = self._windows
        agg_result = self.agg.result
        for key in sorted(keys, key=repr):
            per_key = windows.get(key)
            if per_key is None:
                continue
            fired_here = 0
            for window in ripe:
                slot = per_key.pop(window, None)
                if slot is None:
                    continue
                fired_here += 1
                result = WindowResult(key=key, window=window,
                                      value=agg_result(slot[0]),
                                      count=slot[1])
                out.append(Element(value=result, timestamp=window.end,
                                   key=key))
            if fired_here:
                self.fired += fired_here
                if not per_key:
                    del windows[key]
        for w in ripe:
            del index[w]
        self._min_deadline = min_deadline
        out.append(watermark)
        return out

    def flush(self) -> list[StreamItem]:
        """Fire every remaining window at end-of-stream."""
        return [item for item in self.on_watermark(Watermark(float("inf")))
                if isinstance(item, Element)]

    # -- checkpointing -------------------------------------------------------------

    def snapshot(self) -> Any:
        import copy
        return {
            "windows": copy.deepcopy(self._windows),
            "wm": self._current_wm,
            "dropped": self.dropped_late,
            "fired": self.fired,
        }

    def restore(self, snapshot: Any) -> None:
        import copy
        snapshot = snapshot or {}
        self._windows = copy.deepcopy(snapshot.get("windows", {}))
        self._win_index = None
        self._current_wm = snapshot.get("wm", float("-inf"))
        self.dropped_late = snapshot.get("dropped", 0)
        self.fired = snapshot.get("fired", 0)
        self._recompute_min_deadline()

    def _recompute_min_deadline(self) -> None:
        self._min_deadline = min(
            (w.end + self.allowed_lateness
             for per_key in self._windows.values() for w in per_key),
            default=float("inf"))

    # -- key-grouped checkpoints (parallel plans) ----------------------------

    def snapshot_key_groups(self, num_key_groups: int) -> dict[int, Any]:
        import copy
        from .shuffle import group_by_key_group
        return group_by_key_group(copy.deepcopy(self._windows),
                                  num_key_groups)

    def scalar_snapshot(self) -> Any:
        return {"wm": self._current_wm, "dropped": self.dropped_late,
                "fired": self.fired}

    def restore_parallel(self, groups: dict[int, Any], scalars: list[Any],
                         primary: bool = True) -> None:
        import copy
        from .shuffle import merge_key_groups
        self._windows = copy.deepcopy(merge_key_groups(groups.values()))
        self._win_index = None
        if len(scalars) == 1:
            self._current_wm = scalars[0]["wm"]
            self.dropped_late = scalars[0]["dropped"]
            self.fired = scalars[0]["fired"]
        else:
            # Rescale: the watermark regresses to the conservative
            # minimum (can only admit *more* data, never drop extra);
            # counters are job-wide totals, carried by the primary
            # subtask so aggregation across subtasks stays exact.
            self._current_wm = min(
                (s["wm"] for s in scalars), default=float("-inf"))
            self.dropped_late = sum(s["dropped"] for s in scalars) \
                if primary else 0
            self.fired = sum(s["fired"] for s in scalars) if primary else 0
        self._recompute_min_deadline()
