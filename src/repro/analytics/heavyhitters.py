"""Streaming heavy hitters: count-min sketch + candidate heap.

Exact per-key counting (``IncrementalTopK``) needs memory linear in the
key cardinality — fine for product catalogs, fatal for open-ended keys
(hashtags, visited cells).  :class:`HeavyHitters` keeps the classic
bounded-memory alternative: frequencies estimated by a count-min sketch,
with only the current top-k candidates materialized.
"""

from __future__ import annotations

import heapq

from ..util.errors import ConfigError
from .sketches import CountMinSketch

__all__ = ["HeavyHitters"]


class HeavyHitters:
    """Approximate top-k over an unbounded key domain."""

    def __init__(self, k: int, epsilon: float = 0.001,
                 delta: float = 0.01) -> None:
        if k < 1:
            raise ConfigError("k must be >= 1")
        self.k = k
        self._sketch = CountMinSketch(epsilon=epsilon, delta=delta)
        # Min-heap of (estimate, key); _members mirrors heap membership.
        self._heap: list[tuple[int, str]] = []
        self._members: set[str] = set()

    @property
    def items_seen(self) -> int:
        return self._sketch.total

    @property
    def memory_cells(self) -> int:
        return self._sketch.memory_cells + 2 * self.k

    def add(self, key: str, count: int = 1) -> None:
        self._sketch.add(key, count)
        estimate = self._sketch.estimate(key)
        if key in self._members:
            # Lazy update: stale entries are refreshed when popped.
            heapq.heappush(self._heap, (estimate, key))
            return
        if len(self._members) < self.k:
            self._members.add(key)
            heapq.heappush(self._heap, (estimate, key))
            return
        # Evict the current minimum if this key now exceeds it.
        self._compact()
        if self._heap and estimate > self._heap[0][0]:
            _old_est, evicted = heapq.heappop(self._heap)
            self._members.discard(evicted)
            self._members.add(key)
            heapq.heappush(self._heap, (estimate, key))

    def _compact(self) -> None:
        """Drop stale heap entries (evicted keys, outdated estimates)."""
        fresh: dict[str, int] = {}
        for _est, key in self._heap:
            if key in self._members:
                fresh[key] = self._sketch.estimate(key)
        self._heap = [(est, key) for key, est in fresh.items()]
        heapq.heapify(self._heap)

    def top(self) -> list[tuple[str, int]]:
        """Current top-k candidates, highest estimate first."""
        self._compact()
        ranked = sorted(((key, est) for est, key in self._heap),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[: self.k]

    def estimate(self, key: str) -> int:
        return self._sketch.estimate(key)
