"""Experiment F6 (Figure 6: gaze-tracked retail, big-data-driven AR).

Claims under test (Section 3.1): "without adequate information from
customers, AR is less attractive ... backed by rich information from big
data, AR displays the right product recommendation"; gaze tracking
further sharpens targeting.  We sweep the amount of behavioural data and
compare three overlays: generic popularity (no big data), CF
(big data), CF + gaze context (big data + eye tracking).
"""

import numpy as np

from repro.analytics import precision_at_k
from repro.apps import RetailApp
from repro.core import ARBigDataPipeline, PipelineConfig
from repro.datagen import RetailWorld
from repro.util.rng import make_rng

from tableprint import print_table

HISTORY_SIZES = [2, 5, 10, 30, 60]  # interactions per shopper
K = 5
EVAL_USERS = 50


def run_experiment():
    rows = []
    for history in HISTORY_SIZES:
        rng = make_rng(41)
        world = RetailWorld.generate(rng, num_products=120,
                                     num_categories=12,
                                     num_shoppers=80,
                                     preference_concentration=0.15)
        app = RetailApp(ARBigDataPipeline(PipelineConfig(seed=41)),
                        world)
        app.ingest_interactions(world.interactions(
            rng, events_per_shopper=history))
        pop_p, cf_p, gaze_p = [], [], []
        for shopper in world.shoppers[:EVAL_USERS]:
            relevant = (world.holdout_relevant(rng, shopper, n=20)
                        - app.seen_items(shopper.shopper_id))
            if not relevant:
                continue
            pop_items = [i for i, _s in app.recommend(
                shopper.shopper_id, k=K, personalized=False)]
            cf_items = [i for i, _s in app.recommend(
                shopper.shopper_id, k=K)]
            events = world.gaze_stream(rng, shopper, n_events=10)
            app.ingest_gaze(events)
            gaze_items = [i for i, _s in app.recommend(
                shopper.shopper_id, k=K, now=events[-1].timestamp)]
            pop_p.append(precision_at_k(pop_items, relevant, K))
            cf_p.append(precision_at_k(cf_items, relevant, K))
            gaze_p.append(precision_at_k(gaze_items, relevant, K))
        rows.append([history, float(np.mean(pop_p)),
                     float(np.mean(cf_p)), float(np.mean(gaze_p))])
    return rows


def bench_fig6_retail_gaze(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "F6  Figure 6: recommendation precision@5 vs behavioural data",
        ["history/user", "popularity (no big data)", "CF (big data)",
         "CF + gaze context"],
        rows,
        note="more behavioural data widens the personalization gap; "
             "gaze context adds on top of CF")
    pop = [r[1] for r in rows]
    cf = [r[2] for r in rows]
    gaze = [r[3] for r in rows]
    # With enough data, big data beats the generic overlay decisively.
    assert cf[-1] > pop[-1] * 1.5
    assert max(cf) > max(pop)
    # Gaze context performs on par with CF on holdout precision (its
    # benefit is in-trip targeting; it must at least not hurt on average).
    assert float(np.mean(gaze)) >= float(np.mean(cf)) - 0.02
    # CF improves sharply with history (the data-volume dividend); at
    # extreme history the seen-item exclusion exhausts the relevant
    # catalog for *every* recommender, which is why the curve bends.
    assert max(cf) > cf[0] * 1.5
    assert pop[-1] < pop[0]  # generic overlay only gets staler
