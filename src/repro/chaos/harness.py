"""Crash-consistent recovery harness for streaming jobs under chaos.

The harness runs a job the way a supervised production deployment
would: make progress, take an aligned checkpoint whenever quiescent,
and on a crash restore the last checkpoint and replay.  Sources rewind
by position (the event log replays by offset), so the recovery
invariant the whole chaos suite enforces is:

    for any seeded fault schedule, the sinks after recovery are
    **bit-identical** to the fault-free run.

``run_with_recovery`` is that supervisor loop; ``reference_job`` builds
the canonical pipeline (watermarks -> map -> filter -> key_by -> window
sum) used by the equivalence suites, and ``reference_events`` its
seeded input — shared here so tests, the robustness gate and benchmarks
all agree on what "the reference pipeline" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..streaming.element import Element
from ..streaming.graph import JobBuilder, JobGraph
from ..streaming.runtime import Executor
from ..streaming.windows import TumblingWindows
from ..util.errors import BrokerDown, ChaosError, OperatorCrash
from ..util.rng import make_rng
from .injector import FaultInjector
from .plan import FaultPlan

__all__ = ["RecoveryReport", "run_with_recovery", "reference_events",
           "reference_job", "reference_operator_names", "fault_free_sinks"]


@dataclass
class RecoveryReport:
    """What happened during a supervised run."""

    sink_values: dict[str, list[Any]]
    crashes: int = 0
    broker_faults: int = 0
    checkpoints: int = 0
    restores: int = 0
    trace: list = field(default_factory=list)

    @property
    def failures(self) -> int:
        return self.crashes + self.broker_faults


def run_with_recovery(job: JobGraph, injector: FaultInjector | None = None,
                      *, batch_mode: bool = True, chaining: bool = True,
                      parallelism: int | dict[str, int] | None = None,
                      source_batch: int = 64, checkpoint_every: int = 1,
                      max_failures: int = 1000, tracer: Any = None,
                      metrics: Any = None,
                      profiler: Any = None) -> RecoveryReport:
    """Run ``job`` to completion, checkpointing and restoring on faults.

    Catches :class:`OperatorCrash` (injected or organic operator death)
    and :class:`BrokerDown` (log-backed source hitting an unavailable
    partition; the retry advances the fault window) and restores the
    latest checkpoint.  ``max_failures`` bounds pathological plans —
    the deterministic schedule cannot re-fire a passed fault, so any
    finite plan terminates well below it.

    ``parallelism`` (``None`` = the classic single-instance executor)
    supervises a :class:`~repro.streaming.execution.ParallelExecutor`
    instead: same loop, same recovery invariant, but crash sites are
    per subtask (target ``"window_sum[1]"`` to kill one clone,
    ``"window_sum"`` to match any of them).

    ``tracer``/``metrics``/``profiler`` (duck-typed, see
    :mod:`repro.obs`) thread straight through to the executor; the
    harness adds a ``supervised`` span around the whole run with one
    event per crash/broker fault, so a chaos trace shows recovery
    structure, and reuses the profiler's registry for ``chaos.*``
    counters.
    """
    if parallelism is None:
        executor: Any = Executor(job, batch_mode=batch_mode,
                                 chaining=chaining, injector=injector,
                                 tracer=tracer, metrics=metrics,
                                 profiler=profiler)
    else:
        from ..streaming.execution import ParallelExecutor
        executor = ParallelExecutor(job, parallelism,
                                    batch_mode=batch_mode,
                                    chaining=chaining, injector=injector,
                                    tracer=tracer, metrics=metrics,
                                    profiler=profiler)
    report = RecoveryReport(sink_values={})
    supervised = (tracer.start_span(f"supervised:{job.name}")
                  if tracer is not None else None)

    def _check_budget() -> None:
        if report.failures > max_failures:
            raise ChaosError(
                f"gave up after {report.failures} failures; the fault "
                "plan appears to re-fire indefinitely")

    def _fault(kind: str) -> None:
        if supervised is not None:
            supervised.add_event("fault", kind=kind)
        if metrics is not None:
            metrics.counter("chaos.faults", kind=kind).inc()

    def _restore(checkpoint: Any) -> None:
        # Restoring a log-backed source re-reads the log, so the restore
        # itself can land in an unavailability window; the counters only
        # move forward, so retrying walks out of any finite window.
        while True:
            try:
                executor.restore(checkpoint)
            except BrokerDown:
                report.broker_faults += 1
                _fault("broker")
                _check_budget()
                continue
            report.restores += 1
            return

    def _supervise() -> None:
        # Checkpoint zero: the initial state is always a valid restore
        # point, so a crash before the first aligned snapshot restarts
        # from scratch.
        last: Any = executor.checkpoint()
        report.checkpoints += 1
        while True:
            try:
                executor.run(source_batch=source_batch,
                             max_cycles=checkpoint_every)
            except OperatorCrash:
                report.crashes += 1
                _fault("crash")
                _check_budget()
                _restore(last)
                continue
            except BrokerDown:
                report.broker_faults += 1
                _fault("broker")
                _check_budget()
                # The source fetch hit a fault window; restoring resets
                # in-flight state, then the retry re-reads the log.
                _restore(last)
                continue
            if executor.done:
                break
            last = executor.checkpoint()
            report.checkpoints += 1

    if supervised is not None:
        with tracer.activate(supervised):
            _supervise()
        supervised.set_attr("crashes", report.crashes)
        supervised.set_attr("broker_faults", report.broker_faults)
        supervised.set_attr("checkpoints", report.checkpoints)
        supervised.set_attr("restores", report.restores)
        supervised.end()
    else:
        _supervise()
    report.sink_values = {name: list(buf.values)
                          for name, buf in executor.sinks.items()}
    if injector is not None:
        report.trace = list(injector.trace)
    return report


# -- the reference pipeline -------------------------------------------------


def reference_events(seed: int = 0, n: int = 400,
                     keys: int = 4) -> list[Element]:
    """Seeded out-of-order keyed events for the reference pipeline."""
    rng = make_rng((int(seed), 0xE7E27))
    events = []
    for i in range(n):
        ts = float(i) * 0.25 + float(rng.uniform(-1.5, 1.5))
        events.append(Element(
            value={"k": int(rng.integers(0, keys)),
                   "v": float(rng.uniform(0.0, 10.0))},
            timestamp=max(0.0, ts)))
    return events


def reference_job(elements_or_source: Any,
                  max_lateness: float = 5.0,
                  window_s: float = 10.0) -> JobGraph:
    """watermarks -> map -> filter -> key_by -> window(sum) -> sink.

    The linear head is chainable, the window is a shuffle point, so one
    graph exercises per-item, batched and chained execution paths.
    """
    builder = JobBuilder("chaos-reference")
    (builder.source("events", elements_or_source)
            .with_watermarks(max_lateness, name="watermarks")
            .map(lambda v: {"k": v["k"], "v": v["v"] * 2.0}, name="double")
            .filter(lambda v: v["v"] >= 1.0, name="drop_tiny")
            .key_by(lambda v: v["k"], name="by_key")
            .window(TumblingWindows(window_s), "sum",
                    value_fn=lambda v: v["v"], name="window_sum")
            .sink("out"))
    return builder.build()


def reference_operator_names() -> tuple[str, ...]:
    """Crash targets in the reference job (kept in sync by tests)."""
    return ("watermarks", "double", "drop_tiny", "by_key", "window_sum")


def fault_free_sinks(build: Callable[[], JobGraph], *,
                     batch_mode: bool = True,
                     chaining: bool = True,
                     parallelism: int | dict[str, int] | None = None,
                     source_batch: int = 64) -> dict[str, list[Any]]:
    """The golden run: same job, no injector, straight execution."""
    if parallelism is None:
        executor: Any = Executor(build(), batch_mode=batch_mode,
                                 chaining=chaining)
    else:
        from ..streaming.execution import ParallelExecutor
        executor = ParallelExecutor(build(), parallelism,
                                    batch_mode=batch_mode,
                                    chaining=chaining)
    sinks = executor.run(source_batch=source_batch)
    return {name: list(buf.values) for name, buf in sinks.items()}
