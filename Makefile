# Single entry points for the repo's gates.  `make verify` is the full
# pre-merge check: tier-1 tests, the perf gate, and the chaos gate.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos perf robustness obs verify

test:  ## tier-1: fast unit/integration/property tests
	$(PYTHON) -m pytest -x -q

obs:  ## observability gate: span-tree completeness + overhead budget
	$(PYTHON) tools/check_obs.py

chaos:  ## fault-injection recovery suites (chaos + slow markers)
	$(PYTHON) -m pytest -q -m "chaos or slow"

perf:  ## throughput regression gate vs committed baseline
	$(PYTHON) tools/check_perf.py --skip-tests

robustness:  ## fixed-schedule crash-recovery smoke
	$(PYTHON) tools/check_robustness.py --skip-tests

verify: test perf obs chaos robustness
	@echo "verify: all gates passed"
