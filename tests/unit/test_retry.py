"""Retry policy, retrier and circuit breaker."""

import pytest

from repro.util.clock import SimClock
from repro.util.errors import CircuitOpen, ConfigError, RetryExhausted
from repro.util.retry import CircuitBreaker, Retrier, RetryPolicy, retry_call


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures, exc=RuntimeError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"failure {self.calls}")
        return "ok"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(deadline_s=-0.1)

    def test_delays_grow_exponentially_up_to_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=5.0, jitter=0.0)
        assert policy.delays(4) == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_seeded_and_deterministic(self):
        a = RetryPolicy(jitter=0.3, seed=42).delays(6)
        b = RetryPolicy(jitter=0.3, seed=42).delays(6)
        c = RetryPolicy(jitter=0.3, seed=43).delays(6)
        assert a == b
        assert a != c

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0,
                             max_delay_s=1.0, jitter=0.2, seed=5)
        for delay in policy.delays(50):
            assert 0.8 <= delay <= 1.2


class TestRetrier:
    def test_succeeds_after_transient_failures(self):
        fn = Flaky(3)
        retrier = Retrier(RetryPolicy(max_attempts=5, jitter=0.0))
        assert retrier.call(fn) == "ok"
        assert fn.calls == 4
        assert retrier.retries == 3

    def test_exhausts_attempts(self):
        fn = Flaky(100)
        retrier = Retrier(RetryPolicy(max_attempts=3, jitter=0.0))
        with pytest.raises(RetryExhausted) as info:
            retrier.call(fn)
        assert fn.calls == 3
        assert isinstance(info.value.last_error, RuntimeError)

    def test_non_matching_exception_propagates_immediately(self):
        fn = Flaky(2, exc=ValueError)
        retrier = Retrier(RetryPolicy(max_attempts=5))
        with pytest.raises(ValueError):
            retrier.call(fn, retry_on=(KeyError,))
        assert fn.calls == 1

    def test_deadline_bounds_total_backoff(self):
        # Delays 1, 2, 4, ...: the third retry would push past 4s.
        policy = RetryPolicy(max_attempts=10, base_delay_s=1.0,
                             multiplier=2.0, jitter=0.0, deadline_s=4.0)
        clock = SimClock()
        retrier = Retrier(policy, clock=clock)
        with pytest.raises(RetryExhausted) as info:
            retrier.call(Flaky(100))
        assert "deadline" in str(info.value)
        assert retrier.total_backoff_s == pytest.approx(3.0)
        assert clock.now == pytest.approx(3.0)

    def test_backoff_advances_sim_clock(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(max_attempts=4, base_delay_s=0.5,
                                      multiplier=2.0, jitter=0.0),
                          clock=clock)
        retrier.call(Flaky(3))
        assert clock.now == pytest.approx(0.5 + 1.0 + 2.0)

    def test_on_retry_hook_sees_each_failure(self):
        seen = []
        retrier = Retrier(RetryPolicy(max_attempts=4, jitter=0.0))
        retrier.call(Flaky(2),
                     on_retry=lambda attempt, exc: seen.append(attempt))
        assert seen == [1, 2]

    def test_retry_call_convenience(self):
        assert retry_call(Flaky(1),
                          RetryPolicy(max_attempts=2, jitter=0.0)) == "ok"


class TestCircuitBreaker:
    def _tripped(self, clock, threshold=3):
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 reset_timeout_s=10.0, clock=clock)
        for _ in range(threshold):
            breaker.record_failure()
        return breaker

    def test_trips_after_consecutive_failures(self):
        clock = SimClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_rejects_until_cooldown(self):
        clock = SimClock()
        breaker = self._tripped(clock)
        assert not breaker.allow()
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: "never runs")
        assert breaker.rejected == 1
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_success_closes(self):
        clock = SimClock()
        breaker = self._tripped(clock)
        clock.advance(10.0)
        assert breaker.call(lambda: "probe") == "probe"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        clock = SimClock()
        breaker = self._tripped(clock)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()

    def test_multiple_half_open_successes_required(self):
        clock = SimClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 half_open_successes=2, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = SimClock()
        breaker = self._tripped(clock)
        clock.advance(10.0)
        assert breaker.allow()  # the probe slot
        # while the probe is in flight, every other caller is refused
        assert not breaker.allow()
        assert not breaker.allow()
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: "should not run")
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_probe_failure_reopens_and_frees_the_slot(self):
        clock = SimClock()
        breaker = self._tripped(clock)
        clock.advance(10.0)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        # after the new cool-down, the slot is claimable again
        clock.advance(10.0)
        assert breaker.allow()
        assert not breaker.allow()

    def test_successive_probes_one_at_a_time(self):
        clock = SimClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 half_open_successes=2, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # second trial call needs its own slot claim — and gets it
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(reset_timeout_s=-1.0)
