"""Two-phase-commit sinks: staging, pre-commit, commit, abort, restore."""

import pytest

from repro.eventlog.broker import LogCluster, TopicConfig
from repro.streaming.element import Element
from repro.streaming.txn_sink import TransactionalLogSink, TransactionalSink
from repro.util.errors import CheckpointError

F0, F1 = ("up", 0), ("up", 1)


def _el(v, t=0.0, key=None):
    return Element(value=v, timestamp=t, key=key)


class TestTransactionalSink:
    def test_staged_output_is_invisible(self):
        sink = TransactionalSink("out", (F0,))
        sink.deliver([_el(1), _el(2)], F0)
        assert sink.values == []
        assert len(sink) == 0
        assert sink.uncommitted == 2

    def test_precommit_then_commit_makes_visible(self):
        sink = TransactionalSink("out", (F0,))
        sink.deliver([_el(1)], F0)
        cid = sink.on_barrier(F0, 1)
        assert cid == 1
        assert sink.values == []  # sealed, still invisible
        assert sink.commit(1) == 1
        assert sink.values == [1]
        assert sink.last_committed_id == 1

    def test_precommit_waits_for_all_feeders(self):
        sink = TransactionalSink("out", (F0, F1))
        sink.deliver([_el("a")], F0)
        assert sink.on_barrier(F0, 1) is None
        sink.deliver([_el("b")], F1)
        assert sink.on_barrier(F1, 1) == 1
        sink.commit(1)
        assert sink.values == ["a", "b"]

    def test_post_barrier_delivery_stages_into_next_txn(self):
        sink = TransactionalSink("out", (F0, F1))
        sink.on_barrier(F0, 1)
        # F0 already passed barrier 1: its output belongs to epoch 2
        sink.deliver([_el("late")], F0)
        sink.on_barrier(F1, 1)
        assert sink.pending[1] == []
        sink.commit(1)
        assert sink.values == []
        sink.on_barrier(F0, 2)
        sink.on_barrier(F1, 2)
        sink.commit(2)
        assert sink.values == ["late"]

    def test_abort_folds_back_into_open_txn(self):
        sink = TransactionalSink("out", (F0,))
        sink.deliver([_el(1)], F0)
        sink.on_barrier(F0, 1)
        sink.deliver([_el(2)], F0)
        sink.abort_pending(1)
        assert sink.values == []
        assert sink.aborts == 1
        # next successful checkpoint commits both, original order first
        sink.on_barrier(F0, 2)
        sink.commit(2)
        assert sink.values == [1, 2]

    def test_duplicate_and_stale_markers_ignored(self):
        sink = TransactionalSink("out", (F0, F1))
        sink.on_barrier(F0, 1)
        assert sink.on_barrier(F0, 1) is None  # duplicate
        sink.on_barrier(F1, 1)
        sink.commit(1)
        assert sink.on_barrier(F0, 1) is None  # stale, already committed
        assert sink.pre_commits == 1

    def test_overtaking_barrier_restarts_epoch(self):
        sink = TransactionalSink("out", (F0, F1))
        sink.deliver([_el("x")], F0)
        sink.on_barrier(F0, 1)
        sink.deliver([_el("y")], F0)  # staged-next behind barrier 1
        # checkpoint 1 abandoned; barrier 2 arrives everywhere
        assert sink.on_barrier(F0, 2) is None
        assert sink.on_barrier(F1, 2) == 2
        sink.commit(2)
        assert sink.values == ["x", "y"]

    def test_projected_committed_previews_phase2(self):
        sink = TransactionalSink("out", (F0,))
        sink.deliver([_el(1)], F0)
        sink.on_barrier(F0, 1)
        projected = sink.projected_committed(1)
        assert [e.value for e in projected] == [1]
        assert sink.values == []  # preview does not commit
        with pytest.raises(CheckpointError):
            sink.projected_committed(99)

    def test_commit_unknown_checkpoint_raises(self):
        sink = TransactionalSink("out", (F0,))
        with pytest.raises(CheckpointError):
            sink.commit(7)

    def test_restore_truncates_everything_in_flight(self):
        sink = TransactionalSink("out", (F0,))
        sink.deliver([_el(1)], F0)
        sink.on_barrier(F0, 1)
        sink.deliver([_el(2)], F0)
        sink.restore_elements([_el(10), _el(11)])
        assert sink.values == [10, 11]
        assert sink.uncommitted == 0
        assert sink.pending == {}

    def test_no_feeders_rejected(self):
        with pytest.raises(CheckpointError):
            TransactionalSink("out", ())


class TestTransactionalLogSink:
    def _cluster(self):
        cluster = LogCluster(num_brokers=3)
        cluster.create_topic(TopicConfig("mirror", partitions=2,
                                         replication=2))
        return cluster

    def _log_values(self, cluster):
        values = []
        for p in range(cluster.partition_count("mirror")):
            for _offset, record in cluster.read("mirror", p, 0,
                                                max_records=10_000):
                values.append(record.value)
        return values

    def test_appends_only_the_delta(self):
        cluster = self._cluster()
        log = TransactionalLogSink(cluster, "mirror", "out")
        committed = [_el("a", key="k"), _el("b", key="k")]
        assert log.on_checkpoint_committed(1, committed) == 2
        committed = committed + [_el("c", key="k")]
        assert log.on_checkpoint_committed(2, committed) == 1
        assert sorted(self._log_values(cluster)) == ["a", "b", "c"]

    def test_replayed_commit_is_a_noop(self):
        cluster = self._cluster()
        log = TransactionalLogSink(cluster, "mirror", "out")
        committed = [_el("a", key="k")]
        log.on_checkpoint_committed(1, committed)
        assert log.on_checkpoint_committed(1, committed) == 0
        assert self._log_values(cluster) == ["a"]

    def test_fence_rederives_resume_point_from_log(self):
        cluster = self._cluster()
        log = TransactionalLogSink(cluster, "mirror", "out", producer_id=7)
        committed = [_el("a", key="k"), _el("b", key="k")]
        log.on_checkpoint_committed(1, committed)
        # new incarnation after a crash: resume point comes from the
        # topic itself, so the replayed commit appends nothing
        revived = TransactionalLogSink(cluster, "mirror", "out",
                                       producer_id=7)
        epoch = revived.fence()
        assert epoch >= 1
        assert revived.on_checkpoint_committed(1, committed) == 0
        committed = committed + [_el("c", key="k")]
        assert revived.on_checkpoint_committed(2, committed) == 1
        assert sorted(self._log_values(cluster)) == ["a", "b", "c"]
