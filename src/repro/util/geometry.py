"""Small shared geometry helpers (2-D points, rectangles).

The vision, sensors and render subsystems all need axis-aligned
rectangles and point containment; keeping one implementation here avoids
three subtly different ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Rect", "clamp"]


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle: (x, y) is the min corner."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError("Rect width/height must be non-negative")

    @property
    def x2(self) -> float:
        return self.x + self.width

    @property
    def y2(self) -> float:
        return self.y + self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def contains(self, px: float, py: float) -> bool:
        return self.x <= px <= self.x2 and self.y <= py <= self.y2

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.x >= self.x2
            or other.x2 <= self.x
            or other.y >= self.y2
            or other.y2 <= self.y
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x1 or y2 <= y1:
            return None
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def union_bounds(self, other: "Rect") -> "Rect":
        x1 = min(self.x, other.x)
        y1 = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def iou(self, other: "Rect") -> float:
        """Intersection-over-union; 0.0 when disjoint."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        union = self.area + other.area - inter.area
        return inter.area / union if union > 0 else 0.0

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y, self.width, self.height], dtype=float)
