"""Dataflow operators.

Every operator transforms a stream item into zero or more output items
via :meth:`Operator.process` (for elements) and
:meth:`Operator.on_watermark` (for watermarks).  Watermarks flow through
stateless operators untouched; stateful event-time operators (windows,
joins) react to them.

Operators expose ``snapshot``/``restore`` so the checkpoint coordinator
can capture the whole job — stateless operators return ``None``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..util.errors import StreamError
from .element import Element, StreamItem, Watermark
from .state import KeyedState

__all__ = [
    "Operator",
    "MapOperator",
    "FilterOperator",
    "FlatMapOperator",
    "KeyByOperator",
    "ReduceOperator",
    "TimestampAssigner",
    "WatermarkGenerator",
]


class Operator:
    """Base operator.  Subclasses override ``process``/``on_watermark``."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.processed = 0
        self.emitted = 0

    def handle(self, item: StreamItem) -> list[StreamItem]:
        """Dispatch an item; maintains counters."""
        if isinstance(item, Watermark):
            out = self.on_watermark(item)
        else:
            self.processed += 1
            out = self.process(item)
        self.emitted += sum(1 for o in out if isinstance(o, Element))
        return out

    def process(self, element: Element) -> list[StreamItem]:
        raise NotImplementedError

    def on_watermark(self, watermark: Watermark) -> list[StreamItem]:
        """Default: forward the watermark unchanged."""
        return [watermark]

    def flush(self) -> list[StreamItem]:
        """Emit whatever is pending at end-of-stream (default: nothing)."""
        return []

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Any:
        return None

    def restore(self, snapshot: Any) -> None:
        if snapshot is not None:
            raise StreamError(
                f"operator {self.name!r} is stateless but got a snapshot"
            )


class MapOperator(Operator):
    """1-to-1 value transform."""

    def __init__(self, name: str, fn: Callable[[Any], Any]) -> None:
        super().__init__(name)
        self.fn = fn

    def process(self, element: Element) -> list[StreamItem]:
        return [element.with_value(self.fn(element.value))]


class FilterOperator(Operator):
    """Keep elements whose value satisfies the predicate."""

    def __init__(self, name: str, predicate: Callable[[Any], bool]) -> None:
        super().__init__(name)
        self.predicate = predicate

    def process(self, element: Element) -> list[StreamItem]:
        return [element] if self.predicate(element.value) else []


class FlatMapOperator(Operator):
    """1-to-N value transform."""

    def __init__(self, name: str, fn: Callable[[Any], Iterable[Any]]) -> None:
        super().__init__(name)
        self.fn = fn

    def process(self, element: Element) -> list[StreamItem]:
        return [element.with_value(v) for v in self.fn(element.value)]


class KeyByOperator(Operator):
    """Assign a partitioning key extracted from the value."""

    def __init__(self, name: str, key_fn: Callable[[Any], Any]) -> None:
        super().__init__(name)
        self.key_fn = key_fn

    def process(self, element: Element) -> list[StreamItem]:
        return [element.with_key(self.key_fn(element.value))]


class ReduceOperator(Operator):
    """Keyed running reduce: emits the accumulated value per element.

    Requires keyed input (a ``KeyByOperator`` upstream); raises otherwise
    — silently reducing a keyless stream is a classic correctness trap.
    """

    def __init__(self, name: str,
                 reduce_fn: Callable[[Any, Any], Any]) -> None:
        super().__init__(name)
        self.reduce_fn = reduce_fn
        self._state = KeyedState()

    def process(self, element: Element) -> list[StreamItem]:
        if element.key is None:
            raise StreamError(
                f"reduce {self.name!r} requires keyed input; add key_by()"
            )
        if element.key in self._state:
            acc = self.reduce_fn(self._state.get(element.key), element.value)
        else:
            acc = element.value
        self._state.put(element.key, acc)
        return [element.with_value(acc)]

    def snapshot(self) -> Any:
        return self._state.snapshot()

    def restore(self, snapshot: Any) -> None:
        self._state.restore(snapshot or {})


class TimestampAssigner(Operator):
    """Rewrite element timestamps from a field of the value."""

    def __init__(self, name: str, ts_fn: Callable[[Any], float]) -> None:
        super().__init__(name)
        self.ts_fn = ts_fn

    def process(self, element: Element) -> list[StreamItem]:
        return [Element(value=element.value, timestamp=float(
            self.ts_fn(element.value)), key=element.key)]


class WatermarkGenerator(Operator):
    """Bounded-out-of-orderness watermarks.

    Tracks the max event timestamp seen and periodically (every
    ``emit_every`` elements) emits ``Watermark(max_ts - max_lateness)``.
    Incoming watermarks are swallowed — this operator is the authority
    downstream of it.
    """

    def __init__(self, name: str, max_lateness: float,
                 emit_every: int = 1) -> None:
        super().__init__(name)
        if max_lateness < 0:
            raise StreamError("max_lateness must be non-negative")
        if emit_every < 1:
            raise StreamError("emit_every must be >= 1")
        self.max_lateness = max_lateness
        self.emit_every = emit_every
        self._max_ts = float("-inf")
        self._since_emit = 0
        self._last_wm = float("-inf")

    def process(self, element: Element) -> list[StreamItem]:
        self._max_ts = max(self._max_ts, element.timestamp)
        self._since_emit += 1
        out: list[StreamItem] = [element]
        if self._since_emit >= self.emit_every:
            self._since_emit = 0
            wm = self._max_ts - self.max_lateness
            if wm > self._last_wm:
                self._last_wm = wm
                out.append(Watermark(wm))
        return out

    def on_watermark(self, watermark: Watermark) -> list[StreamItem]:
        return []  # swallow upstream watermarks; we generate our own

    def flush(self) -> list[StreamItem]:
        """End of stream: release everything with a final watermark."""
        if self._max_ts == float("-inf"):
            return []
        return [Watermark(float("inf"))]

    def snapshot(self) -> Any:
        return {"max_ts": self._max_ts, "last_wm": self._last_wm,
                "since": self._since_emit}

    def restore(self, snapshot: Any) -> None:
        snapshot = snapshot or {}
        self._max_ts = snapshot.get("max_ts", float("-inf"))
        self._last_wm = snapshot.get("last_wm", float("-inf"))
        self._since_emit = snapshot.get("since", 0)
