"""Unit tests: workload generators."""

import numpy as np
import pytest

from repro.datagen import (
    Building,
    Episode,
    ExcavationSite,
    MobilityConfig,
    RetailWorld,
    RingRoadSim,
    SensorGrid,
    SocialStreamConfig,
    WindField,
    generate_patients,
    generate_population,
    generate_posts,
    generate_trace,
    vitals_stream,
)
from repro.util.errors import ConfigError
from repro.util.rng import make_rng


class TestMobility:
    def test_trace_shape_and_bounds(self):
        config = MobilityConfig(steps=100, area_m=1000.0)
        trace = generate_trace("u", make_rng(0), config)
        assert len(trace) == 100
        assert trace.xs.min() >= 0 and trace.xs.max() <= 1000.0
        assert trace.ys.min() >= 0 and trace.ys.max() <= 1000.0
        assert np.all(np.diff(trace.ts) == config.dt_s)

    def test_jumps_heavy_tailed(self):
        config = MobilityConfig(steps=2000, return_prob=0.0,
                                min_jump_m=5.0, max_jump_m=2000.0,
                                area_m=100000.0)
        trace = generate_trace("u", make_rng(1), config)
        jumps = trace.displacement_m
        jumps = jumps[jumps > 0]
        # Heavy tail: the max jump dwarfs the median.
        assert np.max(jumps) > 20 * np.median(jumps)

    def test_returns_create_revisits(self):
        config = MobilityConfig(steps=300, return_prob=0.6, num_anchors=2)
        trace = generate_trace("u", make_rng(2), config)
        # Discretize into 100 m cells; returns concentrate visits.
        cells = {(int(x // 100), int(y // 100))
                 for x, y in zip(trace.xs, trace.ys)}
        assert len(cells) < 150  # far fewer cells than steps

    def test_population_unique_users(self):
        traces = generate_population(5, make_rng(3))
        assert len({t.user for t in traces}) == 5

    def test_determinism(self):
        a = generate_trace("u", make_rng(7))
        b = generate_trace("u", make_rng(7))
        assert np.array_equal(a.xs, b.xs)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            MobilityConfig(min_jump_m=10.0, max_jump_m=5.0)


class TestRetailWorld:
    def test_generation_counts(self):
        world = RetailWorld.generate(make_rng(0), num_products=50,
                                     num_categories=5, num_shoppers=20)
        assert len(world.products) == 50
        assert len(world.shoppers) == 20
        assert len(world.categories) == 5
        for shopper in world.shoppers:
            assert shopper.preferences.sum() == pytest.approx(1.0)

    def test_interactions_follow_preferences(self):
        rng = make_rng(1)
        world = RetailWorld.generate(rng, num_products=50,
                                     num_categories=5, num_shoppers=1,
                                     preference_concentration=0.05)
        shopper = world.shoppers[0]
        favourite = world.categories[int(np.argmax(shopper.preferences))]
        interactions = world.interactions(rng, events_per_shopper=200)
        by_product = {p.product_id: p.category for p in world.products}
        favourite_share = np.mean([
            by_product[i.item] == favourite for i in interactions])
        # Uniform would give 0.2 across 5 categories; the favourite
        # must dominate well above that.
        assert favourite_share > 0.35

    def test_gaze_stream_ordered(self):
        rng = make_rng(2)
        world = RetailWorld.generate(rng, num_shoppers=1)
        events = world.gaze_stream(rng, world.shoppers[0], n_events=10)
        times = [e.timestamp for e in events]
        assert times == sorted(times)

    def test_too_few_products_rejected(self):
        with pytest.raises(ConfigError):
            RetailWorld.generate(make_rng(0), num_products=3,
                                 num_categories=10)


class TestHealth:
    def test_patients_have_scripted_episodes(self):
        patients = generate_patients(make_rng(3), n=30, episode_rate=1.0)
        assert len(patients) == 30
        assert any(p.episodes for p in patients)

    def test_vitals_stable_without_episode(self):
        patients = generate_patients(make_rng(4), n=1, episode_rate=0.0)
        samples = vitals_stream(patients[0], make_rng(5),
                                horizon_s=600, period_s=5)
        hr = [s.value for s in samples if s.vital == "heart_rate"]
        assert 50 < np.mean(hr) < 95
        assert np.std(hr) < 15

    def test_episode_shifts_vital(self):
        patients = generate_patients(make_rng(6), n=1, episode_rate=0.0)
        patient = patients[0]
        patient.episodes.append(Episode(vital="heart_rate", onset_s=300.0,
                                        end_s=600.0, magnitude=60.0,
                                        ramp_s=60.0))
        samples = vitals_stream(patient, make_rng(7), horizon_s=600,
                                period_s=5)
        hr_before = [s.value for s in samples
                     if s.vital == "heart_rate" and s.timestamp < 250]
        hr_during = [s.value for s in samples
                     if s.vital == "heart_rate" and s.timestamp > 400]
        assert np.mean(hr_during) - np.mean(hr_before) > 30

    def test_episode_validation(self):
        with pytest.raises(ConfigError):
            Episode(vital="heart_rate", onset_s=100.0, end_s=50.0,
                    magnitude=10.0)
        with pytest.raises(ConfigError):
            Episode(vital="bogus", onset_s=0.0, end_s=10.0, magnitude=1.0)

    def test_stream_sorted_by_time(self):
        patients = generate_patients(make_rng(8), n=1)
        samples = vitals_stream(patients[0], make_rng(9), horizon_s=120,
                                period_s=10)
        times = [s.timestamp for s in samples]
        assert times == sorted(times)


class TestTraffic:
    def test_free_flow_reaches_desired_speed(self):
        sim = RingRoadSim(make_rng(10), num_vehicles=10,
                          ring_length_m=5000.0, desired_speed=14.0)
        for _ in range(600):
            sim.step(0.5)
        speeds = [s.speed_mps for s in sim.states()]
        assert np.mean(speeds) > 11.0

    def test_slowdown_propagates_upstream(self):
        sim = RingRoadSim(make_rng(11), num_vehicles=30,
                          ring_length_m=2000.0)
        sim.force_slowdown(10, start_s=5.0, end_s=60.0, speed_mps=0.5)
        for _ in range(100):  # run to t=50, mid-incident
            sim.step(0.5)
        speeds = np.array([s.speed_mps for s in sim.states()])
        # Followers (behind index 10) should be slowed too.
        upstream = [speeds[(10 - j) % 30] for j in range(1, 4)]
        assert min(upstream) < 5.0

    def test_positions_stay_on_ring(self):
        sim = RingRoadSim(make_rng(12), num_vehicles=5,
                          ring_length_m=1000.0)
        for _ in range(200):
            sim.step(0.5)
        assert all(0 <= s.s_m < 1000.0 for s in sim.states())

    def test_beacons_match_states(self):
        sim = RingRoadSim(make_rng(13), num_vehicles=5)
        beacons = sim.beacons()
        assert len(beacons) == 5
        radius = sim.ring / (2 * np.pi)
        for beacon in beacons:
            assert np.hypot(beacon.x, beacon.y) == pytest.approx(radius)

    def test_too_short_ring_rejected(self):
        with pytest.raises(ConfigError):
            RingRoadSim(make_rng(0), num_vehicles=100, ring_length_m=100.0)


class TestSocial:
    def _pois(self, n=20):
        rng = make_rng(14)
        return [(f"poi-{i}", float(rng.uniform(0, 1000)),
                 float(rng.uniform(0, 1000))) for i in range(n)]

    def test_poisson_volume(self):
        config = SocialStreamConfig(rate_per_s=2.0, horizon_s=500.0)
        posts = generate_posts(make_rng(15), self._pois(), config)
        assert 800 < len(posts) < 1200

    def test_zipf_concentration(self):
        config = SocialStreamConfig(rate_per_s=5.0, horizon_s=400.0,
                                    zipf_s=1.5, tagged_fraction=1.0)
        posts = generate_posts(make_rng(16), self._pois(), config)
        counts = {}
        for post in posts:
            counts[post.poi_id] = counts.get(post.poi_id, 0) + 1
        top = max(counts.values())
        assert top > len(posts) * 0.2  # head POI dominates

    def test_tagged_fraction(self):
        config = SocialStreamConfig(tagged_fraction=0.5, rate_per_s=5.0,
                                    horizon_s=200.0)
        posts = generate_posts(make_rng(17), self._pois(), config)
        tagged = np.mean([p.poi_id is not None for p in posts])
        assert tagged == pytest.approx(0.5, abs=0.1)

    def test_timestamps_increasing(self):
        posts = generate_posts(make_rng(18), self._pois())
        times = [p.timestamp for p in posts]
        assert times == sorted(times)


class TestBuildings:
    def test_wind_zero_inside_building(self):
        field = WindField([Building("b", 50.0, 50.0, 10.0, 30.0)])
        assert field.velocity(50.0, 50.0) == (0.0, 0.0)

    def test_wind_approaches_freestream_far_away(self):
        field = WindField([Building("b", 50.0, 50.0, 10.0, 30.0)],
                          free_stream=(5.0, 0.0))
        vx, vy = field.velocity(50.0, 5000.0)
        assert vx == pytest.approx(5.0, abs=0.01)
        assert vy == pytest.approx(0.0, abs=0.01)

    def test_building_deflects_flow(self):
        field = WindField([Building("b", 50.0, 50.0, 10.0, 30.0)],
                          free_stream=(5.0, 0.0))
        # Beside the cylinder the flow accelerates (potential flow).
        vx_side, _ = field.velocity(50.0, 50.0 + 10.5)
        assert vx_side > 5.0

    def test_stream_samples_shape(self):
        field = WindField([])
        samples = field.stream_samples(make_rng(19), 100,
                                       (0, 0, 100, 100))
        assert len(samples) == 100
        assert {"sensor", "t", "x", "y", "vx", "vy"} <= set(samples[0])

    def test_excavation_progress_monotone(self):
        site = ExcavationSite(make_rng(20))
        progresses = [site.progress]
        for _ in range(10):
            site.excavate_day(fraction=0.2)
            progresses.append(site.progress)
        assert progresses[-1] > progresses[0]
        assert progresses == sorted(progresses)

    def test_excavation_deviation_shrinks(self):
        site = ExcavationSite(make_rng(21))
        before = site.deviation_cells()
        for _ in range(20):
            site.excavate_day(fraction=0.3, noise_m=0.05)
        assert site.deviation_cells() < before

    def test_sensor_grid_hot_spot_visible(self):
        grid = SensorGrid(make_rng(22), nx=10, ny=8)
        grid.add_hot_spot(5, 4, delta_c=15.0)
        readings = grid.read_all(t=0.0, noise_c=0.01)
        by_sensor = {r["sensor"]: r["value"] for r in readings}
        hot = by_sensor["temp-05-04"]
        cold = by_sensor["temp-00-00"]
        assert hot - cold > 8.0
