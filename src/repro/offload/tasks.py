"""Offloadable task and pipeline models.

An AR frame is a pipeline of stages (CloudRiDAR decomposition): acquire
-> detect -> describe -> match -> estimate pose -> render.  Each stage
has a compute cost in cycles and an output size in bytes; cutting the
pipeline after stage *i* uploads stage *i*'s output, runs the remaining
compute-heavy stages remotely and downloads the (small) pose result.

``vision_pipeline`` builds a profile from measured tracker workload
(:class:`repro.vision.tracker.StageProfile`), so the offload experiments
are priced from the same vision code the registration experiments run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import OffloadError
from ..vision.tracker import StageProfile

__all__ = ["TaskStage", "Pipeline", "vision_pipeline"]


@dataclass(frozen=True)
class TaskStage:
    """One pipeline stage.

    cycles        compute cost
    output_bytes  data produced (what crossing the network here costs)
    pinned        'device' pins the stage to the device (camera, display),
                  None means it may run anywhere
    """

    name: str
    cycles: float
    output_bytes: float
    pinned: str | None = None

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.output_bytes < 0:
            raise OffloadError("cycles and output_bytes must be >= 0")


@dataclass(frozen=True)
class Pipeline:
    """An ordered stage list with cut-point semantics."""

    name: str
    stages: tuple[TaskStage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise OffloadError("pipeline needs at least one stage")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise OffloadError("duplicate stage names")

    @property
    def total_cycles(self) -> float:
        return sum(s.cycles for s in self.stages)

    def valid_cuts(self) -> list[int]:
        """Cut k means stages [0, k) local and [k, n) remote, except
        stages pinned to the device, which force the cut around them:
        a leading pinned prefix must stay local, a trailing pinned suffix
        (display/render) always runs locally after results return.

        Returns every k (0..n) consistent with pinning; k == n is the
        all-local plan.
        """
        n = len(self.stages)
        first_free = 0
        while first_free < n and self.stages[first_free].pinned == "device":
            first_free += 1
        last_free = n
        while last_free > first_free and self.stages[last_free - 1].pinned \
                == "device":
            last_free -= 1
        for stage in self.stages[first_free:last_free]:
            if stage.pinned == "device":
                raise OffloadError(
                    f"stage {stage.name!r} pinned mid-pipeline; cannot cut")
        return list(range(first_free, last_free + 1))

    def remote_cycles(self, cut: int) -> float:
        """Cycles executed remotely for cut k (respecting pinned tail)."""
        cuts = self.valid_cuts()
        if cut not in cuts:
            raise OffloadError(f"invalid cut {cut} (valid: {cuts})")
        last_free = max(cuts)
        return sum(s.cycles for s in self.stages[cut:last_free])

    def local_cycles(self, cut: int) -> float:
        return self.total_cycles - self.remote_cycles(cut)

    def upload_bytes(self, cut: int) -> float:
        """Bytes crossing the network at cut k (0 when all-local)."""
        cuts = self.valid_cuts()
        if cut not in cuts:
            raise OffloadError(f"invalid cut {cut} (valid: {cuts})")
        if cut >= max(cuts):
            return 0.0
        if cut == 0:
            # Nothing ran locally yet; the raw input of stage 0 must be
            # shipped — approximate with stage 0's output (acquire
            # produces the frame).
            return self.stages[0].output_bytes
        return self.stages[cut - 1].output_bytes


# Cycle-cost coefficients for the vision stages, calibrated so a mid
#-range phone (~2 GHz effective) tracks a 320x240 frame in tens of ms —
# the regime where the paper's timeliness challenge is real.
_CYCLES_PER_PIXEL_ACQ = 8.0
_CYCLES_PER_PIXEL_DETECT = 180.0
_CYCLES_PER_FEATURE_DESCRIBE = 9_000.0
_CYCLES_PER_FEATURE_MATCH = 22_000.0
_CYCLES_PER_RANSAC_ITER = 60_000.0
_CYCLES_RENDER = 4e6

_BYTES_PER_PIXEL = 1.0
_BYTES_PER_FEATURE = 40.0  # descriptor + keypoint
_POSE_BYTES = 128.0


def vision_pipeline(profile: StageProfile,
                    name: str = "ar-frame") -> Pipeline:
    """Build the offloadable AR frame pipeline from measured workload."""
    pixels = max(1, profile.pixels)
    features = max(1, profile.features)
    ransac_iters = max(1, profile.ransac_iterations)
    stages = (
        TaskStage("acquire", cycles=_CYCLES_PER_PIXEL_ACQ * pixels,
                  output_bytes=_BYTES_PER_PIXEL * pixels, pinned="device"),
        TaskStage("detect", cycles=_CYCLES_PER_PIXEL_DETECT * pixels,
                  output_bytes=_BYTES_PER_FEATURE * features),
        TaskStage("describe",
                  cycles=_CYCLES_PER_FEATURE_DESCRIBE * features,
                  output_bytes=_BYTES_PER_FEATURE * features),
        TaskStage("match", cycles=_CYCLES_PER_FEATURE_MATCH * features,
                  output_bytes=_POSE_BYTES * 4),
        TaskStage("estimate_pose",
                  cycles=_CYCLES_PER_RANSAC_ITER * ransac_iters,
                  output_bytes=_POSE_BYTES),
        TaskStage("render", cycles=_CYCLES_RENDER,
                  output_bytes=_BYTES_PER_PIXEL * pixels, pinned="device"),
    )
    return Pipeline(name=name, stages=stages)
