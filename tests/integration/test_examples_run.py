"""Integration: every example script runs to completion.

Examples are documentation that executes; this guards them against
bit-rot.  Each is run in-process via runpy with a fresh __main__.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent.parent \
    / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestExamplesRun:
    @pytest.mark.parametrize("script", EXAMPLES)
    def test_example_runs(self, script, capsys):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip(), f"{script} printed nothing"

    def test_all_examples_discovered(self):
        # The suite must cover the documented example set.
        expected = {
            "quickstart.py", "retail_store.py", "tourism_city_guide.py",
            "healthcare_ward.py", "smart_city.py",
            "ar_tracking_offload.py", "data_analyst_workspace.py",
            "ar_classroom.py",
        }
        assert expected <= set(EXAMPLES)
