"""Retail workload: catalog, shoppers, transactions, gaze streams.

The Section-3.1 scenario made generative: a product catalog with Zipf
popularity and category structure; shoppers with latent category
preferences; interaction streams (views, gaze dwells, purchases) whose
statistics reward collaborative filtering over global popularity — the
property the F6 experiment rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analytics.recommend import Interaction
from ..util.errors import ConfigError

__all__ = ["Product", "Shopper", "RetailWorld", "GazeEvent"]


@dataclass(frozen=True)
class Product:
    product_id: str
    category: str
    price: float
    # shelf position in store-local metres
    x: float
    y: float
    z: float


@dataclass(frozen=True)
class GazeEvent:
    """One gaze dwell on a product (eye-tracking stream of Figure 6)."""

    user: str
    product_id: str
    timestamp: float
    dwell_s: float


@dataclass
class Shopper:
    shopper_id: str
    preferences: np.ndarray  # over categories, sums to 1
    position: tuple[float, float] = (0.0, 0.0)


@dataclass
class RetailWorld:
    """A generated store: products, shoppers, and their ground truth."""

    products: list[Product]
    shoppers: list[Shopper]
    categories: list[str]
    _by_category: dict[str, list[Product]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_category:
            for product in self.products:
                self._by_category.setdefault(product.category, []).append(
                    product)

    @staticmethod
    def generate(rng: np.random.Generator, num_products: int = 200,
                 num_categories: int = 10, num_shoppers: int = 100,
                 store_m: float = 50.0,
                 preference_concentration: float = 0.3) -> "RetailWorld":
        """Build a store.

        ``preference_concentration`` is the Dirichlet alpha: small values
        give each shopper a few loved categories (strong CF signal),
        large values make everyone identical (no CF signal).
        """
        if num_products < num_categories:
            raise ConfigError("need at least one product per category")
        categories = [f"cat-{c:02d}" for c in range(num_categories)]
        products = []
        for i in range(num_products):
            category = categories[i % num_categories]
            products.append(Product(
                product_id=f"p-{i:04d}",
                category=category,
                price=float(np.round(rng.uniform(1.0, 200.0), 2)),
                x=float(rng.uniform(0, store_m)),
                y=float(rng.uniform(0, store_m)),
                z=float(rng.uniform(0.2, 1.8)),
            ))
        shoppers = []
        for s in range(num_shoppers):
            prefs = rng.dirichlet(
                np.full(num_categories, preference_concentration))
            shoppers.append(Shopper(shopper_id=f"s-{s:04d}",
                                    preferences=prefs))
        return RetailWorld(products=products, shoppers=shoppers,
                           categories=categories)

    def by_category(self, category: str) -> list[Product]:
        return self._by_category.get(category, [])

    def _sample_product(self, rng: np.random.Generator,
                        shopper: Shopper, zipf_s: float) -> Product:
        """Category by preference, then product by within-category Zipf."""
        cat_idx = int(rng.choice(len(self.categories),
                                 p=shopper.preferences))
        pool = self.by_category(self.categories[cat_idx])
        ranks = np.arange(1, len(pool) + 1, dtype=float)
        weights = ranks ** -zipf_s
        weights /= weights.sum()
        return pool[int(rng.choice(len(pool), p=weights))]

    def interactions(self, rng: np.random.Generator,
                     events_per_shopper: int = 30,
                     zipf_s: float = 1.1,
                     start_time: float = 0.0,
                     dt_s: float = 20.0) -> list[Interaction]:
        """Historical interaction log (training data for recommenders)."""
        out: list[Interaction] = []
        t = start_time
        for shopper in self.shoppers:
            for _ in range(events_per_shopper):
                product = self._sample_product(rng, shopper, zipf_s)
                out.append(Interaction(user=shopper.shopper_id,
                                       item=product.product_id,
                                       weight=1.0, timestamp=t))
                t += dt_s
        return out

    def holdout_relevant(self, rng: np.random.Generator, shopper: Shopper,
                         n: int = 20, zipf_s: float = 1.1) -> set[str]:
        """Future-relevant products for a shopper (evaluation ground
        truth, drawn from the same preference process)."""
        return {self._sample_product(rng, shopper, zipf_s).product_id
                for _ in range(n)}

    def gaze_stream(self, rng: np.random.Generator, shopper: Shopper,
                    n_events: int = 10, zipf_s: float = 1.1,
                    start_time: float = 0.0) -> list[GazeEvent]:
        """Gaze dwells follow the shopper's true preferences."""
        events = []
        t = start_time
        for _ in range(n_events):
            product = self._sample_product(rng, shopper, zipf_s)
            dwell = float(rng.exponential(1.5))
            events.append(GazeEvent(user=shopper.shopper_id,
                                    product_id=product.product_id,
                                    timestamp=t, dwell_s=dwell))
            t += dwell + float(rng.exponential(3.0))
        return events
