"""Pinhole camera model and rigid poses.

The geometric foundation of AR registration: intrinsics project camera-
frame points to pixels; a :class:`Pose` (world->camera rigid transform)
places the camera in the world.  Convention: right-handed world, camera
looks down +Z in its own frame, image origin top-left, x right, y down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import CalibrationError

__all__ = ["CameraIntrinsics", "Pose", "look_at"]


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics (no distortion; AR SDK calibration assumed)."""

    fx: float
    fy: float
    cx: float
    cy: float
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.fx <= 0 or self.fy <= 0:
            raise CalibrationError("focal lengths must be positive")
        if self.width <= 0 or self.height <= 0:
            raise CalibrationError("image size must be positive")

    @property
    def matrix(self) -> np.ndarray:
        return np.array([
            [self.fx, 0.0, self.cx],
            [0.0, self.fy, self.cy],
            [0.0, 0.0, 1.0],
        ])

    def project(self, points_cam: np.ndarray) -> np.ndarray:
        """Project Nx3 camera-frame points to Nx2 pixels.

        Points with z <= 0 (behind the camera) map to NaN.
        """
        points_cam = np.atleast_2d(np.asarray(points_cam, dtype=float))
        if points_cam.shape[1] != 3:
            raise CalibrationError("project expects Nx3 points")
        z = points_cam[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = self.fx * points_cam[:, 0] / z + self.cx
            v = self.fy * points_cam[:, 1] / z + self.cy
        pixels = np.stack([u, v], axis=1)
        pixels[z <= 0] = np.nan
        return pixels

    def unproject(self, pixels: np.ndarray, depth: np.ndarray) -> np.ndarray:
        """Back-project Nx2 pixels at given depths to Nx3 camera points."""
        pixels = np.atleast_2d(np.asarray(pixels, dtype=float))
        depth = np.asarray(depth, dtype=float).reshape(-1)
        x = (pixels[:, 0] - self.cx) / self.fx * depth
        y = (pixels[:, 1] - self.cy) / self.fy * depth
        return np.stack([x, y, depth], axis=1)

    def in_view(self, pixels: np.ndarray) -> np.ndarray:
        """Boolean mask of pixels inside the image."""
        pixels = np.atleast_2d(pixels)
        return ((pixels[:, 0] >= 0) & (pixels[:, 0] < self.width)
                & (pixels[:, 1] >= 0) & (pixels[:, 1] < self.height)
                & np.isfinite(pixels).all(axis=1))


@dataclass(frozen=True)
class Pose:
    """World->camera rigid transform: x_cam = R @ x_world + t."""

    rotation: np.ndarray  # 3x3
    translation: np.ndarray  # 3

    def __post_init__(self) -> None:
        r = np.asarray(self.rotation, dtype=float)
        t = np.asarray(self.translation, dtype=float).reshape(3)
        if r.shape != (3, 3):
            raise CalibrationError("rotation must be 3x3")
        if not np.allclose(r @ r.T, np.eye(3), atol=1e-6):
            raise CalibrationError("rotation must be orthonormal")
        object.__setattr__(self, "rotation", r)
        object.__setattr__(self, "translation", t)

    @staticmethod
    def identity() -> "Pose":
        return Pose(np.eye(3), np.zeros(3))

    def transform(self, points_world: np.ndarray) -> np.ndarray:
        """World -> camera frame for Nx3 points."""
        points_world = np.atleast_2d(np.asarray(points_world, dtype=float))
        return points_world @ self.rotation.T + self.translation

    def inverse(self) -> "Pose":
        r_inv = self.rotation.T
        return Pose(r_inv, -r_inv @ self.translation)

    def compose(self, other: "Pose") -> "Pose":
        """self ∘ other: apply ``other`` first, then ``self``."""
        return Pose(self.rotation @ other.rotation,
                    self.rotation @ other.translation + self.translation)

    @property
    def camera_center(self) -> np.ndarray:
        """Camera position in world coordinates."""
        return -self.rotation.T @ self.translation

    def rotation_angle_to(self, other: "Pose") -> float:
        """Geodesic rotation distance in radians."""
        r_rel = self.rotation.T @ other.rotation
        cos_angle = (np.trace(r_rel) - 1.0) / 2.0
        return float(np.arccos(np.clip(cos_angle, -1.0, 1.0)))

    def translation_distance_to(self, other: "Pose") -> float:
        return float(np.linalg.norm(self.camera_center - other.camera_center))


def look_at(eye: np.ndarray, target: np.ndarray,
            up: np.ndarray | None = None) -> Pose:
    """Camera pose looking from ``eye`` toward ``target`` (world->camera)."""
    eye = np.asarray(eye, dtype=float).reshape(3)
    target = np.asarray(target, dtype=float).reshape(3)
    if up is None:
        up = np.array([0.0, -1.0, 0.0])  # image-y points down
    up = np.asarray(up, dtype=float).reshape(3)
    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise CalibrationError("eye and target coincide")
    z = forward / norm
    x = np.cross(-up, z)
    x_norm = np.linalg.norm(x)
    if x_norm < 1e-12:
        raise CalibrationError("up vector parallel to view direction")
    x = x / x_norm
    y = np.cross(z, x)
    rotation = np.stack([x, y, z], axis=0)
    translation = -rotation @ eye
    return Pose(rotation, translation)
