"""Sparse optical flow and the hybrid tracking strategy.

Tracking-by-detection (re-detect + re-match every frame) is robust but
expensive; production AR SDKs track features frame-to-frame with sparse
optical flow and re-detect only when tracking degrades.  We implement:

- :func:`track_points` — translational Lucas–Kanade: per-point 2-D
  displacement minimizing SSD over a local window, solved from the
  structure tensor (one iteration per pyramid level).
- :class:`HybridTracker` — flow-propagates the previous frame's inlier
  correspondences and refits the homography; falls back to full
  detection (an inner :class:`PlanarTracker`) when inliers decay.

The A5 ablation prices both paths and measures the robustness/cost
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..util.errors import VisionError
from .camera import CameraIntrinsics, Pose
from .geometry import apply_homography, pose_from_homography, ransac_homography
from .synth import PlanarTarget
from .tracker import PlanarTracker, StageProfile, TrackResult

__all__ = ["track_points", "FlowResult", "HybridTracker"]


@dataclass(frozen=True)
class FlowResult:
    """Output of one sparse-flow solve."""

    points: np.ndarray  # (N, 2) new positions
    valid: np.ndarray  # (N,) bool — solvable and stayed in frame


def _pyramid(image: np.ndarray, levels: int) -> list[np.ndarray]:
    pyramid = [image]
    for _ in range(levels - 1):
        smoothed = ndimage.gaussian_filter(pyramid[-1], 1.0)
        pyramid.append(smoothed[::2, ::2])
    return pyramid


def track_points(prev: np.ndarray, curr: np.ndarray, points: np.ndarray,
                 window: int = 9, levels: int = 3,
                 iterations: int = 3) -> FlowResult:
    """Pyramidal translational Lucas–Kanade for sparse points.

    ``points`` is (N, 2) in (x, y) pixel coordinates of ``prev``.
    """
    prev = np.asarray(prev, dtype=float)
    curr = np.asarray(curr, dtype=float)
    if prev.shape != curr.shape:
        raise VisionError("frames must have equal shape")
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[1] != 2:
        raise VisionError("points must be Nx2")
    if window < 3 or window % 2 == 0:
        raise VisionError("window must be odd and >= 3")
    half = window // 2
    prev_pyr = _pyramid(prev, levels)
    curr_pyr = _pyramid(curr, levels)
    n = len(points)
    flow = np.zeros((n, 2))
    valid = np.ones(n, dtype=bool)

    for level in range(levels - 1, -1, -1):
        scale = 2.0 ** level
        p_img = prev_pyr[level]
        c_img = curr_pyr[level]
        gy, gx = np.gradient(p_img)
        h, w = p_img.shape
        for i in range(n):
            if not valid[i]:
                continue
            x = points[i, 0] / scale
            y = points[i, 1] / scale
            xi, yi = int(round(x)), int(round(y))
            if not (half <= xi < w - half and half <= yi < h - half):
                if level == 0:
                    valid[i] = False
                continue
            ix = gx[yi - half:yi + half + 1, xi - half:xi + half + 1]
            iy = gy[yi - half:yi + half + 1, xi - half:xi + half + 1]
            template = p_img[yi - half:yi + half + 1,
                             xi - half:xi + half + 1]
            a11 = float((ix * ix).sum())
            a12 = float((ix * iy).sum())
            a22 = float((iy * iy).sum())
            det = a11 * a22 - a12 * a12
            # Minimum eigenvalue of the structure tensor gates both the
            # textureless case and the aperture problem (edge-only
            # gradient), which translational LK cannot resolve.
            lambda_min = (a11 + a22) / 2.0 - np.sqrt(
                ((a11 - a22) / 2.0) ** 2 + a12 * a12)
            if det < 1e-9 or lambda_min < 0.05:
                if level == 0:
                    valid[i] = False
                continue
            d = flow[i] / scale
            for _it in range(iterations):
                cx = xi + d[0]
                cy = yi + d[1]
                cxi, cyi = int(round(cx)), int(round(cy))
                if not (half <= cxi < w - half and half <= cyi < h - half):
                    break
                patch = c_img[cyi - half:cyi + half + 1,
                              cxi - half:cxi + half + 1]
                diff = patch - template
                b1 = float((ix * diff).sum())
                b2 = float((iy * diff).sum())
                # Gauss-Newton step: d -= A^-1 b (minimizes SSD).
                du = (a22 * b1 - a12 * b2) / det
                dv = (a11 * b2 - a12 * b1) / det
                d = d - np.array([du, dv])
                if abs(du) < 0.01 and abs(dv) < 0.01:
                    break
            if level == 0:
                # Residual check: a converged track matches the template.
                cxi = int(round(xi + d[0]))
                cyi = int(round(yi + d[1]))
                if (half <= cxi < w - half and half <= cyi < h - half):
                    patch = c_img[cyi - half:cyi + half + 1,
                                  cxi - half:cxi + half + 1]
                    rms = float(np.sqrt(np.mean((patch - template) ** 2)))
                    if rms > 0.12:
                        valid[i] = False
                else:
                    valid[i] = False
            flow[i] = d * scale
    new_points = points + flow
    h0, w0 = prev.shape
    inside = ((new_points[:, 0] >= half) & (new_points[:, 0] < w0 - half)
              & (new_points[:, 1] >= half) & (new_points[:, 1] < h0 - half))
    valid &= inside
    return FlowResult(points=new_points, valid=valid)


class HybridTracker:
    """Flow-first planar tracking with detection fallback.

    Maintains the last frame and its inlier (world-texture-point ->
    image-point) correspondences; each new frame flows them forward,
    refits the homography, and re-detects only when the surviving
    correspondence count falls below ``min_flow_points`` (or on the
    first frame / after a loss).
    """

    def __init__(self, target: PlanarTarget, intrinsics: CameraIntrinsics,
                 rng: np.random.Generator, min_flow_points: int = 20,
                 redetect_every: int = 30) -> None:
        self.detector = PlanarTracker(target, intrinsics, rng)
        self.target = target
        self.intrinsics = intrinsics
        self._rng = rng
        self.min_flow_points = min_flow_points
        self.redetect_every = redetect_every
        self._prev_frame: np.ndarray | None = None
        self._prev_texture_pts: np.ndarray | None = None
        self._prev_image_pts: np.ndarray | None = None
        self._since_detection = 0
        self.detections = 0
        self.flow_frames = 0
        self.last_mode = "none"
        self.last_profile = StageProfile()

    def _full_detection(self, frame: np.ndarray) -> TrackResult:
        result = self.detector.track(frame)
        self.detections += 1
        self._since_detection = 0
        # Cache correspondences for flow propagation: the reference
        # texture *keypoints* (corners by construction, hence trackable
        # by LK) projected through the found homography.
        texture_pts = self.detector._reference.keypoints_xy[:120]
        image_pts = apply_homography(result.homography, texture_pts)
        keep = ((image_pts[:, 0] > 8)
                & (image_pts[:, 0] < self.intrinsics.width - 8)
                & (image_pts[:, 1] > 8)
                & (image_pts[:, 1] < self.intrinsics.height - 8))
        self._prev_texture_pts = texture_pts[keep]
        self._prev_image_pts = image_pts[keep]
        self._prev_frame = frame
        self.last_mode = "detect"
        self.last_profile = self.detector.last_profile
        return result

    def track(self, frame: np.ndarray) -> TrackResult:
        frame = np.asarray(frame, dtype=float)
        force_detect = (
            self._prev_frame is None
            or self._prev_texture_pts is None
            or len(self._prev_texture_pts) < self.min_flow_points
            or self._since_detection >= self.redetect_every)
        if force_detect:
            return self._full_detection(frame)
        # Keyframe-anchored flow: always solve keyframe -> current, so
        # errors do not accumulate across frames (chained flow drifts).
        flow = track_points(self._prev_frame, frame, self._prev_image_pts)
        texture_pts = self._prev_texture_pts[flow.valid]
        image_pts = flow.points[flow.valid]
        if len(texture_pts) < max(8, self.min_flow_points // 2):
            return self._full_detection(frame)
        try:
            ransac = ransac_homography(texture_pts, image_pts, self._rng,
                                       threshold=2.0)
        except VisionError:
            return self._full_detection(frame)
        if ransac.num_inliers < max(8, self.min_flow_points // 2):
            return self._full_detection(frame)
        h_texture = ransac.homography
        th, tw = self.target.texture.shape
        scale = np.diag([tw / self.target.width_m,
                         th / self.target.height_m, 1.0])
        pose = pose_from_homography(h_texture @ scale, self.intrinsics)
        errors = np.linalg.norm(
            apply_homography(h_texture, texture_pts) - image_pts, axis=1)
        self.flow_frames += 1
        self._since_detection += 1
        # The keyframe (frame + correspondences) stays fixed until the
        # next detection; only bookkeeping advances.
        self.last_mode = "flow"
        # Flow workload: window solves per point instead of full detect.
        self.last_profile = StageProfile(
            pixels=int(frame.size) // 8,  # pyramid windows, not the frame
            features=len(texture_pts),
            matches=len(texture_pts),
            ransac_iterations=ransac.iterations)
        return TrackResult(
            pose=pose, homography=h_texture,
            num_matches=len(texture_pts),
            num_inliers=ransac.num_inliers,
            mean_reproj_error=float(errors[ransac.inlier_mask].mean()))

    def registration_error_px(self, track: TrackResult,
                              true_pose: Pose) -> float:
        return self.detector.registration_error_px(track, true_pose)
