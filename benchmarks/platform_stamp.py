"""Provenance stamp for benchmark baselines.

Committed ``BENCH_streaming.json`` numbers are machine-dependent; the
stamp records *which* machine and code revision produced them so a
regression report can distinguish "code got slower" from "different
box" at a glance.
"""

from __future__ import annotations

import os
import platform
import subprocess
from pathlib import Path

import numpy as np


def platform_stamp() -> dict:
    """Interpreter/numpy/CPU provenance for a benchmark result."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def git_sha() -> str:
    """Current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"
