"""Unit tests: adaptive quality controller and crowdsourced modelling."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveQualityController,
    ARBigDataPipeline,
    PipelineConfig,
)
from repro.offload import AlwaysLocal
from repro.sensors import BoxModel, Contribution, CrowdModel
from repro.simnet.network import LinkSpec
from repro.util.errors import PipelineError, SensorError
from repro.util.rng import make_rng


class TestAdaptiveQuality:
    def _controller(self, deadline=1.0 / 30.0, start_level=0,
                    degrade_network=False):
        pipeline = ARBigDataPipeline(PipelineConfig(
            seed=0, deadline_s=deadline))
        if degrade_network:
            pipeline.set_access_link(LinkSpec(latency_s=0.5,
                                              bandwidth_bps=1e4))
            pipeline.set_offload_policy(AlwaysLocal())
        return AdaptiveQualityController(pipeline.timeliness,
                                         window=5,
                                         start_level=start_level)

    def test_downshifts_when_missing_deadline(self):
        # HD locally on a phone blows 33 ms: the controller must back off.
        controller = self._controller(degrade_network=True)
        assert controller.resolution == (1280, 720)
        for _ in range(40):
            controller.admit_frame()
        assert controller.downshifts >= 1
        assert controller.level > 0

    def test_converges_to_a_meeting_level(self):
        controller = self._controller(degrade_network=True)
        for _ in range(60):
            controller.admit_frame()
        # After convergence, recent frames meet the deadline.
        finals = [controller.admit_frame() for _ in range(4)]
        assert all(t.met_deadline for t in finals)

    def test_upshifts_with_headroom(self):
        # Start at the lowest level with a generous deadline: step up.
        controller = self._controller(deadline=0.5, start_level=3)
        for _ in range(60):
            controller.admit_frame()
        assert controller.upshifts >= 1
        assert controller.level < 3

    def test_stays_within_ladder(self):
        controller = self._controller(deadline=1e-9, start_level=0,
                                      degrade_network=True)
        for _ in range(100):
            controller.admit_frame()
        assert controller.level == len(controller.LADDER) - 1

    def test_bad_start_level_rejected(self):
        pipeline = ARBigDataPipeline(PipelineConfig(seed=0))
        with pytest.raises(PipelineError):
            AdaptiveQualityController(pipeline.timeliness, start_level=9)


class TestCrowdModel:
    TRUTH = BoxModel(cx=100.0, cy=50.0, width=20.0, depth=30.0,
                     height=45.0)

    def _submit(self, crowd, models, building="b1"):
        for i, model in enumerate(models):
            crowd.submit(Contribution(building_id=building,
                                      contributor=f"c{i}", model=model))

    def test_consensus_improves_with_contributions(self):
        rng = make_rng(0)
        errors = []
        for n in (1, 5, 25, 100):
            crowd = CrowdModel()
            self._submit(crowd, CrowdModel.simulate_contributions(
                self.TRUTH, n, make_rng(1)))
            errors.append(crowd.consensus("b1").error_to(self.TRUTH))
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.5  # metres, with 100 contributors

    def test_median_robust_to_outliers(self):
        rng = make_rng(2)
        good = CrowdModel.simulate_contributions(
            self.TRUTH, 30, rng, outlier_rate=0.0)
        # Add 20% gross vandalism.
        bad = [BoxModel(cx=9999.0, cy=-9999.0, width=1.0, depth=1.0,
                        height=1.0)] * 7
        crowd = CrowdModel()
        self._submit(crowd, good + bad)
        consensus = crowd.consensus("b1")
        assert consensus.error_to(self.TRUTH) < 2.0

    def test_mean_would_not_be_robust(self):
        """Sanity contrast: the naive mean is wrecked by the outliers
        the median shrugs off."""
        rng = make_rng(3)
        good = CrowdModel.simulate_contributions(
            self.TRUTH, 30, rng, outlier_rate=0.0)
        bad = [BoxModel(cx=9999.0, cy=-9999.0, width=1.0, depth=1.0,
                        height=1.0)] * 7
        stack = np.array([[m.cx, m.cy, m.width, m.depth, m.height]
                          for m in good + bad])
        mean_model = BoxModel(*[float(v) for v in stack.mean(axis=0)])
        crowd = CrowdModel()
        self._submit(crowd, good + bad)
        assert crowd.consensus("b1").error_to(self.TRUTH) < \
            mean_model.error_to(self.TRUTH) / 10

    def test_buildings_tracked_separately(self):
        crowd = CrowdModel()
        self._submit(crowd, [self.TRUTH], building="b1")
        other = BoxModel(cx=0.0, cy=0.0, width=5.0, depth=5.0,
                         height=10.0)
        self._submit(crowd, [other], building="b2")
        assert crowd.buildings() == ["b1", "b2"]
        assert crowd.consensus("b2").error_to(other) == 0.0

    def test_no_contributions_rejected(self):
        with pytest.raises(SensorError):
            CrowdModel().consensus("ghost")
