"""Columnar analytical store: query layer pinned against brute force.

Every aggregate (sum/mean/count/min/max), plain and windowed, keyed and
callable-regrouped, is compared to a per-row Python model over the same
elements — the numpy bincount paths must be an optimization, never a
semantic.
"""

import math

import numpy as np
import pytest

from repro.store import AnalyticalStore
from repro.streaming.element import Element
from repro.util.errors import StoreError
from repro.util.rng import make_rng

AGGS = ("sum", "mean", "count", "min", "max")


def _scalar(agg, vals):
    if agg == "count":
        return float(len(vals))
    if agg == "sum":
        return float(sum(vals))
    if agg == "mean":
        return float(sum(vals) / len(vals))
    return float(min(vals) if agg == "min" else max(vals))


def _elements(rng, n, keys):
    return [Element(value={"m": float(rng.uniform(-50, 50)),
                           "tag": f"t-{int(rng.integers(3))}"},
                    timestamp=float(rng.uniform(0, 500)),
                    key=f"k-{int(rng.integers(keys))}")
            for _ in range(n)]


def _store_with(elements, epochs=4):
    store = AnalyticalStore(metric_fn=lambda v: v["m"])
    chunk = max(1, len(elements) // epochs)
    for i in range(0, len(elements), chunk):
        store.append_epoch(i // chunk + 1, elements[i:i + chunk])
    return store


class TestQueries:
    def setup_method(self):
        self.rng = make_rng(5)
        self.elements = _elements(self.rng, 200, keys=7)
        self.store = _store_with(self.elements)

    def test_group_by_matches_model_for_every_agg(self):
        for agg in AGGS:
            expected = {}
            for e in self.elements:
                expected.setdefault(e.key, []).append(e.value["m"])
            expected = {k: _scalar(agg, v) for k, v in expected.items()}
            got = self.store.group_by(agg)
            assert got.keys() == expected.keys()
            for k in expected:
                assert got[k] == pytest.approx(expected[k])

    def test_group_by_with_key_and_time_filters(self):
        keys = {"k-1", "k-3"}
        start, end = 100.0, 400.0
        sel = [e for e in self.elements
               if e.key in keys and start <= e.timestamp < end]
        expected = {}
        for e in sel:
            expected.setdefault(e.key, []).append(e.value["m"])
        got = self.store.group_by("sum", keys=keys, start=start, end=end)
        assert got.keys() == expected.keys()
        for k in expected:
            assert got[k] == pytest.approx(sum(expected[k]))
        assert self.store.count(keys=keys, start=start, end=end) == len(sel)

    def test_group_by_callable_regroups_raw_values(self):
        expected = {}
        for e in self.elements:
            expected.setdefault(e.value["tag"], []).append(e.value["m"])
        got = self.store.group_by("mean", by=lambda v: v["tag"])
        assert got.keys() == expected.keys()
        for tag, vals in expected.items():
            assert got[tag] == pytest.approx(_scalar("mean", vals))

    def test_tumbling_matches_model_for_every_agg(self):
        window = 60.0
        for agg in AGGS:
            expected = {}
            for e in self.elements:
                w = math.floor(e.timestamp / window) * window
                expected.setdefault((e.key, w), []).append(e.value["m"])
            expected = {kw: _scalar(agg, v) for kw, v in expected.items()}
            got = self.store.tumbling(window, agg)
            assert got.keys() == expected.keys()
            for kw in expected:
                assert got[kw] == pytest.approx(expected[kw])

    def test_filter_returns_aligned_columns(self):
        out = self.store.filter(start=200.0)
        sel = [e for e in self.elements if e.timestamp >= 200.0]
        assert len(out["ts"]) == len(out["metric"]) \
            == len(out["codes"]) == len(out["raw"]) == len(sel)
        # raw values line up with the metric column row by row
        for value, m in zip(out["raw"], out["metric"].tolist()):
            assert value["m"] == pytest.approx(m)

    def test_empty_results(self):
        assert self.store.group_by("sum", keys=["nope"]) == {}
        assert self.store.tumbling(60.0, "sum", keys=["nope"]) == {}
        assert self.store.count(start=1e9) == 0
        empty = AnalyticalStore()
        assert empty.group_by("sum") == {}
        assert empty.tumbling(10.0) == {}
        assert empty.count() == 0


class TestEpochProtocol:
    def test_stale_epoch_stages_none_and_installs_zero(self):
        store = AnalyticalStore(metric_fn=lambda v: v["m"])
        els = _elements(make_rng(1), 10, keys=2)
        assert store.append_epoch(3, els) == 10
        assert store.stage_epoch(3, els) is None
        assert store.stage_epoch(2, els) is None
        assert store.append_epoch(3, els) == 0
        assert store.rows == 10
        assert store.last_applied_epoch == 3

    def test_stage_is_side_effect_free_on_rows(self):
        store = AnalyticalStore(metric_fn=lambda v: v["m"])
        els = _elements(make_rng(2), 8, keys=2)
        staged = store.stage_epoch(1, els)
        assert store.rows == 0 and store.appends == 0
        store.install_epoch(staged)
        assert store.rows == 8 and store.last_applied_epoch == 1

    def test_default_metric_is_nan_for_objects(self):
        store = AnalyticalStore()
        store.append_epoch(1, [
            Element(value={"not": "numeric"}, timestamp=1.0, key="a"),
            Element(value=4.5, timestamp=2.0, key="a"),
        ])
        cols = store.columns()
        assert math.isnan(cols["metric"][0])
        assert cols["metric"][1] == 4.5


class TestValidation:
    def test_unknown_aggregate_raises(self):
        store = AnalyticalStore()
        with pytest.raises(StoreError):
            store.group_by("median")
        with pytest.raises(StoreError):
            store.tumbling(10.0, "p99")

    def test_nonpositive_window_raises(self):
        with pytest.raises(StoreError):
            AnalyticalStore().tumbling(0.0)
