"""Logical/physical plan split: the JobGraph -> ExecutionGraph compiler
and the parallel executor.

A :class:`~repro.streaming.graph.JobGraph` is *logical*: it names
operators and edges, not instances.  :func:`compile_execution_graph`
lowers it to a physical :class:`ExecutionGraph` with **per-operator
parallelism**: every logical operator becomes N subtasks, and every
logical edge becomes one of

- a **forward** channel (subtask i -> subtask i, equal parallelism),
- a **hash shuffle** into a keyed operator (stable key -> key group ->
  subtask, see :mod:`repro.streaming.shuffle`) with watermarks
  broadcast to all receiving subtasks,
- a **rebalance** (deterministic round-robin) where parallelism changes
  on a non-keyed edge, or
- a **merge** into a sink (sinks are single buffers).

Sources are read as **splits** (the rescaling unit, analogous to topic
partitions) range-assigned to source subtasks — eventlog-backed sources
map partitions to splits through consumer groups
(:func:`~repro.streaming.connectors.parallel_log_source`).

Execution stays single-threaded and deterministic, like
:class:`~repro.streaming.runtime.Executor`: subtasks are *modelled*
concurrency.  Each subtask index is a worker lane; per-cycle lane busy
time is measured and the **modelled makespan** (sum over cycles of the
slowest lane) is what the parallel benchmarks report as speedup, while
semantics remain bit-reproducible.

Multi-input subtasks align watermarks per input channel (the minimum
across channels is forwarded — Flink's watermark valve), so a keyed
subtask never advances event time past its slowest upstream.

Checkpoints are aligned snapshots taken when quiescent.  Keyed state is
stored **by key group**, source progress **by split**, so a checkpoint
taken at parallelism N restores at parallelism M (*rescaling*): key
groups and splits are reassigned wholesale, scalar operator state
merges conservatively (watermarks regress to the minimum).  At
unchanged parallelism a restore is exact — the chaos suite's
recovered-sinks-equal-fault-free invariant holds bit-for-bit.

Parallelism 1 compiles to the same plan shape as the single-instance
executor (same chains, all-forward edges) and produces identical sinks.

Equivalence contract (property-tested): for key-aligned sources (same
key, same split — the default partitioner) and allowed lateness
covering the watermark skew between subtasks (no late drops), sinks at
any parallelism are identical to the single-instance plan *modulo
cross-key interleaving*; per-key subsequences are bit-identical.
"""

from __future__ import annotations

import copy
import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from ..util.errors import (
    BackpressureOverflow,
    CheckpointError,
    JobGraphError,
)
from ..util.ids import split_ranges
from .barrier import BLOCKED, COMPLETE, IGNORED, STRAGGLER, BarrierAligner
from .batch import (
    RecordBatch,
    decode_items,
    elements_of,
    item_weight,
    items_weight,
    take_prefix,
)
from .chain import ChainedOperator
from .element import CheckpointBarrier, Element, StreamItem, Watermark
from .errors import DLQ_SINK, FAIL, ErrorPolicy, guard_batch, guard_item
from .graph import JobGraph
from .join import IntervalJoinOperator
from .operators import Operator
from .runtime import SinkBuffer, build_chains
from .txn_sink import TransactionalSink
from .shuffle import (
    DEFAULT_KEY_GROUPS,
    key_group_for,
    key_group_range,
    subtask_for_key_group,
    subtasks_for_keys,
)

__all__ = [
    "PhysicalNode",
    "PhysicalEdge",
    "ExecutionGraph",
    "ParallelCheckpoint",
    "ParallelExecutor",
    "compile_execution_graph",
]

FORWARD = "forward"
HASH = "hash"
REBALANCE = "rebalance"
MERGE = "merge"  # into a sink


@dataclass(frozen=True)
class PhysicalEdge:
    """One physical channel group between execution nodes."""

    up: str
    down: str
    side: str | None
    mode: str  # forward | hash | rebalance | merge
    #: endpoints placed in different regions; must have been declared on
    #: the job graph (cross-region edges are never inferred)
    cross_region: bool = False
    #: one-way inter-region link latency charged per delivered packet
    link_cost_s: float = 0.0


@dataclass
class PhysicalNode:
    """A logical execution node (operator or fused chain) times N."""

    name: str
    members: list[str]  # logical operator names (len > 1 for chains)
    parallelism: int
    keyed: bool
    #: region this node's subtasks are pinned to (None: no placement)
    region: str | None = None


@dataclass
class ExecutionGraph:
    """The physical plan: nodes with parallelism, typed edges, splits."""

    job: JobGraph
    num_key_groups: int
    nodes: dict[str, PhysicalNode]
    edges: list[PhysicalEdge]
    topo: list[str]  # execution-node order (operators only)
    source_parallelism: dict[str, int]
    source_splits: dict[str, int]
    rename: dict[str, str]  # logical node -> execution node
    #: the region placement this plan was compiled under (None: flat)
    placement: Any = None
    #: logical node -> region, resolved at compile time (empty: flat)
    node_regions: dict[str, str] = field(default_factory=dict)

    def max_parallelism(self) -> int:
        widths = [n.parallelism for n in self.nodes.values()]
        widths += list(self.source_parallelism.values())
        return max(widths, default=1)

    def cross_region_edges(self) -> list[PhysicalEdge]:
        return [e for e in self.edges if e.cross_region]

    def describe(self) -> str:
        """Human-readable plan, one line per node/edge (debug aid)."""
        lines = [f"plan for job {self.job.name!r} "
                 f"(key groups: {self.num_key_groups})"]
        for name, p in sorted(self.source_parallelism.items()):
            where = (f" @{self.node_regions[name]}"
                     if name in self.node_regions else "")
            lines.append(f"  source {name} x{p} "
                         f"({self.source_splits[name]} splits){where}")
        for name in self.topo:
            node = self.nodes[name]
            kind = "keyed" if node.keyed else "stateless"
            where = f" @{node.region}" if node.region is not None else ""
            lines.append(f"  op {name} x{node.parallelism} ({kind}){where}")
        for e in self.edges:
            tag = f" [{e.side}]" if e.side else ""
            cross = (f" x-region +{e.link_cost_s * 1e3:.0f}ms"
                     if e.cross_region else "")
            lines.append(f"  edge {e.up} -> {e.down}{tag}: {e.mode}{cross}")
        return "\n".join(lines)


def _parallelism_of(parallelism: int | dict[str, int], node: str) -> int:
    if isinstance(parallelism, int):
        return parallelism
    return int(parallelism.get(node, parallelism.get("default", 1)))


def compile_execution_graph(job: JobGraph,
                            parallelism: int | dict[str, int] = 1,
                            *, num_key_groups: int = DEFAULT_KEY_GROUPS,
                            chaining: bool = True,
                            placement: Any = None) -> ExecutionGraph:
    """Lower a logical job graph to a physical execution graph.

    ``parallelism`` is either one width for every node or a per-node
    dict (``{"default": 2, "window_sum": 4}``); sources take their
    width from the same mapping.  Chains only fuse operators of equal
    parallelism (the extra gate threaded into
    :func:`~repro.streaming.runtime.build_chains`), so a parallelism
    change is always a channel — exactly like a shuffle.

    ``placement`` (a :class:`~repro.streaming.placement.RegionPlacement`)
    adds region affinity: placement pins override the job's own region
    pins, operators in different regions never fuse, and every edge the
    placement stretches across regions must have been declared via
    :meth:`~repro.streaming.graph.JobBuilder.declare_cross_region` —
    such edges carry the inter-region link cost into the runtime's
    modelled makespan.  A job with region pins and no placement is
    compiled under an implicit default placement.
    """
    job.validate()
    if placement is None and job.regions:
        from .placement import RegionPlacement
        placement = RegionPlacement()
    node_regions: dict[str, str] = {}
    if placement is not None:
        merged = {**job.regions, **dict(placement.regions)}
        all_nodes = (list(job.sources) + list(job.operators)
                     + list(job.sinks))
        node_regions = {
            n: merged.get(n, placement.default_region) for n in all_nodes
        }
    reg = node_regions.get
    p_of = lambda n: _parallelism_of(parallelism, n)  # noqa: E731
    for name in list(job.operators) + list(job.sources):
        if p_of(name) < 1:
            raise JobGraphError(f"node {name!r} has parallelism "
                                f"{p_of(name)} < 1")
    for name, op in job.operators.items():
        if op.requires_shuffle and p_of(name) > num_key_groups:
            raise JobGraphError(
                f"keyed operator {name!r} parallelism {p_of(name)} exceeds "
                f"num_key_groups {num_key_groups}")

    chains = build_chains(
        job, compatible=lambda u, d: (p_of(u) == p_of(d)
                                      and reg(u) == reg(d))
    ) if chaining else {}
    rename: dict[str, str] = {}
    nodes: dict[str, PhysicalNode] = {}
    in_chain: set[str] = set()
    for head, members in chains.items():
        name = "chain(" + "+".join(members) + ")"
        nodes[name] = PhysicalNode(name=name, members=list(members),
                                   parallelism=p_of(head), keyed=False,
                                   region=reg(head))
        for m in members:
            rename[m] = name
            in_chain.add(m)
    for name, op in job.operators.items():
        if name not in in_chain:
            nodes[name] = PhysicalNode(
                name=name, members=[name], parallelism=p_of(name),
                keyed=bool(op.requires_shuffle), region=reg(name))
            rename[name] = name

    source_parallelism: dict[str, int] = {}
    source_splits: dict[str, int] = {}
    for name, spec in job.sources.items():
        p = p_of(name)
        n_splits = spec.splits if spec.splits is not None else p
        if p > n_splits:
            raise JobGraphError(
                f"source {name!r} parallelism {p} exceeds its "
                f"{n_splits} splits")
        source_parallelism[name] = p
        source_splits[name] = n_splits
        rename[name] = name

    def _up_parallelism(up: str) -> int:
        if up in source_parallelism:
            return source_parallelism[up]
        return nodes[rename[up]].parallelism

    edges: list[PhysicalEdge] = []
    seen_edges: set[tuple[str, str, str | None]] = set()
    for up, down, side in job.edges:
        new_up = rename.get(up, up)
        new_down = rename.get(down, down)
        if new_up == new_down:  # edge internal to a chain
            continue
        cross = (placement is not None
                 and node_regions[up] != node_regions[down])
        if cross and (up, down) not in job.cross_region_edges:
            raise JobGraphError(
                f"edge {up!r} -> {down!r} crosses regions "
                f"{node_regions[up]!r} -> {node_regions[down]!r} but was "
                "never declared cross-region; declare it with "
                "declare_cross_region() or co-locate the nodes")
        if (new_up, new_down, side) in seen_edges:
            continue
        seen_edges.add((new_up, new_down, side))
        if down in job.sinks:
            mode = MERGE
        elif nodes[new_down].keyed:
            mode = HASH
        elif _up_parallelism(up) == nodes[new_down].parallelism:
            mode = FORWARD
        else:
            mode = REBALANCE
        cost = (placement.link_cost_s(node_regions[up], node_regions[down])
                if cross else 0.0)
        edges.append(PhysicalEdge(up=new_up, down=new_down, side=side,
                                  mode=mode, cross_region=cross,
                                  link_cost_s=cost))

    seen: set[str] = set()
    topo: list[str] = []
    for name in job.topological_operators():
        exec_name = rename[name]
        if exec_name not in seen:
            seen.add(exec_name)
            topo.append(exec_name)
    return ExecutionGraph(job=job, num_key_groups=num_key_groups,
                          nodes=nodes, edges=edges, topo=topo,
                          source_parallelism=source_parallelism,
                          source_splits=source_splits, rename=rename,
                          placement=placement, node_regions=node_regions)


@dataclass
class ParallelCheckpoint:
    """A consistent snapshot of a parallel job, portable across
    parallelism changes (keyed state by key group, sources by split)."""

    checkpoint_id: int
    num_key_groups: int
    parallelism: dict[str, int]  # logical operator/source -> width
    num_splits: dict[str, int]  # source -> split count
    source_positions: dict[str, dict[int, int]]  # source -> split -> pos
    keyed_state: dict[str, dict[int, Any]]  # op -> key group -> blob
    scalar_state: dict[str, list[Any]]  # op -> per-subtask snapshot
    sink_elements: dict[str, list[Element]]
    #: transient routing state (channel watermarks, aligned watermarks,
    #: round-robin cursors); applied on restore only when the plan shape
    #: matches (same parallelism everywhere), dropped on a rescale.
    routing_state: dict[str, Any] = field(default_factory=dict)
    #: unaligned-checkpoint channel state: (down, idx, side, up, up_idx)
    #: -> pre-barrier items spilled from a lagging channel.  Re-enqueued
    #: on restore; non-empty in-flight state pins the plan shape (an
    #: unaligned checkpoint cannot be restored at another parallelism).
    in_flight: dict[tuple, list] = field(default_factory=dict)
    #: load-shedding tier state: active per-source shed plans plus the
    #: per-source shed counts *as of this checkpoint's cut*, so a
    #: restore rewinds shed accounting together with source positions
    #: (replayed input re-sheds the same elements, counted once).
    shed_state: dict[str, Any] = field(default_factory=dict)
    #: chaos data-fault counters at the cut (per physical operator
    #: clone; see FaultInjector.data_counts): data-fault windows name
    #: records, so a restore rewinds them and replay re-poisons the
    #: same records — keeping committed output identical to a
    #: crash-free run under the same data faults.
    data_counts: dict[str, int] = field(default_factory=dict)


class ParallelExecutor:
    """Runs a physical plan: N subtasks per operator, keyed shuffles,
    per-subtask checkpoints, deterministic single-threaded execution.

    API mirrors :class:`~repro.streaming.runtime.Executor` (``run``,
    ``checkpoint``, ``restore``, ``sinks``, ``done``), so the chaos
    harness supervises either executor unchanged.  ``restore`` accepts
    checkpoints taken at a *different* parallelism (rescaling).
    """

    def __init__(self, job: JobGraph,
                 parallelism: int | dict[str, int] = 1,
                 *, num_key_groups: int = DEFAULT_KEY_GROUPS,
                 channel_capacity: int = 10_000,
                 drop_on_overflow: bool = False, batch_mode: bool = True,
                 columnar: bool | None = None,
                 chaining: bool = True, injector: Any = None,
                 tracer: Any = None, metrics: Any = None,
                 profiler: Any = None,
                 transactional_sinks: bool = False,
                 unaligned_after: int | None = None,
                 placement: Any = None) -> None:
        self.graph = compile_execution_graph(
            job, parallelism, num_key_groups=num_key_groups,
            chaining=chaining and batch_mode, placement=placement)
        self.placement = self.graph.placement
        self.job = job
        self.num_key_groups = num_key_groups
        self.channel_capacity = channel_capacity
        self.drop_on_overflow = drop_on_overflow
        self.batch_mode = batch_mode
        #: columnar hot path: sources encode splits as RecordBatches and
        #: shuffles/merges stay vectorized; defaults on in batch mode and
        #: is bit-identical to the per-element representation.
        self.columnar = batch_mode and (columnar if columnar is not None
                                        else True)
        self.injector = injector
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.transactional_sinks = transactional_sinks
        #: give up barrier alignment after this many macro cycles and
        #: spill in-flight items instead (None = align forever)
        self.unaligned_after = unaligned_after
        self.backpressure_events = 0
        self.dropped_overflow = 0
        #: cross-region traffic accounting: packets that traversed an
        #: inter-region link and the modelled latency they paid
        self.cross_region_packets = 0
        self.cross_region_transfer_s = 0.0
        #: elements dropped by the load-shedding tier (a subset of
        #: ``dropped_overflow``: shed counts flow through the same
        #: drop-accounting total the equivalence suites reconcile)
        self.shed_elements = 0
        self._shed: dict[str, tuple[int, int, int]] = {}
        self._shed_by_source: dict[str, int] = {}
        #: event-time frontiers for the live watermark-lag gauge:
        #: max timestamp pulled from any source / delivered per sink
        self._source_frontier = float("-inf")
        self._sink_frontier: dict[str, float] = {}
        self._gauge_cache: dict[str, Any] | None = None
        self._checkpoint_seq = 0
        self._flushed = False
        self._job_span: Any = None
        self._obs_spans: dict[str, Any] = {}
        self._coordinator: Any = None
        self._aligners: dict[tuple[str, int], BarrierAligner] = {}
        self._stalled_now: set[tuple[str, int]] = set()
        #: in-flight faulted packets: (release_cycle, key, sender, seq, items)
        self._held: list[tuple[int, tuple, tuple, int, list]] = []
        #: reliable-transport state per (channel key, sender)
        self._send_seq: dict[tuple, int] = {}
        self._recv_seq: dict[tuple, int] = {}
        self._ooo: dict[tuple, dict[int, list]] = {}
        self._cycle = 0
        self._build_physical_ops()
        self._build_channels()
        if transactional_sinks:
            self.sinks: dict[str, Any] = {
                s: TransactionalSink(s, self._sink_feeders(s))
                for s in job.sinks
            }
        else:
            self.sinks = {s: SinkBuffer(s) for s in job.sinks}
        self._wire_error_policies()
        # -- sources: split buffers + positions ---------------------------
        self._split_buffers: dict[str, dict[int, list[Element]]] = {}
        self._split_positions: dict[str, dict[int, int]] = {}
        #: columnar split encodings (one shared key dictionary per
        #: source) and per-split "timestamps nondecreasing" flags; a
        #: split holding markers or opaque values maps to None and the
        #: subtask falls back to the heap merge.
        self._split_batches: dict[str, dict[int, RecordBatch | None]] = {}
        self._split_sorted: dict[str, dict[int, bool]] = {}
        #: (source, subtask) -> pre-merged pull plan (built lazily,
        #: dropped on restore — positions define the remaining suffix)
        self._merge_cache: dict[tuple[str, int], dict[str, Any]] = {}
        #: parallelism -> (key_dict, per-code subtask map) for the
        #: vectorized hash shuffle (single entry per width: bounded)
        self._hash_sub_cache: dict[int, tuple[list, np.ndarray]] = {}
        self._finished_splits: dict[str, set[int]] = {
            name: set() for name in job.sources
        }
        self._source_assignment: dict[str, list[range]] = {
            name: split_ranges(self.graph.source_splits[name],
                               self.graph.source_parallelism[name])
            for name in job.sources
        }
        # -- modelled concurrency: one worker lane per subtask index ------
        lanes = self.graph.max_parallelism()
        self.lane_busy_s = [0.0] * lanes
        self._lane_cycle = [0.0] * lanes
        self.modeled_makespan_s = 0.0

    # -- plan materialization ------------------------------------------------

    def _build_physical_ops(self) -> None:
        """Clone each logical operator once per subtask.

        Clones are independent instances (state deep-copied, functions
        shared) named ``op[i]`` so injector crash sites, metrics and
        spans are subtask-scoped; the logical name is recoverable by
        stripping the suffix.
        """
        self._ops: dict[str, list[Operator]] = {}
        self._clones: dict[str, list[Operator]] = {
            m: [] for m in self.job.operators
        }
        for name in self.graph.topo:
            node = self.graph.nodes[name]
            subtasks: list[Operator] = []
            for i in range(node.parallelism):
                member_clones: list[Operator] = []
                for m in node.members:
                    clone = copy.deepcopy(self.job.operators[m])
                    clone.name = f"{m}[{i}]"
                    self._clones[m].append(clone)
                    member_clones.append(clone)
                if len(member_clones) == 1:
                    op: Operator = member_clones[0]
                else:
                    op = ChainedOperator(member_clones)
                    op.profiler = self.profiler
                subtasks.append(op)
            self._ops[name] = subtasks

    def _build_channels(self) -> None:
        """One bounded FIFO per (receiver subtask, side, sender subtask),
        plus per-channel watermark tracking for alignment."""
        #: (down, idx, side) -> {(up, up_idx): deque}
        self._channels: dict[tuple[str, int, str | None],
                             dict[tuple[str, int], deque]] = {}
        #: (down, idx, side) -> {(up, up_idx): watermark}
        self._channel_wm: dict[tuple[str, int, str | None],
                               dict[tuple[str, int], float]] = {}
        #: (down, idx, side) -> last aligned watermark delivered
        self._aligned_wm: dict[tuple[str, int, str | None], float] = {}
        #: round-robin cursors for rebalance edges: (edge_idx, up_idx)
        self._rr: dict[tuple[int, int], int] = {}
        self._down: dict[str, list[tuple[int, PhysicalEdge]]] = {}
        for edge_idx, edge in enumerate(self.graph.edges):
            self._down.setdefault(edge.up, []).append((edge_idx, edge))
            if edge.mode == MERGE:
                continue
            p_up = self._node_parallelism(edge.up)
            p_down = self.graph.nodes[edge.down].parallelism
            for j in range(p_down):
                key = (edge.down, j, edge.side)
                chans = self._channels.setdefault(key, {})
                wms = self._channel_wm.setdefault(key, {})
                self._aligned_wm.setdefault(key, float("-inf"))
                if edge.mode == FORWARD:
                    senders = [j]
                else:  # hash / rebalance: every upstream subtask connects
                    senders = list(range(p_up))
                for i in senders:
                    chans[(edge.up, i)] = deque()
                    wms[(edge.up, i)] = float("-inf")

    def _node_parallelism(self, name: str) -> int:
        if name in self.graph.source_parallelism:
            return self.graph.source_parallelism[name]
        return self.graph.nodes[name].parallelism

    def _sink_feeders(self, sink: str) -> tuple[tuple[str, int], ...]:
        """Every (upstream node, subtask) merging into one sink — the
        participants whose barriers gate the sink's 2PC pre-commit."""
        feeders: list[tuple[str, int]] = []
        for edge in self.graph.edges:
            if edge.mode == MERGE and edge.down == sink:
                for i in range(self._node_parallelism(edge.up)):
                    feeders.append((edge.up, i))
        return tuple(feeders)

    def _wire_error_policies(self) -> None:
        """Precompute per-node error-policy enforcement and create the
        reserved dead-letter sink when any policy can dead-letter.

        ``self._guard`` maps guarded single-operator execution nodes to
        their policy; fused chains enforce per member internally (the
        per-subtask chain clones get policies / the shared dead-letter
        list / the injector's fault source installed here).  The DLQ
        sink mirrors the job's sink flavour: transactional runs stage
        dead letters through the same 2PC protocol as regular output,
        so a crash can neither lose nor duplicate them."""
        policies = self.job.error_policies
        self._data_chaos = (self.injector is not None
                            and getattr(self.injector, "has_data_faults",
                                        False))
        self._dead_letters: list[Element] = []
        self._guard: dict[str, ErrorPolicy] = {}
        dlq_nodes: list[str] = []
        for name in self.graph.topo:
            node = self.graph.nodes[name]
            if len(node.members) > 1:
                member_policies = {m: policies[m] for m in node.members
                                   if m in policies}
                if member_policies or self._data_chaos:
                    for op in self._ops[name]:
                        op.policies = member_policies
                        op.dead_letters = self._dead_letters
                        if self._data_chaos:
                            op.fault_source = self.injector.data_directives
                if any(p.can_dead_letter
                       for p in member_policies.values()):
                    dlq_nodes.append(name)
            else:
                policy = policies.get(node.members[0])
                if policy is not None and policy.kind != "fail":
                    self._guard[name] = policy
                elif self._data_chaos:
                    self._guard[name] = policy or FAIL
                if policy is not None and policy.can_dead_letter:
                    dlq_nodes.append(name)
        self._dlq_nodes = set(dlq_nodes)
        if self.job.needs_dead_letters:
            if self.transactional_sinks:
                feeders = tuple(
                    (n, i) for n in dlq_nodes
                    for i in range(self.graph.nodes[n].parallelism))
                self.sinks[DLQ_SINK] = TransactionalSink(DLQ_SINK, feeders)
            else:
                self.sinks[DLQ_SINK] = SinkBuffer(DLQ_SINK)

    def _guarded_process(self, op, policy):
        """A ``process_batch`` replacement enforcing ``policy`` (and any
        injected data faults) on every batch through ``op``."""
        def process(batch):
            faults = (self.injector.data_directives(op, batch)
                      if self._data_chaos else None)
            return guard_batch(op, batch, policy, op.process_batch,
                               self._dead_letters, faults)
        return process

    def _guarded_side_process(self, op, policy, side):
        """Like :meth:`_guarded_process` for one side of a join."""
        handler = lambda it, _s=side: (  # noqa: E731
            op.on_watermark_side(_s, it) if isinstance(it, Watermark)
            else op.process_side(_s, it))

        def process(batch):
            faults = (self.injector.data_directives(op, batch)
                      if self._data_chaos else None)
            return guard_batch(
                op, batch, policy,
                lambda items, _s=side: op.process_side_batch(_s, items),
                self._dead_letters, faults, handler=handler)
        return process

    def _emit_dead_letters(self, name: str, idx: int) -> None:
        """Route dead letters collected while subtask (name, idx) was
        processing into the reserved DLQ sink.  Transactional runs stage
        them against this feeder's open epoch; the sink frontier gauge is
        left alone (a poisoned record's timestamp may be garbage)."""
        letters = self._dead_letters
        sink = self.sinks[DLQ_SINK]
        if self.transactional_sinks:
            sink.deliver(list(letters), (name, idx))
        else:
            sink.elements.extend(letters)
        if self.metrics is not None:
            self.metrics.counter("sink.delivered",
                                 sink=DLQ_SINK).inc(len(letters))
        letters.clear()

    # -- checkpoint coordination ---------------------------------------------

    def attach_coordinator(self, coordinator: Any) -> None:
        """Wire a CheckpointCoordinator into the run loop.  Requires
        transactional sinks: with plain sink buffers, output written
        between the barrier cut and a crash would already be visible,
        so an in-band checkpoint could not be exactly-once."""
        if not self.transactional_sinks:
            raise CheckpointError(
                "coordinated checkpoints require transactional_sinks=True")
        self._coordinator = coordinator
        if not self._aligners:
            for name in self.graph.topo:
                node = self.graph.nodes[name]
                join = isinstance(self._ops[name][0], IntervalJoinOperator)
                sides = ("left", "right") if join else (None,)
                for idx in range(node.parallelism):
                    channels = [
                        (side, up, up_idx)
                        for side in sides
                        for (up, up_idx) in self._channels.get(
                            (name, idx, side), {})
                    ]
                    self._aligners[(name, idx)] = BarrierAligner(
                        tuple(channels),
                        unaligned_after=self.unaligned_after)

    def source_positions_snapshot(self) -> dict[str, dict[int, int]]:
        """Current per-split read positions (the coordinator records
        these at barrier injection: they are the checkpoint's cut)."""
        positions: dict[str, dict[int, int]] = {}
        for name in self.job.sources:
            self._materialize_source(name)
            positions[name] = dict(self._split_positions[name])
        return positions

    def inject_barriers(self, checkpoint_id: int) -> None:
        """Emit barrier N from every source subtask — including subtasks
        whose splits are empty or exhausted, so every downstream channel
        carries the marker and alignment can complete."""
        barrier = CheckpointBarrier(checkpoint_id)
        for name in sorted(self.job.sources):
            self._materialize_source(name)
            for idx in range(self.graph.source_parallelism[name]):
                self._emit(name, idx, [barrier])
                self._capture_rr(name, idx)

    def _capture_rr(self, up: str, up_idx: int) -> None:
        """A subtask forwarding its barrier freezes its round-robin
        cursors: they are part of checkpoint N's routing cut."""
        coord = self._coordinator
        if coord is None:
            return
        for edge_idx, edge in self._down.get(up, ()):
            if edge.mode == REBALANCE:
                key = (edge_idx, up_idx)
                coord.capture_rr(key, self._rr.get(key, 0))

    def drain_for_coordinator(self) -> int:
        """One macro drain (no source pull): lets the coordinator flow a
        final barrier through an already-exhausted job."""
        self._release_held()
        moved = self._drain_cycle()
        while self._drain_cycle():
            pass
        self._tick_aligners()
        self._end_cycle()
        self._cycle += 1
        return moved

    def on_checkpoint_finalized(self, checkpoint_id: int,
                                duration_s: float) -> None:
        """Coordinator callback after the atomic manifest commit."""
        if self._job_span is not None:
            self._job_span.add_event("checkpoint.finalized",
                                     checkpoint_id=checkpoint_id,
                                     duration_s=duration_s)
        if self.profiler is not None:
            self.profiler.record("coordinator.checkpoint_s",
                                 self.profiler.timer() - duration_s)

    # -- sources -------------------------------------------------------------

    def _materialize_source(self, name: str) -> dict[int, list[Element]]:
        if name in self._split_buffers:
            return self._split_buffers[name]
        spec = self.job.sources[name]
        n_splits = self.graph.source_splits[name]
        buffers: dict[int, list[Element]] = {s: [] for s in range(n_splits)}
        if spec.split_factory is not None:
            for s in range(n_splits):
                # decode_items: columnar connectors may hand back
                # RecordBatches; the canonical split buffer stays
                # per-element so positions mean the same in every mode.
                buffers[s] = decode_items(spec.split_factory(s, n_splits))
        else:
            for i, item in enumerate(decode_items(spec.iterate())):
                if isinstance(item, Watermark):
                    # A watermark in a source stream asserts event-time
                    # progress for the whole source: broadcast.
                    for s in range(n_splits):
                        buffers[s].append(item)
                elif spec.partitioner is not None:
                    buffers[spec.partitioner(item, n_splits)].append(item)
                elif item.key is not None:
                    # Key-aligned split: same key, same split — the
                    # precondition for per-key order preservation.
                    buffers[key_group_for(item.key, n_splits)].append(item)
                else:
                    buffers[i % n_splits].append(item)
        self._split_buffers[name] = buffers
        positions = self._split_positions.setdefault(name, {})
        for s in range(n_splits):
            positions.setdefault(s, 0)
        if self.columnar:
            self._columnarize_source(name, buffers)
        return buffers

    def _columnarize_source(self, name: str,
                            buffers: dict[int, list[Element]]) -> None:
        """Encode each split as a RecordBatch sharing one key dictionary
        across the whole source, so a subtask merging several splits can
        gather codes into one batch without re-encoding keys."""
        key_index: dict = {}
        key_dict: list = []
        batches: dict[int, RecordBatch | None] = {}
        sorted_flags: dict[int, bool] = {}
        for s, buf in sorted(buffers.items()):
            if buf and all(type(it) is Element for it in buf):
                rb = RecordBatch.from_elements(buf, key_index, key_dict)
                batches[s] = rb
                ts = rb.timestamps
                sorted_flags[s] = bool(np.all(ts[1:] >= ts[:-1]))
            else:
                batches[s] = None
                sorted_flags[s] = False
        self._split_batches[name] = batches
        self._split_sorted[name] = sorted_flags

    def _pull_sources(self, batch: int) -> int:
        pulled = 0
        columnar = self.columnar
        for name in sorted(self.job.sources):
            buffers = self._materialize_source(name)
            positions = self._split_positions[name]
            finished = self._finished_splits[name]
            shed_plan = self._shed.get(name)
            for idx, splits in enumerate(self._source_assignment[name]):
                started = time.perf_counter()
                taken = (self._take_merged_columnar(name, idx, splits,
                                                    batch)
                         if columnar else None)
                if taken is None:
                    taken = self._take_merged(buffers, positions, finished,
                                              splits, batch)
                    if taken:
                        pulled += len(taken)
                elif taken:
                    pulled += items_weight(taken)
                if taken:
                    self._note_source_progress(taken)
                    if shed_plan is not None:
                        taken = self._shed_filter(name, taken, shed_plan)
                if taken:
                    self._emit(name, idx, taken)
                self._lane_cycle[idx] += time.perf_counter() - started
        return pulled

    def _note_source_progress(self, taken: list[StreamItem]) -> None:
        """Advance the source event-time frontier (merged pulls are
        time-ordered, so the last item carries the batch maximum)."""
        last = taken[-1]
        ts = (float(last.timestamps[-1]) if type(last) is RecordBatch
              else last.timestamp)
        if ts > self._source_frontier:
            self._source_frontier = ts

    # -- load shedding ---------------------------------------------------------

    #: Fibonacci-hash multiplier for the shed decision (SplitMix64 mix)
    _SHED_MIX = 0x9E3779B97F4A7C15

    @staticmethod
    def _shed_mask(ts: np.ndarray, keep: int, mod: int,
                   salt: int) -> np.ndarray:
        """Keep-mask over element timestamps.  The decision hashes the
        raw float64 timestamp bits, so it depends only on element
        *content* — never on read positions or batch boundaries.  That
        makes shedding crash-consistent: a replay after restore sheds
        exactly the same elements, in every execution mode."""
        bits = np.ascontiguousarray(ts, dtype=np.float64).view(np.uint64)
        h = (bits ^ np.uint64(salt)) * np.uint64(ParallelExecutor._SHED_MIX)
        h ^= h >> np.uint64(31)
        return (h % np.uint64(mod)) < np.uint64(keep)

    def set_shedding(self, source: str, keep: int, mod: int, *,
                     salt: int = 0) -> None:
        """Activate the load-shedding tier on one source: admit a
        deterministic ``keep/mod`` fraction of its elements and drop the
        rest at the pull boundary (before they enter any channel or
        operator).  Shed elements are counted in ``shed_elements`` and
        ``dropped_overflow`` — the existing drop-accounting path — and
        never reach operators or sinks, so exactly-once for *committed*
        records is preserved by construction."""
        if source not in self.job.sources:
            raise JobGraphError(f"unknown source {source!r}")
        if mod < 1 or not 0 <= keep <= mod:
            raise JobGraphError(
                f"shed ratio needs 0 <= keep <= mod, got {keep}/{mod}")
        if keep == mod:
            self._shed.pop(source, None)
        else:
            self._shed[source] = (int(keep), int(mod), int(salt))

    def clear_shedding(self, source: str) -> None:
        """Deactivate shedding on one source (already-shed counts stay)."""
        self._shed.pop(source, None)

    def _shed_filter(self, name: str, taken: list[StreamItem],
                     plan: tuple[int, int, int]) -> list[StreamItem]:
        keep, mod, salt = plan
        shed = 0
        out: list[StreamItem] = []
        if type(taken[0]) is RecordBatch:
            for rb in taken:
                mask = self._shed_mask(rb.timestamps, keep, mod, salt)
                kept = int(mask.sum())
                if kept == len(rb):
                    out.append(rb)
                    continue
                shed += len(rb) - kept
                if kept:
                    out.append(rb.compress(mask))
        else:
            # Progress markers (watermarks) always pass; elements run
            # through the same vectorized mask as the columnar path so
            # the shed *set* is bit-identical across modes.
            elems = [(i, it) for i, it in enumerate(taken)
                     if type(it) is Element]
            if not elems:
                return taken
            ts = np.fromiter((it.timestamp for _, it in elems),
                             dtype=np.float64, count=len(elems))
            mask = self._shed_mask(ts, keep, mod, salt)
            if bool(mask.all()):
                return taken
            dropped = {elems[j][0] for j in range(len(elems))
                       if not mask[j]}
            shed = len(dropped)
            out = [it for i, it in enumerate(taken) if i not in dropped]
        if shed:
            self.shed_elements += shed
            self.dropped_overflow += shed
            self._shed_by_source[name] = \
                self._shed_by_source.get(name, 0) + shed
            if self.metrics is not None:
                self.metrics.counter("source.shed", source=name).inc(shed)
        return out

    def shed_state_snapshot(self) -> dict[str, Any]:
        """Shed-tier state for a checkpoint: active plans + per-source
        shed counts at the cut (see ``ParallelCheckpoint.shed_state``)."""
        return {"plans": {k: list(v) for k, v in self._shed.items()},
                "shed": dict(self._shed_by_source)}

    def apply_shed_state(self, state: dict[str, Any],
                         sources: Iterable[str] | None = None) -> None:
        """Restore shed plans and rewind shed counters to a checkpoint's
        cut.  Counter rewinds adjust ``dropped_overflow`` by the same
        delta, so overflow-drop accounting is untouched.  ``sources``
        limits the rewind (regional recovery)."""
        if not state:
            return  # pre-shed-tier checkpoint: nothing to rewind
        plans = {k: tuple(v) for k, v in state.get("plans", {}).items()}
        counts = state.get("shed", {})
        names = self.job.sources if sources is None else sources
        for name in names:
            if name in plans:
                self._shed[name] = plans[name]  # type: ignore[assignment]
            else:
                self._shed.pop(name, None)
            snap = int(counts.get(name, 0))
            cur = self._shed_by_source.get(name, 0)
            if snap != cur:
                self.dropped_overflow = max(
                    0, self.dropped_overflow + snap - cur)
                self.shed_elements += snap - cur
                self._shed_by_source[name] = snap

    @staticmethod
    def _take_merged(buffers: dict[int, list[Element]],
                     positions: dict[int, int], finished: set[int],
                     splits: range, batch: int) -> list[StreamItem]:
        """Pull up to ``batch`` items from one subtask's splits, merged
        by event timestamp — per-split order is preserved and the merged
        stream is as time-ordered as the splits are, so a subtask owning
        several splits does not manufacture out-of-orderness beyond what
        the data carries (the per-partition-watermark analogue; without
        the merge, chunked round-robin over skewed splits makes a single
        watermark generator drop everything from the lagging split)."""
        heap: list[tuple[float, int]] = []
        for s in splits:
            if s in finished:
                continue
            if positions[s] >= len(buffers[s]):  # empty or fully consumed
                finished.add(s)
                continue
            item = buffers[s][positions[s]]
            heapq.heappush(heap, (item.timestamp, s))
        taken: list[StreamItem] = []
        while heap and len(taken) < batch:
            _ts, s = heapq.heappop(heap)
            pos = positions[s]
            taken.append(buffers[s][pos])
            positions[s] = pos + 1
            if pos + 1 < len(buffers[s]):
                heapq.heappush(heap, (buffers[s][pos + 1].timestamp, s))
            else:
                finished.add(s)
        return taken

    def _merge_plan(self, name: str, idx: int,
                    splits: range) -> dict[str, Any] | None:
        """Pre-merged pull plan for one source subtask: the remaining
        suffixes of its columnar splits, globally ordered by
        ``lexsort((split_id, timestamp))`` — provably the heap merge's
        order when per-split timestamps are nondecreasing (the heap pops
        by (ts, split) and per-split FIFO order is preserved by the
        stable sort).  Each pull is then a zero-copy slice.  Returns
        None (heap fallback) when any live split holds markers, opaque
        values, or out-of-order timestamps."""
        key = (name, idx)
        plan = self._merge_cache.get(key)
        if plan is not None:
            return plan
        batches = self._split_batches.get(name)
        if batches is None:
            return None
        sorted_flags = self._split_sorted[name]
        positions = self._split_positions[name]
        buffers = self._split_buffers[name]
        live: list[int] = []
        for s in splits:
            if positions[s] >= len(buffers[s]):
                continue
            rb = batches.get(s)
            if rb is None or not sorted_flags[s] \
                    or not isinstance(rb.values, np.ndarray):
                return None
            live.append(s)
        if len(live) == 1:
            s = live[0]
            rb = batches[s]
            plan = {"merged": rb.slice(positions[s], len(rb)),
                    "sids": None, "split": s, "cursor": 0}
        elif live:
            ts_parts, val_parts, code_parts, sid_parts = [], [], [], []
            kd: list | None = None
            for s in live:
                rb = batches[s]
                pos = positions[s]
                ts_parts.append(rb.timestamps[pos:])
                val_parts.append(rb.values[pos:])
                code_parts.append(rb.key_codes[pos:])
                sid_parts.append(np.full(len(rb) - pos, s, dtype=np.int64))
                kd = rb.key_dict
            ts_all = np.concatenate(ts_parts)
            sid_all = np.concatenate(sid_parts)
            order = np.lexsort((sid_all, ts_all))
            merged = RecordBatch(
                ts_all[order], np.concatenate(val_parts)[order],
                py_values=True,
                key_codes=np.concatenate(code_parts)[order], key_dict=kd)
            plan = {"merged": merged, "sids": sid_all[order],
                    "split": None, "cursor": 0}
        else:
            plan = {"merged": None, "sids": None, "split": None,
                    "cursor": 0}
        plan["total"] = 0 if plan["merged"] is None \
            else len(plan["merged"])
        self._merge_cache[key] = plan
        return plan

    def _take_merged_columnar(self, name: str, idx: int, splits: range,
                              batch: int) -> list | None:
        """Columnar twin of :meth:`_take_merged`: slice the pre-merged
        plan and advance per-split positions by how many of the pulled
        rows each split contributed (so checkpointed offsets stay
        mode-independent).  Returns None to fall back to the heap."""
        plan = self._merge_plan(name, idx, splits)
        if plan is None:
            return None
        positions = self._split_positions[name]
        finished = self._finished_splits[name]
        buffers = self._split_buffers[name]
        cur = plan["cursor"]
        total = plan["total"]
        if cur >= total:
            for s in splits:
                if positions[s] >= len(buffers[s]):
                    finished.add(s)
            return []
        end = min(cur + batch, total)
        plan["cursor"] = end
        out = plan["merged"].slice(cur, end)
        s = plan["split"]
        if s is not None:
            touched = [s]
            positions[s] += end - cur
        else:
            counts = np.bincount(plan["sids"][cur:end],
                                 minlength=splits.stop)
            touched = np.flatnonzero(counts).tolist()
            for sv in touched:
                positions[sv] += int(counts[sv])
        for sv in (splits if end >= total else touched):
            if positions[sv] >= len(buffers[sv]):
                finished.add(sv)
        return [out]

    def _sources_done(self) -> bool:
        for name in self.job.sources:
            if name not in self._split_buffers:
                return False
            if len(self._finished_splits[name]) \
                    < self.graph.source_splits[name]:
                return False
        return True

    # -- channel plumbing ----------------------------------------------------

    def _offer(self, key: tuple[str, int, str | None],
               sender: tuple[str, int], items: list[StreamItem]) -> None:
        """Batch offer with per-item backpressure/drop accounting —
        the same arithmetic as the single-instance executor's
        ``_offer_batch``, per physical channel."""
        injector = self.injector
        if injector is not None and getattr(injector, "has_channel_faults",
                                            False):
            items = self._apply_channel_faults(key, sender, items)
            if not items:
                return
        channel = self._channels[key][sender]
        columnar = self.columnar
        occupancy = items_weight(channel) if columnar else len(channel)
        n = items_weight(items) if columnar else len(items)
        capacity = self.channel_capacity
        node = key[0]
        if occupancy + n <= capacity:
            channel.extend(items)
            return
        if self.drop_on_overflow:
            room = max(0, capacity - occupancy)
            if room:
                channel.extend(take_prefix(items, room) if columnar
                               else items[:room])
            self.dropped_overflow += n - room
            if self.metrics is not None:
                self.metrics.counter("channel.dropped",
                                     node=node).inc(n - room)
            return
        if occupancy + n > capacity * 10:
            i0 = capacity * 10 - occupancy
            channel.extend(decode_items(take_prefix(items, i0))
                           if columnar else items[:i0])
            events = (i0 + 1) - max(0, min(i0 + 1, capacity - occupancy))
            self.backpressure_events += events
            if self.metrics is not None:
                self.metrics.counter("channel.backpressure",
                                     node=node).inc(events)
            raise BackpressureOverflow(
                f"channel into {node!r} exceeded 10x capacity; "
                "the job cannot keep up and dropping is disabled"
            )
        events = n - max(0, min(n, capacity - occupancy))
        self.backpressure_events += events
        if self.metrics is not None and events:
            self.metrics.counter("channel.backpressure",
                                 node=node).inc(events)
        channel.extend(items)

    def _apply_channel_faults(self, key: tuple[str, int, str | None],
                              sender: tuple[str, int],
                              items: list[StreamItem]) -> list[StreamItem]:
        """Thread one offer through the injector's network-fault site.

        Channels are *reliable transport over an unreliable network*:
        every offer becomes a sequence-numbered packet, and the receiver
        reassembles in-order, dropping replays — so delay, partition,
        duplication and reordering are all masked (TCP-style) while the
        protocol underneath genuinely experiences them.  Delay/partition
        hold the packet for N cycles (head-of-line: later packets wait
        in the reassembly buffer); reorder delivers it one cycle late so
        its successors arrive first; duplicate re-delivers the same
        packet, which the receiver discards by sequence number.
        """
        directives = self.injector.on_channel_offer(
            key[0], key[1], sender[0], sender[1])
        ck = (key, sender)
        seq = self._send_seq.get(ck, 0)
        self._send_seq[ck] = seq + 1
        hold = directives.get("hold", 0)
        if directives.get("reorder"):
            hold = max(hold, 1)
        if directives.get("duplicate"):
            self._held.append((self._cycle + 1, key, sender, seq,
                               list(items)))
        if hold:
            self._held.append((self._cycle + hold, key, sender, seq,
                               list(items)))
            if self.metrics is not None:
                self.metrics.counter("channel.held",
                                     node=key[0]).inc(len(items))
            return []
        return self._receive(key, sender, seq, items)

    def _receive(self, key: tuple[str, int, str | None],
                 sender: tuple[str, int], seq: int,
                 items: list[StreamItem]) -> list[StreamItem]:
        """Receiver-side reassembly: returns the in-order run now
        deliverable (empty while waiting on an earlier packet)."""
        ck = (key, sender)
        expect = self._recv_seq.get(ck, 0)
        if seq < expect:
            return []  # replayed packet: already delivered
        if seq > expect:
            self._ooo.setdefault(ck, {}).setdefault(seq, list(items))
            return []
        out = list(items)
        expect += 1
        buffered = self._ooo.get(ck)
        while buffered and expect in buffered:
            out.extend(buffered.pop(expect))
            expect += 1
        self._recv_seq[ck] = expect
        return out

    def _release_held(self) -> None:
        """Deliver held (delayed/duplicated/partitioned) packets whose
        release cycle has come, through reassembly onto the channel."""
        if not self._held:
            return
        due = [h for h in self._held if h[0] <= self._cycle]
        if not due:
            return
        self._held = [h for h in self._held if h[0] > self._cycle]
        for _release, key, sender, seq, items in due:
            delivered = self._receive(key, sender, seq, items)
            if delivered:
                self._channels[key][sender].extend(delivered)

    def _reset_transport(self, region: set[str] | None = None) -> None:
        """Forget per-channel transport state (restore path): held and
        buffered packets are in-flight data the rewind regenerates."""
        if region is None:
            self._held = []
            self._send_seq = {}
            self._recv_seq = {}
            self._ooo = {}
            return
        self._held = [h for h in self._held if h[1][0] not in region]
        for state in (self._send_seq, self._recv_seq, self._ooo):
            for ck in [ck for ck in state if ck[0][0] in region]:
                del state[ck]

    def _transport_pending(self) -> bool:
        return bool(self._held) or any(self._ooo.values())

    def _charge_cross_region(self, edge: PhysicalEdge,
                             lanes: Iterable[int]) -> None:
        """Model one packet traversing an inter-region link per
        receiving lane: the link's one-way latency lands on the
        receiver's lane clock, so cross-region shuffles stretch the
        modelled makespan exactly like slow subtasks do."""
        for lane in lanes:
            self.cross_region_packets += 1
            self.cross_region_transfer_s += edge.link_cost_s
            self._lane_cycle[lane] += edge.link_cost_s

    def _emit(self, up: str, up_idx: int, items: list[StreamItem]) -> None:
        """Route one subtask's output batch down every out-edge."""
        if not items:
            return
        for edge_idx, edge in self._down.get(up, ()):
            if edge.mode == MERGE:
                if edge.cross_region:
                    self.cross_region_packets += 1
                    self.cross_region_transfer_s += edge.link_cost_s
                sink = self.sinks[edge.down]
                if self.transactional_sinks:
                    self._deliver_transactional(sink, edge.down,
                                                (up, up_idx), items)
                    continue
                delivered = elements_of(items)
                sink.elements.extend(delivered)
                if delivered:
                    self._note_sink_delivery(edge.down, delivered)
                    if self.metrics is not None:
                        self.metrics.counter(
                            "sink.delivered",
                            sink=edge.down).inc(len(delivered))
                continue
            if edge.mode == FORWARD:
                if edge.cross_region:
                    self._charge_cross_region(edge, (up_idx,))
                self._offer((edge.down, up_idx, edge.side), (up, up_idx),
                            items)
                continue
            p_down = self.graph.nodes[edge.down].parallelism
            buckets: list[list[StreamItem]] = [[] for _ in range(p_down)]
            if edge.mode == HASH:
                g = self.num_key_groups
                for item in items:
                    if isinstance(item, (Watermark, CheckpointBarrier)):
                        # Progress markers fan out to every subtask.
                        for bucket in buckets:
                            bucket.append(item)
                    elif type(item) is RecordBatch:
                        self._partition_batch(item, g, p_down, buckets)
                    else:
                        kg = key_group_for(item.key, g)
                        buckets[subtask_for_key_group(kg, g, p_down)].append(
                            item)
            else:  # REBALANCE
                rr_key = (edge_idx, up_idx)
                cursor = self._rr.get(rr_key, 0)
                for item in items:
                    if isinstance(item, (Watermark, CheckpointBarrier)):
                        for bucket in buckets:
                            bucket.append(item)
                    elif type(item) is RecordBatch:
                        n = len(item)
                        if p_down == 1:
                            buckets[0].append(item)
                        else:
                            dest = (cursor + np.arange(n)) % p_down
                            for j in range(p_down):
                                part = item.compress(dest == j)
                                if len(part):
                                    buckets[j].append(part)
                        cursor += n
                    else:
                        buckets[cursor % p_down].append(item)
                        cursor += 1
                self._rr[rr_key] = cursor
            if edge.cross_region:
                self._charge_cross_region(
                    edge, (j for j, b in enumerate(buckets) if b))
            for j, bucket in enumerate(buckets):
                if bucket:
                    self._offer((edge.down, j, edge.side), (up, up_idx),
                                bucket)

    def _partition_batch(self, rb: RecordBatch, g: int, p: int,
                         buckets: list[list[StreamItem]]) -> None:
        """Hash-shuffle one columnar batch: one subtask lookup per
        *distinct* key in the batch's dictionary, then a vectorized
        gather/partition over the codes column.  Unkeyed rows fall back
        to per-element routing so the StreamError raises at exactly the
        position the per-item path would raise it."""
        codes = rb.key_codes
        kd = rb.key_dict
        cached = self._hash_sub_cache.get(p)
        if codes is not None and cached is not None and cached[0] is kd:
            sub = cached[1]  # cache hit implies the dict is None-free
        elif codes is None or any(k is None for k in kd):
            for e in rb.to_elements():
                kg = key_group_for(e.key, g)
                buckets[subtask_for_key_group(kg, g, p)].append(e)
            return
        else:
            sub = np.asarray(subtasks_for_keys(kd, g, p), dtype=np.int64)
            self._hash_sub_cache[p] = (kd, sub)
        if p == 1:
            buckets[0].append(rb)
            return
        dest = sub[codes]
        lo = int(dest.min())
        if lo == int(dest.max()):
            buckets[lo].append(rb)  # whole batch owned by one subtask
            return
        for j in range(p):
            part = rb.compress(dest == j)
            if len(part):
                buckets[j].append(part)

    def _deliver_transactional(self, sink: Any, sink_name: str,
                               feeder: tuple[str, int],
                               items: list[StreamItem]) -> None:
        """Merge a feeder's output into a 2PC sink: elements stage into
        the open transaction, barriers advance the sink's alignment and
        — once all feeders delivered — pre-commit (phase 1, acked to
        the coordinator)."""
        batch: list[Element] = []
        delivered = 0
        for item in items:
            if isinstance(item, CheckpointBarrier):
                if batch:
                    sink.deliver(batch, feeder)
                    self._note_sink_delivery(sink_name, batch)
                    delivered += len(batch)
                    batch = []
                cid = sink.on_barrier(feeder, item.checkpoint_id)
                if cid is not None and self._coordinator is not None:
                    self._coordinator.on_sink_ack(cid, sink_name)
            elif type(item) is RecordBatch:
                item.extend_elements(batch)
            elif isinstance(item, Element):
                batch.append(item)
        if batch:
            sink.deliver(batch, feeder)
            self._note_sink_delivery(sink_name, batch)
            delivered += len(batch)
        if self.metrics is not None and delivered:
            self.metrics.counter("sink.delivered",
                                 sink=sink_name).inc(delivered)

    def _note_sink_delivery(self, sink_name: str,
                            elements: list[Element]) -> None:
        """Advance a sink's event-time frontier (feeds the live
        ``sink.watermark_lag_s`` gauge)."""
        ts = max(e.timestamp for e in elements)
        last = self._sink_frontier.get(sink_name)
        if last is None or ts > last:
            self._sink_frontier[sink_name] = ts

    # -- watermark alignment -------------------------------------------------

    def _align(self, key: tuple[str, int, str | None],
               sender: tuple[str, int],
               pending: Iterable[StreamItem]) -> list[StreamItem]:
        """Replace raw channel watermarks with aligned ones: a subtask's
        event time is the minimum over all its input channels, and an
        aligned watermark is delivered only when that minimum advances."""
        wms = self._channel_wm[key]
        out: list[StreamItem] = []
        for item in pending:
            if isinstance(item, Watermark):
                if item.timestamp > wms[sender]:
                    wms[sender] = item.timestamp
                    aligned = min(wms.values())
                    if aligned > self._aligned_wm[key]:
                        self._aligned_wm[key] = aligned
                        out.append(Watermark(aligned))
            else:
                out.append(item)
        return out

    # -- drain cycles --------------------------------------------------------

    def _process(self, name: str, idx: int, side: str | None,
                 items: list[StreamItem]) -> None:
        op = self._ops[name][idx]
        injector = self.injector
        join = isinstance(op, IntervalJoinOperator)
        guard = self._guard.get(name)
        if self.batch_mode:
            if join:
                if self.columnar:
                    items = decode_items(items)
                if guard is None:
                    process = (lambda batch, _s=side:
                               op.process_side_batch(_s, batch))
                else:
                    process = self._guarded_side_process(op, guard, side)
            elif guard is None:
                process = op.process_batch
            else:
                process = self._guarded_process(op, guard)
            if injector is None:
                out = process(items)
            else:
                out = injector.intercept_batch(op, items, process)
            self._emit(name, idx, out)
            if self._dead_letters:
                self._emit_dead_letters(name, idx)
            return
        for item in items:
            if injector is not None:
                injector.before_item(op)
            if join:
                if isinstance(item, Watermark):
                    handler = (lambda it, _s=side:
                               op.on_watermark_side(_s, it))
                else:
                    handler = (lambda it, _s=side:
                               op.process_side(_s, it))
            else:
                handler = None
            if guard is None:
                out = (handler(item) if handler is not None
                       else op.handle(item))
            else:
                fault = None
                if self._data_chaos:
                    faults = injector.data_directives(op, (item,))
                    if faults:
                        fault = faults.get(0)
                out = guard_item(op, item, guard, self._dead_letters,
                                 fault, handler=handler)
            self._emit(name, idx, out)
        if self._dead_letters:
            self._emit_dead_letters(name, idx)

    def _drain_cycle(self) -> int:
        moved = 0
        profiler = self.profiler
        metrics = self.metrics
        coordinated = self._coordinator is not None
        for name in self.graph.topo:
            node = self.graph.nodes[name]
            join = isinstance(self._ops[name][0], IntervalJoinOperator)
            sides = ("left", "right") if join else (None,)
            for idx in range(node.parallelism):
                if self._stalled_now and (name, idx) in self._stalled_now:
                    continue
                started = time.perf_counter()
                drained = 0
                for side in sides:
                    chans = self._channels.get((name, idx, side))
                    if not chans:
                        continue
                    for sender in sorted(chans):
                        if coordinated:
                            drained += self._drain_channel_coordinated(
                                name, idx, side, sender)
                            continue
                        pending = chans[sender]
                        if not pending:
                            continue
                        chans[sender] = deque()
                        drained += (items_weight(pending) if self.columnar
                                    else len(pending))
                        items = self._align((name, idx, side), sender,
                                            pending)
                        if items:
                            self._process(name, idx, side, items)
                moved += drained
                if drained:
                    elapsed = time.perf_counter() - started
                    self._lane_cycle[idx] += elapsed
                    if metrics is not None:
                        self.metrics.summary(
                            "op.batch_size", op=f"{name}[{idx}]").observe(
                                drained)
                    if profiler is not None and not isinstance(
                            self._ops[name][idx], ChainedOperator):
                        profiler.record(
                            "op.wall_s", started,
                            op=self._ops[name][idx].name)
        return moved

    # -- coordinated draining (barrier-aware) ---------------------------------

    def _drain_channel_coordinated(self, name: str, idx: int,
                                   side: str | None,
                                   sender: tuple[str, int]) -> int:
        """Drain one channel under barrier rules: stop at a barrier that
        blocks the channel, spill items from lagging channels after an
        unaligned snapshot, and run alignment/snapshot transitions as
        markers are consumed."""
        key = (name, idx, side)
        chan_id = (side, sender[0], sender[1])
        aligner = self._aligners[(name, idx)]
        chans = self._channels[key]
        pending = chans[sender]
        if not pending or aligner.is_blocked(chan_id):
            return 0
        moved = 0
        segment: list[StreamItem] = []

        def _flush_segment() -> None:
            if not segment:
                return
            if aligner.is_spilling(chan_id):
                # Pre-barrier in-flight data after an unaligned snapshot
                # — copy into the checkpoint before processing mutates
                # downstream state.  Decoded: spilled state is
                # representation-independent, so an unaligned checkpoint
                # restores identically in any execution mode.
                self._coordinator.on_spill(
                    aligner.current_id,
                    (name, idx, side, sender[0], sender[1]),
                    decode_items(segment))
            items = self._align(key, sender, segment)
            if items:
                self._process(name, idx, side, items)

        while pending:
            item = pending.popleft()
            moved += item_weight(item)
            if isinstance(item, CheckpointBarrier):
                _flush_segment()
                segment = []
                if self._on_channel_barrier(name, idx, side, sender,
                                            chan_id, item):
                    return moved  # channel blocked until alignment ends
            else:
                segment.append(item)
        _flush_segment()
        return moved

    def _on_channel_barrier(self, name: str, idx: int, side: str | None,
                            sender: tuple[str, int], chan_id: tuple,
                            barrier: CheckpointBarrier) -> bool:
        """Consume one barrier marker; returns True when the channel is
        now blocked (stop draining it this pass)."""
        aligner = self._aligners[(name, idx)]
        result = aligner.on_barrier(chan_id, barrier.checkpoint_id)
        coord = self._coordinator
        if result.action == IGNORED:
            return False
        if result.action == STRAGGLER:
            # The spill for this channel is complete; its watermark cut
            # was captured at the unaligned snapshot.
            coord.on_spill_closed(result.checkpoint_id,
                                  (name, idx, side, sender[0], sender[1]))
            return False
        # BLOCKED and COMPLETE both mark this channel's cut point.
        coord.capture_channel_wm(
            (name, idx, side), sender,
            self._channel_wm[(name, idx, side)][sender])
        if result.action == COMPLETE:
            self._complete_alignment(name, idx, result.checkpoint_id,
                                     aligner)
            return False
        return True  # BLOCKED

    def _complete_alignment(self, name: str, idx: int, checkpoint_id: int,
                            aligner: BarrierAligner) -> None:
        """All channels aligned: snapshot, ack, forward the barrier."""
        if self.metrics is not None:
            self.metrics.summary(
                "checkpoint.alignment_cycles",
                op=f"{name}[{idx}]").observe(aligner.last_alignment_cycles)
        self._snapshot_subtask(name, idx, checkpoint_id)
        self._forward_barrier(name, idx, checkpoint_id)

    def _complete_unaligned(self, name: str, idx: int, checkpoint_id: int,
                            spill_channels: tuple) -> None:
        """Alignment timed out: snapshot *now*, open a spill for each
        lagging channel (capturing its watermark cut first), and let the
        barrier overtake the in-flight data."""
        coord = self._coordinator
        for chan_id in spill_channels:
            side, up, up_idx = chan_id
            coord.on_spill_open(checkpoint_id,
                                (name, idx, side, up, up_idx))
            coord.capture_channel_wm(
                (name, idx, side), (up, up_idx),
                self._channel_wm[(name, idx, side)][(up, up_idx)])
        if self.metrics is not None:
            self.metrics.counter("checkpoint.unaligned",
                                 op=f"{name}[{idx}]").inc()
        self._snapshot_subtask(name, idx, checkpoint_id)
        self._forward_barrier(name, idx, checkpoint_id)

    def _forward_barrier(self, name: str, idx: int,
                         checkpoint_id: int) -> None:
        for side in self._subtask_sides(name, idx):
            self._coordinator.capture_aligned_wm(
                (name, idx, side), self._aligned_wm[(name, idx, side)])
        self._emit(name, idx, [CheckpointBarrier(checkpoint_id)])
        if name in self._dlq_nodes and DLQ_SINK in self.sinks \
                and self.transactional_sinks:
            # Dead-letter feeders also gate the DLQ's 2PC pre-commit:
            # this subtask's barrier closes its dead-letter epoch.
            cid = self.sinks[DLQ_SINK].on_barrier((name, idx),
                                                  checkpoint_id)
            if cid is not None and self._coordinator is not None:
                self._coordinator.on_sink_ack(cid, DLQ_SINK)
        self._capture_rr(name, idx)

    def _subtask_sides(self, name: str, idx: int) -> list[str | None]:
        join = isinstance(self._ops[name][0], IntervalJoinOperator)
        return [s for s in (("left", "right") if join else (None,))
                if (name, idx, s) in self._aligned_wm]

    def _snapshot_subtask(self, name: str, idx: int,
                          checkpoint_id: int) -> None:
        """Snapshot one subtask's members on barrier passage and ack the
        coordinator.  The injector's barrier-phase crash site sits just
        before the state read — a subtask dying *during* its snapshot."""
        subtask = f"{name}[{idx}]"
        op = self._ops[name][idx]
        if self.injector is not None:
            self.injector.before_snapshot(op, subtask, checkpoint_id)
        started = time.perf_counter()
        node = self.graph.nodes[name]
        keyed: dict[str, dict[int, Any]] = {}
        scalar: dict[str, Any] = {}
        for m in node.members:
            clone = self._clones[m][idx]
            if self.job.operators[m].requires_shuffle:
                keyed[m] = clone.snapshot_key_groups(self.num_key_groups)
                scalar[m] = clone.scalar_snapshot()
            else:
                scalar[m] = clone.snapshot()
        self._coordinator.on_subtask_ack(checkpoint_id, name, idx,
                                         keyed, scalar)
        if self._data_chaos:
            # This subtask's data-fault counters are exactly at the
            # barrier cut: everything pre-barrier is processed, nothing
            # post-barrier is.  Report them so the assembled checkpoint
            # can rewind fault windows to the same records on restore.
            all_counts = self.injector.data_counts()
            self._coordinator.capture_data_counts(
                checkpoint_id,
                {self._clones[m][idx].name:
                 all_counts.get(self._clones[m][idx].name, 0)
                 for m in node.members})
        if self.profiler is not None:
            self.profiler.record("checkpoint.snapshot_s", started,
                                 op=subtask)

    def _tick_aligners(self) -> None:
        """Once per macro cycle: aligners still waiting count a pending
        cycle; past the unaligned threshold they flip to spill mode."""
        if self._coordinator is None:
            return
        for (name, idx), aligner in self._aligners.items():
            result = aligner.on_cycle()
            if result is not None:
                self._complete_unaligned(name, idx, result.checkpoint_id,
                                         result.spill_channels)

    # -- run loop ------------------------------------------------------------

    def run(self, source_batch: int = 256,
            max_cycles: int | None = None) -> dict[str, SinkBuffer]:
        """Run until sources are exhausted and channels drained."""
        if self.tracer is not None:
            self._ensure_spans()
            with self.tracer.activate(self._job_span):
                return self._run_loop(source_batch, max_cycles)
        return self._run_loop(source_batch, max_cycles)

    def _end_cycle(self) -> None:
        """Fold this cycle's lane times into the modelled makespan: the
        cycle takes as long as its busiest lane (subtasks overlap)."""
        busiest = max(self._lane_cycle, default=0.0)
        if busiest > 0.0:
            self.modeled_makespan_s += busiest
            for lane, busy in enumerate(self._lane_cycle):
                self.lane_busy_s[lane] += busy
                self._lane_cycle[lane] = 0.0

    def _begin_cycle(self) -> None:
        """Macro-cycle prologue: release held channel batches, compute
        the stalled-subtask set, and beat heartbeats for everyone else
        (a stalled subtask is fail-silent: it neither drains nor beats,
        so only the failure detector notices)."""
        self._release_held()
        injector = self.injector
        if injector is not None and getattr(injector, "has_stalls", False):
            self._stalled_now = {
                (name, idx)
                for name in self.graph.topo
                for idx in range(self.graph.nodes[name].parallelism)
                if injector.stall_check(self._ops[name][idx],
                                        f"{name}[{idx}]")
            }
        elif self._stalled_now:
            self._stalled_now = set()
        if self._coordinator is not None:
            for name in self.graph.topo:
                for idx in range(self.graph.nodes[name].parallelism):
                    if (name, idx) not in self._stalled_now:
                        self._coordinator.heartbeat(f"{name}[{idx}]")

    def _pending_items(self) -> bool:
        return any(chan for chans in self._channels.values()
                   for chan in chans.values())

    def _run_loop(self, source_batch: int,
                  max_cycles: int | None) -> dict[str, SinkBuffer]:
        cycles = 0
        idle = 0
        coordinator = self._coordinator
        while True:
            self._begin_cycle()
            pulled = self._pull_sources(source_batch)
            if coordinator is not None:
                coordinator.on_cycle_start(self)
            moved = self._drain_cycle()
            while self._drain_cycle():
                pass
            self._tick_aligners()
            self._end_cycle()
            self._cycle += 1
            # Live refresh: gauges used to be set only at end-of-run,
            # which starved any observer of a running job (the
            # autoscaler most of all).  Publishing per macro cycle keeps
            # backpressure/progress/watermark-lag gauges current.
            if self.metrics is not None:
                self._publish_metrics()
            if coordinator is not None:
                coordinator.on_cycle_end(self)
            cycles += 1
            if self._sources_done() and not pulled and moved == 0:
                # Blocked, stalled or held items keep the loop alive:
                # barriers and fault windows resolve with more cycles.
                if not self._transport_pending() \
                        and not self._pending_items():
                    break
                idle += 1
                if idle > 100_000:
                    raise CheckpointError(
                        "run loop made no progress for 100000 cycles; "
                        "items are permanently stuck in channels")
            else:
                idle = 0
            if max_cycles is not None and cycles >= max_cycles:
                break
        if self._sources_done() and not self._transport_pending() \
                and not self._pending_items():
            self._flush()
            self._close_spans()
            self._publish_metrics()
        return self.sinks

    def _flush(self) -> None:
        if self._flushed:
            return
        self._flushed = True
        for name in self.graph.topo:
            node = self.graph.nodes[name]
            for idx in range(node.parallelism):
                started = time.perf_counter()
                out = self._ops[name][idx].flush()
                if out:
                    self._emit(name, idx, out)
                self._lane_cycle[idx] += time.perf_counter() - started
                if out:
                    while self._drain_cycle():
                        pass
        self._end_cycle()

    @property
    def done(self) -> bool:
        return self._flushed

    # -- modelled speedup ------------------------------------------------------

    @property
    def serial_busy_s(self) -> float:
        """Total subtask busy time — what one lane would have paid."""
        return sum(self.lane_busy_s)

    @property
    def modeled_speedup(self) -> float:
        """Serial work over modelled makespan: the concurrency the plan
        actually exposed (≤ max parallelism; 1.0 when single-lane)."""
        if self.modeled_makespan_s <= 0.0:
            return 1.0
        return self.serial_busy_s / self.modeled_makespan_s

    # -- counters / introspection ---------------------------------------------

    def logical_counters(self, operator: str) -> tuple[int, int]:
        """(processed, emitted) summed across an operator's subtasks."""
        clones = self._clones[operator]
        return (sum(c.processed for c in clones),
                sum(c.emitted for c in clones))

    def subtask_operators(self, operator: str) -> list[Operator]:
        """The per-subtask clones of one logical operator."""
        return list(self._clones[operator])

    def source_item_timestamps(self, name: str) -> list[float]:
        """Timestamps of every item in one source's split buffers, in
        split order.  The scaling supervisor sorts these once to build
        its deterministic arrival model (how many elements have
        "arrived" by sim-time t)."""
        buffers = self._materialize_source(name)
        return [item.timestamp
                for _, buf in sorted(buffers.items()) for item in buf]

    def source_pulled(self, name: str) -> int:
        """Total items pulled so far across one source's splits."""
        self._materialize_source(name)
        return sum(self._split_positions[name].values())

    # -- checkpoints -----------------------------------------------------------

    def checkpoint(self) -> ParallelCheckpoint:
        """Aligned snapshot: keyed state by key group, sources by split,
        sink contents in full (so a restore into a *fresh* executor —
        the rescaling path — reproduces the run exactly)."""
        if self._pending_items() or self._transport_pending():
            raise CheckpointError("cannot checkpoint with items in flight; "
                                  "call run() or drain first")
        self._checkpoint_seq += 1
        started = (self.profiler.timer()
                   if self.profiler is not None else 0.0)
        parallelism: dict[str, int] = {}
        keyed_state: dict[str, dict[int, Any]] = {}
        scalar_state: dict[str, list[Any]] = {}
        for m, op in self.job.operators.items():
            clones = self._clones[m]
            parallelism[m] = len(clones)
            if op.requires_shuffle:
                groups: dict[int, Any] = {}
                for clone in clones:
                    groups.update(
                        clone.snapshot_key_groups(self.num_key_groups))
                keyed_state[m] = groups
                scalar_state[m] = [c.scalar_snapshot() for c in clones]
            else:
                scalar_state[m] = [c.snapshot() for c in clones]
        source_positions: dict[str, dict[int, int]] = {}
        for name in self.job.sources:
            self._materialize_source(name)
            source_positions[name] = dict(self._split_positions[name])
            parallelism[name] = self.graph.source_parallelism[name]
        snapshot = ParallelCheckpoint(
            checkpoint_id=self._checkpoint_seq,
            num_key_groups=self.num_key_groups,
            parallelism=parallelism,
            num_splits=dict(self.graph.source_splits),
            source_positions=source_positions,
            keyed_state=keyed_state,
            scalar_state=scalar_state,
            sink_elements={s: list(buf.elements)
                           for s, buf in self.sinks.items()},
            routing_state={
                "channel_wm": {k: dict(v)
                               for k, v in self._channel_wm.items()},
                "aligned_wm": dict(self._aligned_wm),
                "rr": dict(self._rr),
            },
            shed_state=self.shed_state_snapshot(),
            data_counts=(self.injector.data_counts()
                         if self._data_chaos else {}),
        )
        if self.profiler is not None:
            self.profiler.record("checkpoint.duration_s", started)
        if self.metrics is not None:
            self.metrics.counter("executor.checkpoints").inc()
        if self._job_span is not None:
            self._job_span.add_event("checkpoint",
                                     checkpoint_id=snapshot.checkpoint_id)
        return snapshot

    def restore(self, checkpoint: ParallelCheckpoint) -> dict[str, int]:
        """Rewind to a snapshot — possibly taken at another parallelism.

        At unchanged parallelism the restore is exact (routing state
        included).  On a rescale, key groups and splits are reassigned
        to the new subtask ranges and scalar state merges conservatively
        (see ``restore_parallel`` / ``restore_rescaled`` on operators).
        Returns recovery stats: ``replayed_elements`` is how much source
        input the rewind will re-read (the recovery cost regional
        restarts minimize).
        """
        if checkpoint.num_key_groups != self.num_key_groups:
            raise CheckpointError(
                f"snapshot has {checkpoint.num_key_groups} key groups, "
                f"this plan {self.num_key_groups}; key-group counts are "
                "fixed for a job's lifetime")
        replayed = 0
        for name, positions in checkpoint.source_positions.items():
            if name not in self.job.sources:
                raise CheckpointError(
                    f"snapshot references unknown source {name!r}")
            if checkpoint.num_splits[name] \
                    != self.graph.source_splits[name]:
                raise CheckpointError(
                    f"source {name!r}: snapshot has "
                    f"{checkpoint.num_splits[name]} splits, this plan "
                    f"{self.graph.source_splits[name]}; pin "
                    "SourceSpec.splits to rescale")
            buffers = self._materialize_source(name)
            finished = self._finished_splits[name]
            finished.clear()
            for s, pos in positions.items():
                replayed += max(0, self._split_positions[name][s] - pos)
                self._split_positions[name][s] = pos
                if pos >= len(buffers[s]):
                    finished.add(s)
        self._merge_cache.clear()  # rewound positions: re-plan pulls
        for m in self.job.operators:
            if m not in checkpoint.scalar_state:
                raise CheckpointError(
                    f"snapshot missing operator {m!r}")
            clones = self._clones[m]
            old_p = checkpoint.parallelism[m]
            exact = old_p == len(clones)
            if m in checkpoint.keyed_state:
                groups = checkpoint.keyed_state[m]
                for i, clone in enumerate(clones):
                    mine = {kg: groups[kg]
                            for kg in key_group_range(self.num_key_groups,
                                                      len(clones), i)
                            if kg in groups}
                    scalars = ([checkpoint.scalar_state[m][i]] if exact
                               else list(checkpoint.scalar_state[m]))
                    clone.restore_parallel(mine, scalars, primary=(i == 0))
            else:
                for i, clone in enumerate(clones):
                    if exact:
                        clone.restore(checkpoint.scalar_state[m][i])
                    else:
                        clone.restore_rescaled(
                            list(checkpoint.scalar_state[m]))
        for name, buf in self.sinks.items():
            elements = list(checkpoint.sink_elements.get(name, ()))
            if hasattr(buf, "restore_elements"):
                buf.restore_elements(elements)  # 2PC: truncate open txns
            else:
                buf.elements[:] = elements
        for chans in self._channels.values():
            for sender in chans:
                chans[sender].clear()
        self._reset_transport()
        routing = checkpoint.routing_state
        same_shape = (routing
                      and routing["channel_wm"].keys()
                      == self._channel_wm.keys()
                      and all(routing["channel_wm"][k].keys()
                              == self._channel_wm[k].keys()
                              for k in self._channel_wm))
        if same_shape:
            for k in self._channel_wm:
                self._channel_wm[k] = dict(routing["channel_wm"][k])
            self._aligned_wm = dict(routing["aligned_wm"])
            self._rr = dict(routing["rr"])
        else:
            for k, wms in self._channel_wm.items():
                for sender in wms:
                    wms[sender] = float("-inf")
                self._aligned_wm[k] = float("-inf")
            self._rr = {}
        if checkpoint.in_flight:
            if not same_shape:
                raise CheckpointError(
                    "an unaligned checkpoint (spilled in-flight state) "
                    "cannot be restored into a different plan shape; "
                    "restore at the original parallelism first")
            for (down, idx, side, up, up_idx), items \
                    in checkpoint.in_flight.items():
                self._channels[(down, idx, side)][(up, up_idx)].extend(
                    items)
        for aligner in self._aligners.values():
            aligner.reset()
        self.apply_shed_state(checkpoint.shed_state)
        if self._data_chaos:
            # Data-fault windows name records, not wall-clock events:
            # rewinding the counters makes replay re-poison exactly the
            # records the lost epoch poisoned, so committed output stays
            # identical to a crash-free run under the same data faults.
            self.injector.restore_data_counts(checkpoint.data_counts)
        self._dead_letters.clear()
        self._flushed = False
        if self._coordinator is not None:
            self._coordinator.on_executor_restored()
        if self.metrics is not None:
            self.metrics.counter("executor.restores").inc()
        if self._job_span is not None:
            self._job_span.add_event("restore",
                                     checkpoint_id=checkpoint.checkpoint_id)
        return {"replayed_elements": replayed,
                "restored_nodes": len(self.graph.topo)}

    def restore_region(self, checkpoint: ParallelCheckpoint,
                       region: set[str]) -> dict[str, int]:
        """Partial recovery: rewind only the nodes in ``region`` (an
        execution-node/source/sink set from
        :func:`~repro.streaming.coordinator.failover_region_of`),
        leaving every other subtask's state, channels and progress
        untouched.  Only valid at the checkpoint's own parallelism —
        regional recovery is a restart, not a rescale.  Returns recovery
        stats; ``replayed_elements`` counts only the region's sources,
        which is what makes partial recovery cheaper than global.
        """
        if checkpoint.num_key_groups != self.num_key_groups:
            raise CheckpointError("key-group count mismatch")
        for m in self.job.operators:
            if self.graph.rename[m] in region \
                    and checkpoint.parallelism.get(m) \
                    != len(self._clones[m]):
                raise CheckpointError(
                    f"regional restore needs matching parallelism for "
                    f"{m!r}; use restore() to rescale")
        replayed = 0
        for name in self.job.sources:
            if name not in region:
                continue
            positions = checkpoint.source_positions.get(name, {})
            buffers = self._materialize_source(name)
            finished = self._finished_splits[name]
            finished.clear()
            for s, pos in positions.items():
                replayed += max(0, self._split_positions[name][s] - pos)
                self._split_positions[name][s] = pos
                if pos >= len(buffers[s]):
                    finished.add(s)
            for key in [k for k in self._merge_cache if k[0] == name]:
                del self._merge_cache[key]
        restored_nodes = 0
        for m in self.job.operators:
            exec_name = self.graph.rename[m]
            if exec_name not in region:
                continue
            restored_nodes += 1
            clones = self._clones[m]
            if m in checkpoint.keyed_state:
                groups = checkpoint.keyed_state[m]
                for i, clone in enumerate(clones):
                    mine = {kg: groups[kg]
                            for kg in key_group_range(self.num_key_groups,
                                                      len(clones), i)
                            if kg in groups}
                    clone.restore_parallel(
                        mine, [checkpoint.scalar_state[m][i]],
                        primary=(i == 0))
            else:
                for i, clone in enumerate(clones):
                    clone.restore(checkpoint.scalar_state[m][i])
        for name, buf in self.sinks.items():
            if name not in region:
                continue
            elements = list(checkpoint.sink_elements.get(name, ()))
            if hasattr(buf, "restore_elements"):
                buf.restore_elements(elements)
            else:
                buf.elements[:] = elements
        routing = checkpoint.routing_state
        channel_wm = routing.get("channel_wm", {}) if routing else {}
        aligned_wm = routing.get("aligned_wm", {}) if routing else {}
        for key, chans in self._channels.items():
            down, idx, side = key
            if down not in region:
                continue
            for sender in chans:
                chans[sender].clear()
                saved = channel_wm.get(key, {})
                self._channel_wm[key][sender] = saved.get(
                    sender, float("-inf"))
            self._aligned_wm[key] = aligned_wm.get(key, float("-inf"))
        self._reset_transport(region)
        if checkpoint.in_flight:
            for (down, idx, side, up, up_idx), items \
                    in checkpoint.in_flight.items():
                if down in region:
                    self._channels[(down, idx, side)][(up, up_idx)].extend(
                        items)
        rr = routing.get("rr", {}) if routing else {}
        for edge_idx, edge in enumerate(self.graph.edges):
            if edge.mode == REBALANCE and edge.up in region:
                for key in list(self._rr):
                    if key[0] == edge_idx:
                        self._rr[key] = rr.get(key, 0)
        for (name, idx), aligner in self._aligners.items():
            if name in region:
                aligner.reset()
        self.apply_shed_state(
            checkpoint.shed_state,
            sources=[n for n in self.job.sources if n in region])
        self._flushed = False
        if self._coordinator is not None:
            self._coordinator.on_executor_restored()
            for name in region:
                if name in self.graph.nodes:
                    for idx in range(self.graph.nodes[name].parallelism):
                        self._coordinator.monitor.reset(f"{name}[{idx}]")
        if self.metrics is not None:
            self.metrics.counter("executor.regional_restores").inc()
        if self._job_span is not None:
            self._job_span.add_event(
                "restore.regional",
                checkpoint_id=checkpoint.checkpoint_id,
                region=",".join(sorted(region)))
        return {"replayed_elements": replayed,
                "restored_nodes": restored_nodes}

    # -- observability ---------------------------------------------------------

    def _mode_name(self) -> str:
        if not self.batch_mode:
            return "per_item"
        return "chained" if any(len(n.members) > 1
                                for n in self.graph.nodes.values()) \
            else "batched"

    def _ensure_spans(self) -> None:
        """Job span -> logical operator spans -> per-subtask child spans
        (only when parallelism > 1), so a parallel trace nests physical
        structure under the logical graph the other suites assert on."""
        if self.tracer is None or self._job_span is not None:
            return
        self._job_span = self.tracer.start_span(
            f"job:{self.job.name}",
            attrs={"mode": self._mode_name(),
                   "max_parallelism": self.graph.max_parallelism()})
        for name in sorted(self.job.sources):
            span = self.tracer.start_span(
                f"source:{name}", parent=self._job_span,
                attrs={"parallelism":
                       self.graph.source_parallelism[name]})
            self._obs_spans[f"source:{name}"] = span
        for name in self.job.topological_operators():
            width = len(self._clones[name])
            span = self.tracer.start_span(
                f"op:{name}", parent=self._job_span,
                attrs={"parallelism": width})
            self._obs_spans[f"op:{name}"] = span
            if width > 1:
                for i in range(width):
                    self._obs_spans[f"op:{name}[{i}]"] = \
                        self.tracer.start_span(f"op:{name}[{i}]",
                                               parent=span,
                                               attrs={"subtask": i})
        for name in sorted(self.job.sinks):
            self._obs_spans[f"sink:{name}"] = self.tracer.start_span(
                f"sink:{name}", parent=self._job_span)

    def _close_spans(self) -> None:
        if self._job_span is None:
            return
        for name in self.job.sources:
            span = self._obs_spans[f"source:{name}"]
            buffers = self._split_buffers.get(name, {})
            span.set_attr("records",
                          sum(len(b) for b in buffers.values()))
            span.end()
        for name in self.job.operators:
            width = len(self._clones[name])
            if width > 1:
                for i, clone in enumerate(self._clones[name]):
                    sub = self._obs_spans[f"op:{name}[{i}]"]
                    sub.set_attr("processed", clone.processed)
                    sub.set_attr("emitted", clone.emitted)
                    sub.end()
            processed, emitted = self.logical_counters(name)
            span = self._obs_spans[f"op:{name}"]
            span.set_attr("processed", processed)
            span.set_attr("emitted", emitted)
            span.end()
        for name, buf in self.sinks.items():
            span = self._obs_spans[f"sink:{name}"]
            span.set_attr("delivered", len(buf))
            span.end()
        self._job_span.set_attr("backpressure_events",
                                self.backpressure_events)
        self._job_span.set_attr("dropped_overflow", self.dropped_overflow)
        self._job_span.set_attr("modeled_makespan_s",
                                self.modeled_makespan_s)
        self._job_span.end()

    def _publish_metrics(self) -> None:
        """Publish executor/operator/sink gauges.  Called every macro
        cycle (live refresh) and at end-of-run; handles are cached so
        the per-cycle cost is attribute sets, not label rendering."""
        if self.metrics is None:
            return
        cache = self._gauge_cache
        if cache is None:
            m = self.metrics
            cache = self._gauge_cache = {
                "backpressure": m.gauge("executor.backpressure_events"),
                "dropped": m.gauge("executor.dropped_overflow"),
                "shed": m.gauge("executor.shed_elements"),
                "makespan": m.gauge("executor.modeled_makespan_s"),
                "busy": m.gauge("executor.serial_busy_s"),
                "ops": [
                    (m.gauge("op.processed", op=name),
                     m.gauge("op.emitted", op=name),
                     [(clone, m.gauge("subtask.processed", op=clone.name))
                      for clone in self._clones[name]])
                    for name in self.job.operators
                ],
                "sinks": [
                    (name, buf, m.gauge("sink.size", sink=name),
                     m.gauge("sink.watermark_lag_s", sink=name))
                    for name, buf in self.sinks.items()
                ],
            }
        cache["backpressure"].set(self.backpressure_events)
        cache["dropped"].set(self.dropped_overflow)
        cache["shed"].set(self.shed_elements)
        cache["makespan"].set(self.modeled_makespan_s)
        cache["busy"].set(self.serial_busy_s)
        for g_processed, g_emitted, clones in cache["ops"]:
            processed = emitted = 0
            for clone, g_sub in clones:
                g_sub.set(clone.processed)
                processed += clone.processed
                emitted += clone.emitted
            g_processed.set(processed)
            g_emitted.set(emitted)
        frontier = self._source_frontier
        for name, buf, g_size, g_lag in cache["sinks"]:
            g_size.set(len(buf))
            last = self._sink_frontier.get(name)
            if last is not None and frontier > float("-inf"):
                g_lag.set(max(0.0, frontier - last))
