"""Geotagged social streams (Section 3.2's "geocoded Tweets and Flickr").

Posts cluster around POIs with Zipf popularity, carry hashtag topics,
and arrive as a Poisson process — the fragmented, redundant UGC the
paper says must be "aggregated and compiled" into an environmental
model.  A fraction of posts is *untagged* (no subject entity), which is
exactly what breaks interpretation without semantic tagging (T3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import ConfigError

__all__ = ["SocialPost", "SocialStreamConfig", "generate_posts"]


@dataclass(frozen=True)
class SocialPost:
    post_id: str
    user: str
    timestamp: float
    x: float
    y: float
    topic: str
    poi_id: str | None  # None = not geotagged to a known place
    text: str


@dataclass(frozen=True)
class SocialStreamConfig:
    rate_per_s: float = 2.0
    horizon_s: float = 600.0
    num_users: int = 50
    topics: tuple[str, ...] = ("food", "art", "history", "music", "sport")
    zipf_s: float = 1.2  # POI popularity skew
    tagged_fraction: float = 0.7  # rest lack a resolvable poi_id
    scatter_m: float = 30.0  # post location scatter around the POI

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0 or self.horizon_s <= 0:
            raise ConfigError("rate and horizon must be positive")
        if not 0 <= self.tagged_fraction <= 1:
            raise ConfigError("tagged_fraction must be in [0, 1]")
        if self.num_users < 1 or not self.topics:
            raise ConfigError("need users and topics")


def generate_posts(rng: np.random.Generator,
                   poi_positions: list[tuple[str, float, float]],
                   config: SocialStreamConfig = SocialStreamConfig(),
                   ) -> list[SocialPost]:
    """Poisson-arrival posts clustered around POIs.

    ``poi_positions`` rows: (poi_id, x, y); their order defines the Zipf
    popularity ranking.
    """
    if not poi_positions:
        raise ConfigError("need at least one POI")
    ranks = np.arange(1, len(poi_positions) + 1, dtype=float)
    weights = ranks ** -config.zipf_s
    weights /= weights.sum()
    posts: list[SocialPost] = []
    t = 0.0
    i = 0
    while True:
        t += float(rng.exponential(1.0 / config.rate_per_s))
        if t >= config.horizon_s:
            break
        poi_idx = int(rng.choice(len(poi_positions), p=weights))
        poi_id, px, py = poi_positions[poi_idx]
        x = px + float(rng.normal(0, config.scatter_m))
        y = py + float(rng.normal(0, config.scatter_m))
        topic = config.topics[int(rng.integers(0, len(config.topics)))]
        tagged = rng.random() < config.tagged_fraction
        posts.append(SocialPost(
            post_id=f"post-{i:05d}",
            user=f"su-{int(rng.integers(0, config.num_users)):03d}",
            timestamp=t, x=x, y=y, topic=topic,
            poi_id=poi_id if tagged else None,
            text=f"#{topic} at {poi_id if tagged else 'somewhere'}"))
        i += 1
    return posts
