"""Experiment T1 (Section 4.1, timeliness via offloading).

Claim under test: local processing cannot hold the AR real-time cap as
frames get heavy; cloud offloading can, "within a fixed time cap", with
edge in between; the winner flips at a crossover input size, and the
crossover moves with network quality.

Output: per (resolution, network) the frame latency of always-local /
edge / cloud / greedy, deadline-miss rate at a 33 ms cap, and the
measured crossover resolution.
"""

import pytest

from repro.core import ARBigDataPipeline, PipelineConfig
from repro.offload import AlwaysLocal, AlwaysRemote, GreedyLatency
from repro.simnet.network import LINK_PRESETS
from repro.vision.tracker import StageProfile

from tableprint import print_table

DEADLINE_S = 1.0 / 30.0
RESOLUTIONS = [(160, 120), (320, 240), (640, 480), (1280, 720),
               (1920, 1080)]
NETWORKS = ["lte", "wifi", "5g"]


def _profile(width, height):
    pixels = width * height
    # Feature/match counts scale sub-linearly with pixels (detector caps).
    features = min(1200, int(80 * (pixels / (160 * 120)) ** 0.5))
    return StageProfile(pixels=pixels, features=features,
                        matches=int(features * 0.4),
                        ransac_iterations=80)


def run_experiment():
    rows = []
    crossovers = {}
    for network in NETWORKS:
        previous_winner = None
        crossovers[network] = None
        for width, height in RESOLUTIONS:
            pipeline = ARBigDataPipeline(PipelineConfig(
                seed=1, access_link=network, deadline_s=DEADLINE_S))
            profile = _profile(width, height)
            latencies = {}
            misses = {}
            for name, policy in (
                    ("local", AlwaysLocal()),
                    ("edge", AlwaysRemote("edge")),
                    ("cloud", AlwaysRemote("cloud")),
                    ("greedy", GreedyLatency())):
                pipeline.set_offload_policy(policy)
                for _ in range(30):
                    pipeline.timeliness.admit_frame(profile)
                report = pipeline.timeliness.report
                latencies[name] = report.mean_latency_s * 1000
                misses[name] = report.miss_rate
            winner = min(("local", "edge", "cloud"),
                         key=lambda k: latencies[k])
            if (previous_winner == "local" and winner != "local"
                    and crossovers[network] is None):
                crossovers[network] = f"{width}x{height}"
            previous_winner = winner
            rows.append([network, f"{width}x{height}",
                         latencies["local"], latencies["edge"],
                         latencies["cloud"], latencies["greedy"],
                         misses["local"], misses["greedy"], winner])
    return rows, crossovers


def bench_t1_offload_crossover(benchmark):
    rows, crossovers = benchmark.pedantic(run_experiment, rounds=1,
                                          iterations=1)
    print_table(
        "T1  Sec 4.1: offload crossover (frame latency, ms)",
        ["net", "resolution", "local", "edge", "cloud", "greedy",
         "miss%local", "miss%greedy", "winner"],
        rows,
        note=f"33ms deadline; crossover resolutions: {crossovers}")
    by_key = {(r[0], r[1]): r for r in rows}
    # Shape checks: small frames favour local...
    small = by_key[("lte", "160x120")]
    assert small[8] == "local"
    # ...heavy frames favour offloading on good networks (wifi/5g); a
    # thin LTE uplink legitimately keeps heavy frames local — the
    # crossover's position depends on bandwidth, which is the point.
    for network in ("wifi", "5g"):
        heavy = by_key[(network, "1920x1080")]
        assert heavy[8] != "local", "offload must win on a fast network"
        assert crossovers[network] is not None
    # Greedy never loses to the best static choice (it includes them all).
    for row in rows:
        assert row[5] <= min(row[2], row[3], row[4]) * 1.05
    # The paper's cap claim: at VGA the device alone misses the 33 ms
    # deadline on every frame; offloading over 5G meets it (sometimes).
    vga_5g = by_key[("5g", "640x480")]
    assert vga_5g[6] == 1.0  # local misses everything
    assert vga_5g[7] < 1.0  # greedy meets the cap
