"""The interpretation engine: analytics output -> AR content.

"The output of a customer behavior analysis system is normally customer
stats, but AR is responsible for how to use the stats ... AR requires
semantically meaningful information to relate to the users' context."

An :class:`InterpretationEngine` holds binding rules keyed by the
*semantic tag* of an analytics result.  A result arrives as a plain
mapping with (at minimum) a ``subject`` identifier; interpretation
succeeds when (a) the result carries a tag with a registered rule and
(b) the subject resolves to a known :class:`SemanticEntity` — then the
rule produces an :class:`~repro.render.scene.Annotation` anchored at the
entity.  Untagged results or unknown subjects fail to bind, which is the
quantity experiment T3 sweeps (coverage with vs without semantic tags).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..render.scene import Annotation
from ..util.errors import InterpretationError
from .arml import ArmlDocument, ArmlFeature
from .entities import ContextStore, SemanticEntity

__all__ = ["BindingRule", "BoundContent", "InterpretationEngine"]

RuleFn = Callable[[SemanticEntity, Mapping[str, Any]], Annotation]


@dataclass(frozen=True)
class BindingRule:
    """How results with one semantic tag become AR content."""

    tag: str
    build: RuleFn


@dataclass
class BoundContent:
    """Outcome of interpreting a batch of analytics results."""

    annotations: list[Annotation] = field(default_factory=list)
    unbound_untagged: int = 0
    unbound_no_rule: int = 0
    unbound_unknown_subject: int = 0
    bound: int = 0

    @property
    def total(self) -> int:
        return (self.bound + self.unbound_untagged + self.unbound_no_rule
                + self.unbound_unknown_subject)

    @property
    def coverage(self) -> float:
        return self.bound / self.total if self.total else 1.0


def _default_rule(tag: str) -> BindingRule:
    """A generic rule: label the entity with the result's headline value."""

    def build(entity: SemanticEntity,
              result: Mapping[str, Any]) -> Annotation:
        value = result.get("value", "")
        text = f"{entity.name or entity.entity_id}: {value}"
        return Annotation(
            annotation_id=f"{tag}:{entity.entity_id}",
            anchor=entity.position,
            text=text,
            kind=tag,
            priority=float(result.get("priority", 1.0)),
        )

    return BindingRule(tag=tag, build=build)


class InterpretationEngine:
    """Binds semantically tagged analytics results to AR annotations."""

    def __init__(self, store: ContextStore) -> None:
        self.store = store
        self._rules: dict[str, BindingRule] = {}

    def register(self, rule: BindingRule) -> None:
        if rule.tag in self._rules:
            raise InterpretationError(f"duplicate rule for tag {rule.tag!r}")
        self._rules[rule.tag] = rule

    def register_default(self, tag: str) -> None:
        """Register the generic headline-value rule for ``tag``."""
        self.register(_default_rule(tag))

    def rules(self) -> list[str]:
        return sorted(self._rules)

    def interpret(self, results: list[Mapping[str, Any]],
                  ) -> BoundContent:
        """Bind a batch of analytics results.

        Each result should carry ``tag`` (semantic type) and ``subject``
        (entity id).  Binding failures are counted, never raised — a
        live AR pipeline degrades, it does not crash on one bad record.
        """
        out = BoundContent()
        for result in results:
            tag = result.get("tag")
            if not tag:
                out.unbound_untagged += 1
                continue
            rule = self._rules.get(tag)
            if rule is None:
                out.unbound_no_rule += 1
                continue
            subject = result.get("subject")
            if not subject or not self.store.has_entity(str(subject)):
                out.unbound_unknown_subject += 1
                continue
            entity = self.store.entity(str(subject))
            annotation = rule.build(entity, result)
            out.annotations.append(annotation)
            out.bound += 1
        return out

    def to_arml(self, content: BoundContent) -> ArmlDocument:
        """Export bound content as an ARML document (the exchange format
        the paper calls for)."""
        document = ArmlDocument()
        seen: set[str] = set()
        for annotation in content.annotations:
            if annotation.annotation_id in seen:
                continue  # repeated bindings of one entity collapse
            seen.add(annotation.annotation_id)
            document.add(ArmlFeature(
                feature_id=annotation.annotation_id,
                name=annotation.text,
                anchor=annotation.anchor,
                label_text=annotation.text,
                priority=annotation.priority,
                kind=annotation.kind,
            ))
        return document
