"""Unit tests: battery model and device classes."""

import pytest

from repro.offload import (
    DEVICE_CLASSES,
    AlwaysLocal,
    AlwaysRemote,
    Battery,
    OffloadPlanner,
    vision_pipeline,
)
from repro.simnet import LINK_PRESETS, NodeSpec, Topology
from repro.util.errors import OffloadError
from repro.util.rng import make_rng
from repro.vision.tracker import StageProfile


class TestBattery:
    def test_drain_and_fraction(self):
        battery = Battery(100.0)
        assert battery.drain(25.0)
        assert battery.fraction == 0.75
        assert battery.frames_served == 1

    def test_dies_at_zero(self):
        battery = Battery(10.0)
        assert battery.drain(9.0)
        assert not battery.drain(2.0)
        assert battery.empty
        assert not battery.drain(0.1)

    def test_lifetime_projection(self):
        battery = Battery(3600.0)  # 1 Wh
        # 0.1 J/frame at 30 fps = 3 W -> 1/3 hour.
        assert battery.lifetime_hours(0.1, 30.0) == pytest.approx(1 / 3)

    def test_invalid_params(self):
        with pytest.raises(OffloadError):
            Battery(0.0)
        with pytest.raises(OffloadError):
            Battery(1.0).drain(-1.0)
        with pytest.raises(OffloadError):
            Battery(1.0).lifetime_hours(0.0, 30.0)


class TestDeviceClasses:
    def test_presets_complete(self):
        assert set(DEVICE_CLASSES) == {"phone", "glasses", "contact-lens"}
        for device in DEVICE_CLASSES.values():
            assert device.cpu_hz > 0
            assert device.battery_j > 0

    def test_minimization_trend(self):
        """Smaller devices: less compute AND less battery (the paper's
        conflict)."""
        phone = DEVICE_CLASSES["phone"]
        glasses = DEVICE_CLASSES["glasses"]
        lens = DEVICE_CLASSES["contact-lens"]
        assert phone.cpu_hz > glasses.cpu_hz > lens.cpu_hz
        assert phone.battery_j > glasses.battery_j > lens.battery_j

    def test_offloading_extends_glasses_lifetime(self):
        """On a constrained device over a good link, offloading beats
        local compute on energy per frame and therefore battery life."""
        device = DEVICE_CLASSES["glasses"]
        topology = Topology(make_rng(0))
        topology.add_node(NodeSpec("device", cpu_hz=device.cpu_hz,
                                   role="device"))
        topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
        topology.add_link("device", "edge", LINK_PRESETS["wifi"])
        planner = OffloadPlanner(topology, "device", energy=device.energy)
        profile = StageProfile(pixels=320 * 240, features=300,
                               matches=120, ransac_iterations=80)
        pipeline = vision_pipeline(profile)
        local = AlwaysLocal().decide(planner, pipeline).outcome
        remote = AlwaysRemote("edge").decide(planner, pipeline).outcome
        assert remote.energy_j < local.energy_j
        battery = device.battery()
        local_hours = battery.lifetime_hours(local.energy_j, 30.0)
        remote_hours = battery.lifetime_hours(remote.energy_j, 30.0)
        assert remote_hours > local_hours
