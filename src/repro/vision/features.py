"""Feature detection, description and matching (pure numpy).

The detect->describe->match front end of the AR tracking pipeline:

- :func:`detect_corners` — Shi–Tomasi: minimum eigenvalue of the local
  structure tensor, with non-maximum suppression.
- :class:`BriefDescriptor` — BRIEF-style binary descriptor: intensity
  comparisons on a fixed random pattern over a smoothed patch.
- :func:`match_descriptors` — Hamming matching with Lowe's ratio test.

Images are float64 arrays in [0, 1], shape (H, W).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..util.errors import VisionError

__all__ = ["Keypoint", "detect_corners", "BriefDescriptor",
           "match_descriptors", "Match"]


@dataclass(frozen=True)
class Keypoint:
    """A detected corner (x right, y down, pixel units)."""

    x: float
    y: float
    response: float


@dataclass(frozen=True)
class Match:
    """Index pair into the query/train keypoint lists."""

    query_idx: int
    train_idx: int
    distance: int


def _check_image(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise VisionError("expected a 2-D grayscale image")
    if image.shape[0] < 16 or image.shape[1] < 16:
        raise VisionError("image too small for feature detection")
    return image


def detect_corners(image: np.ndarray, max_corners: int = 500,
                   quality: float = 0.01, min_distance: int = 5,
                   sigma: float = 1.0) -> list[Keypoint]:
    """Shi–Tomasi corners: min-eigenvalue score + greedy NMS."""
    image = _check_image(image)
    if not 0 < quality <= 1:
        raise VisionError("quality must be in (0, 1]")
    smoothed = ndimage.gaussian_filter(image, sigma)
    iy, ix = np.gradient(smoothed)
    ixx = ndimage.gaussian_filter(ix * ix, sigma)
    iyy = ndimage.gaussian_filter(iy * iy, sigma)
    ixy = ndimage.gaussian_filter(ix * iy, sigma)
    # Min eigenvalue of [[ixx, ixy], [ixy, iyy]].
    trace_half = (ixx + iyy) / 2.0
    disc = np.sqrt(np.maximum(((ixx - iyy) / 2.0) ** 2 + ixy ** 2, 0.0))
    response = trace_half - disc
    threshold = quality * float(response.max()) if response.max() > 0 else 0.0
    # Local maxima via maximum filter.
    footprint = np.ones((2 * min_distance + 1, 2 * min_distance + 1))
    local_max = ndimage.maximum_filter(response, footprint=footprint)
    mask = (response >= local_max - 1e-12) & (response > threshold)
    # Exclude a border so descriptors always fit.
    border = max(min_distance, 1)
    mask[:border, :] = False
    mask[-border:, :] = False
    mask[:, :border] = False
    mask[:, -border:] = False
    ys, xs = np.nonzero(mask)
    scores = response[ys, xs]
    order = np.argsort(-scores)
    keypoints = [Keypoint(x=float(xs[i]), y=float(ys[i]),
                          response=float(scores[i]))
                 for i in order[:max_corners]]
    return keypoints


class BriefDescriptor:
    """BRIEF binary descriptor over a smoothed patch.

    ``n_bits`` intensity comparisons at offsets drawn once from an
    isotropic Gaussian (fixed seed: the pattern is part of the
    descriptor definition, not run randomness).
    """

    def __init__(self, n_bits: int = 256, patch_size: int = 24,
                 pattern_seed: int = 7) -> None:
        if n_bits < 8:
            raise VisionError("n_bits must be >= 8")
        if patch_size < 8:
            raise VisionError("patch_size must be >= 8")
        self.n_bits = n_bits
        self.patch_size = patch_size
        rng = np.random.default_rng(pattern_seed)
        scale = patch_size / 5.0
        self._offsets_a = np.clip(
            rng.normal(0, scale, size=(n_bits, 2)),
            -patch_size / 2 + 1, patch_size / 2 - 1).astype(int)
        self._offsets_b = np.clip(
            rng.normal(0, scale, size=(n_bits, 2)),
            -patch_size / 2 + 1, patch_size / 2 - 1).astype(int)

    def compute(self, image: np.ndarray, keypoints: list[Keypoint],
                ) -> tuple[list[Keypoint], np.ndarray]:
        """Describe keypoints; drops those whose patch exits the image.

        Returns (kept keypoints, bool array of shape (N, n_bits)).
        """
        image = _check_image(image)
        smoothed = ndimage.gaussian_filter(image, 2.0)
        half = self.patch_size // 2
        h, w = image.shape
        kept: list[Keypoint] = []
        rows: list[np.ndarray] = []
        for kp in keypoints:
            x, y = int(round(kp.x)), int(round(kp.y))
            if not (half <= x < w - half and half <= y < h - half):
                continue
            a = smoothed[y + self._offsets_a[:, 1], x + self._offsets_a[:, 0]]
            b = smoothed[y + self._offsets_b[:, 1], x + self._offsets_b[:, 0]]
            rows.append(a < b)
            kept.append(kp)
        if not rows:
            return [], np.zeros((0, self.n_bits), dtype=bool)
        return kept, np.stack(rows)


def match_descriptors(query: np.ndarray, train: np.ndarray,
                      max_distance: int | None = None,
                      ratio: float = 0.8) -> list[Match]:
    """Hamming matching with Lowe's ratio test and cross-check.

    ``query``/``train`` are bool arrays (N, bits)/(M, bits).
    """
    query = np.asarray(query, dtype=bool)
    train = np.asarray(train, dtype=bool)
    if query.size == 0 or train.size == 0:
        return []
    if query.shape[1] != train.shape[1]:
        raise VisionError("descriptor widths differ")
    # Hamming distances via XOR popcount; arrays are modest, do it dense.
    distances = (query[:, None, :] ^ train[None, :, :]).sum(axis=2)
    matches: list[Match] = []
    best_train = distances.argmin(axis=0)  # per-train best query
    for qi in range(distances.shape[0]):
        row = distances[qi]
        order = np.argsort(row)
        ti = int(order[0])
        best = int(row[ti])
        if max_distance is not None and best > max_distance:
            continue
        if len(order) > 1:
            second = int(row[order[1]])
            if second > 0 and best >= ratio * second:
                continue
        if int(best_train[ti]) != qi:  # cross-check
            continue
        matches.append(Match(query_idx=qi, train_idx=ti, distance=best))
    return matches
