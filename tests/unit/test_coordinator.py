"""Coordinator companions: store, manifests, heartbeats, failover regions."""

import pytest

from repro.chaos import reference_events, reference_job, two_region_job
from repro.streaming.coordinator import (
    CheckpointManifest,
    CheckpointStore,
    HeartbeatMonitor,
    failover_region_of,
    failover_regions,
)
from repro.streaming.execution import (
    ParallelCheckpoint,
    compile_execution_graph,
)
from repro.util.clock import SimClock
from repro.util.errors import CheckpointError


def _checkpoint(cid: int) -> ParallelCheckpoint:
    return ParallelCheckpoint(
        checkpoint_id=cid, num_key_groups=8, parallelism={},
        num_splits={}, source_positions={}, keyed_state={},
        scalar_state={}, sink_elements={})


class TestCheckpointStore:
    def test_finalize_is_the_commit_point(self):
        store = CheckpointStore()
        manifest = CheckpointManifest(checkpoint_id=1)
        store.record(manifest)
        # pending: not a restore target, not the latest snapshot
        assert store.latest() is None
        assert store.latest_manifest() is None
        store.finalize(_checkpoint(1), manifest)
        assert store.latest().checkpoint_id == 1
        assert store.latest_manifest().status == "finalized"

    def test_prune_keeps_newest(self):
        store = CheckpointStore(keep=1)
        for cid in (1, 2, 3):
            manifest = CheckpointManifest(checkpoint_id=cid)
            store.record(manifest)
            store.finalize(_checkpoint(cid), manifest)
        assert store.latest().checkpoint_id == 3
        assert store.pruned == 2
        # manifests survive pruning as history
        assert sorted(store.manifests) == [1, 2, 3]

    def test_abort_only_flips_pending(self):
        store = CheckpointStore()
        manifest = CheckpointManifest(checkpoint_id=1)
        store.record(manifest)
        store.finalize(_checkpoint(1), manifest)
        store.abort(1)
        assert store.manifests[1].status == "finalized"
        store.record(CheckpointManifest(checkpoint_id=2))
        store.abort(2)
        assert store.manifests[2].status == "aborted"
        assert store.latest_manifest().checkpoint_id == 1

    def test_ids_monotonic_across_incarnations(self):
        store = CheckpointStore()
        assert store.next_checkpoint_id() == 1
        store.record(CheckpointManifest(checkpoint_id=1))
        store.abort(1)  # even an aborted attempt claims its id forever
        assert store.next_checkpoint_id() == 2

    def test_id_mismatch_rejected(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.finalize(_checkpoint(2), CheckpointManifest(checkpoint_id=1))

    def test_keep_zero_rejected(self):
        with pytest.raises(CheckpointError):
            CheckpointStore(keep=0)

    def test_manifest_round_trips_to_dict(self):
        manifest = CheckpointManifest(
            checkpoint_id=3, source_positions={"events": {0: 5}},
            acked_subtasks=["op[0]"], spilled_items=2)
        blob = manifest.as_dict()
        assert blob["checkpoint_id"] == 3
        assert blob["source_positions"] == {"events": {0: 5}}
        assert blob["status"] == "pending"
        assert blob["spilled_items"] == 2


class TestHeartbeatMonitor:
    def test_silent_subtask_declared_dead(self):
        clock = SimClock()
        monitor = HeartbeatMonitor(clock, timeout_s=5.0)
        monitor.register("a[0]")
        monitor.register("b[0]")
        clock.advance(4.0)
        monitor.beat("a[0]")
        assert monitor.dead() == []
        clock.advance(2.0)  # b[0] last beat 6s ago, a[0] 2s ago
        assert monitor.dead() == ["b[0]"]

    def test_reset_gives_fresh_deadline(self):
        clock = SimClock()
        monitor = HeartbeatMonitor(clock, timeout_s=1.0)
        monitor.register("a[0]")
        clock.advance(5.0)
        assert monitor.dead() == ["a[0]"]
        monitor.reset("a[0]")
        assert monitor.dead() == []

    def test_reset_all(self):
        clock = SimClock()
        monitor = HeartbeatMonitor(clock, timeout_s=1.0)
        monitor.register("a[0]")
        monitor.register("b[1]")
        clock.advance(9.0)
        assert monitor.dead() == ["a[0]", "b[1]"]
        monitor.reset_all()
        assert monitor.dead() == []

    def test_register_is_idempotent(self):
        clock = SimClock()
        monitor = HeartbeatMonitor(clock, timeout_s=1.0)
        monitor.register("a[0]")
        clock.advance(5.0)
        monitor.register("a[0]")  # must not refresh the deadline
        assert monitor.dead() == ["a[0]"]

    def test_bad_timeout_rejected(self):
        with pytest.raises(CheckpointError):
            HeartbeatMonitor(SimClock(), timeout_s=0)


class TestFailoverRegions:
    def _two_region_graph(self):
        job = two_region_job(reference_events(seed=1, n=10),
                             reference_events(seed=2, n=10))
        return compile_execution_graph(job, 2)

    def test_disjoint_pipelines_come_apart(self):
        graph = self._two_region_graph()
        regions = failover_regions(graph)
        assert len(regions) == 2
        flat = set().union(*regions)
        assert "events_a" in flat and "out_b" in flat

    def test_connected_pipeline_is_one_region(self):
        job = reference_job(reference_events(seed=1, n=10))
        graph = compile_execution_graph(job, 2)
        regions = failover_regions(graph)
        assert len(regions) == 1

    def test_replayable_edge_cuts_the_component(self):
        job = reference_job(reference_events(seed=1, n=10))
        graph = compile_execution_graph(job, 2)
        # every edge into the keyed window is log-backed -> the plan
        # splits at that boundary
        cut = {(e.up, e.down) for e in graph.edges
               if e.down == graph.rename.get("window_sum", "window_sum")}
        regions = failover_regions(graph, cut)
        assert len(regions) == 2

    def test_region_of_accepts_subtask_and_logical_names(self):
        graph = self._two_region_graph()
        by_subtask = failover_region_of(graph, "window_a[1]")
        by_logical = failover_region_of(graph, "window_a")
        assert by_subtask == by_logical
        assert "events_a" in by_subtask
        assert "out_a" in by_subtask
        assert not {"events_b", "out_b"} & by_subtask

    def test_region_of_source_and_sink(self):
        graph = self._two_region_graph()
        assert "out_b" in failover_region_of(graph, "events_b")
        assert "events_b" in failover_region_of(graph, "out_b")

    def test_unknown_name_raises(self):
        graph = self._two_region_graph()
        with pytest.raises(CheckpointError):
            failover_region_of(graph, "nonesuch")
