"""Property-based tests, second batch: layout, offload, privacy,
markers, ARML."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import ArmlDocument, ArmlFeature, parse_arml, serialize_arml
from repro.offload import OffloadPlanner, Pipeline, TaskStage
from repro.privacy import GridCloak, PlanarLaplace, private_top_k
from repro.render.layout import clutter_metrics, declutter_layout
from repro.simnet import LinkSpec, NodeSpec, Topology
from repro.util.errors import PrivacyError
from repro.util.geometry import Rect
from repro.util.rng import make_rng
from repro.vision.markers import MarkerSpec, decode_marker, generate_marker

SCREEN = Rect(0, 0, 640, 480)

label_items = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000),
              st.floats(min_value=0, max_value=640),
              st.floats(min_value=0, max_value=480),
              st.floats(min_value=10, max_value=120),
              st.floats(min_value=8, max_value=40),
              st.floats(min_value=0, max_value=10)),
    min_size=0, max_size=40,
    unique_by=lambda row: row[0])


class TestLayoutProperties:
    @given(label_items)
    @settings(max_examples=60)
    def test_declutter_placed_labels_never_overlap(self, raw):
        items = [(f"l{i}", x, y, w, h, p) for i, x, y, w, h, p in raw]
        placed = declutter_layout(items, SCREEN)
        active = [l for l in placed if not l.dropped]
        for i, a in enumerate(active):
            for b in active[i + 1:]:
                assert a.rect.intersection(b.rect) is None

    @given(label_items)
    @settings(max_examples=60)
    def test_declutter_placed_labels_inside_screen(self, raw):
        items = [(f"l{i}", x, y, w, h, p) for i, x, y, w, h, p in raw]
        placed = declutter_layout(items, SCREEN)
        for label in placed:
            if label.dropped:
                continue
            assert label.rect.x >= SCREEN.x - 1e-9
            assert label.rect.y >= SCREEN.y - 1e-9
            assert label.rect.x2 <= SCREEN.x2 + 1e-9
            assert label.rect.y2 <= SCREEN.y2 + 1e-9

    @given(label_items)
    @settings(max_examples=60)
    def test_every_label_accounted_for(self, raw):
        items = [(f"l{i}", x, y, w, h, p) for i, x, y, w, h, p in raw]
        placed = declutter_layout(items, SCREEN)
        assert len(placed) == len(items)
        metrics = clutter_metrics(placed, SCREEN)
        assert metrics.total == len(items)
        assert metrics.placed + metrics.dropped == len(items)
        assert 0.0 <= metrics.useful_ratio <= 1.0


class TestOffloadProperties:
    def _planner(self):
        topology = Topology(make_rng(0))
        topology.add_node(NodeSpec("device", cpu_hz=2e9, role="device"))
        topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
        topology.add_link("device", "edge",
                          LinkSpec(latency_s=0.002, bandwidth_bps=25e6))
        return OffloadPlanner(topology, "device")

    @given(st.lists(st.tuples(
        st.floats(min_value=1e5, max_value=1e8),
        st.floats(min_value=10, max_value=1e6)),
        min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_pricing_components_sum(self, stages_raw):
        stages = tuple(
            TaskStage(f"s{i}", cycles=c, output_bytes=b)
            for i, (c, b) in enumerate(stages_raw))
        pipeline = Pipeline("p", stages)
        planner = self._planner()
        for cut in pipeline.valid_cuts():
            outcome = planner.price(pipeline, cut, "edge")
            assert outcome.latency_s >= 0
            assert outcome.energy_j >= 0
            total = (outcome.local_compute_s + outcome.remote_compute_s
                     + outcome.network_s)
            assert abs(total - outcome.latency_s) < 1e-9

    @given(st.lists(st.tuples(
        st.floats(min_value=1e5, max_value=1e8),
        st.floats(min_value=10, max_value=1e6)),
        min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_cycles_conserved_across_cuts(self, stages_raw):
        stages = tuple(
            TaskStage(f"s{i}", cycles=c, output_bytes=b)
            for i, (c, b) in enumerate(stages_raw))
        pipeline = Pipeline("p", stages)
        for cut in pipeline.valid_cuts():
            total = pipeline.local_cycles(cut) + pipeline.remote_cycles(cut)
            assert abs(total - pipeline.total_cycles) <= \
                1e-9 * pipeline.total_cycles


class TestPrivacyProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=200))
    @settings(max_examples=40)
    def test_cloak_region_contains_user(self, seed, k):
        rng = np.random.default_rng(seed)
        population = rng.uniform(0, 1000, size=(max(k, 50), 2))
        cloak = GridCloak(Rect(0, 0, 1000, 1000), k=k)
        x, y = float(population[0, 0]), float(population[0, 1])
        try:
            region = cloak.cloak(x, y, population)
        except PrivacyError:
            return  # legal when even the root can't hold k users
        assert region.rect.contains(x, y)
        assert region.occupancy >= k

    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=0.001, max_value=1.0))
    @settings(max_examples=40)
    def test_planar_laplace_radius_positive_finite(self, seed, epsilon):
        mech = PlanarLaplace(epsilon, np.random.default_rng(seed))
        for _ in range(10):
            r = mech.sample_radius()
            assert np.isfinite(r)
            assert r >= 0

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=10),
           st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=40)
    def test_private_top_k_valid_subset(self, seed, k, epsilon):
        scores = {f"c{i}": float(i * 3 % 17) for i in range(15)}
        picks = private_top_k(scores, k=k, epsilon=epsilon,
                              rng=make_rng(seed))
        assert len(picks) == k
        assert len(set(picks)) == k
        assert set(picks) <= set(scores)


class TestMarkerProperty:
    @given(st.integers(min_value=0, max_value=MarkerSpec().max_id))
    @settings(max_examples=60)
    def test_every_id_roundtrips(self, marker_id):
        spec = MarkerSpec()
        texture = generate_marker(marker_id, spec)
        assert decode_marker(texture, np.eye(3), spec) == marker_id


class TestArmlProperty:
    safe_text = st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FA0,
                               blacklist_characters='<>&"\''),
        max_size=30)

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=10**6),
        safe_text,
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=0.0, max_value=100.0)),
        min_size=0, max_size=20,
        unique_by=lambda row: row[0]))
    @settings(max_examples=40)
    def test_roundtrip_preserves_everything(self, rows):
        document = ArmlDocument()
        for fid, name, x, y, priority in rows:
            document.add(ArmlFeature(
                feature_id=f"f{fid}", name=name,
                anchor=np.array([x, y, 0.0]),
                label_text=name, priority=priority))
        parsed = parse_arml(serialize_arml(document))
        assert len(parsed) == len(document)
        for fid, name, x, y, priority in rows:
            feature = parsed.get(f"f{fid}")
            assert feature.name == name
            assert feature.anchor[0] == x
            assert feature.anchor[1] == y
            assert feature.priority == priority
