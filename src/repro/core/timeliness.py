"""Timeliness control (Section 4.1 as a component).

The controller owns the per-frame real-time contract: given the frame's
measured vision workload it asks an offload policy for a placement,
prices the frame, and tracks the deadline budget.  It also owns the
incremental-vs-batch decision for analytics refreshes: incremental
updates are free-flowing; criteria changes force a rebuild, whose cost
is charged against freshness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analytics.quantiles import P2Quantile
from ..offload.executor import OffloadPlanner
from ..offload.policies import OffloadPolicy, PolicyDecision
from ..offload.tasks import vision_pipeline
from ..util.errors import PipelineError
from ..vision.tracker import StageProfile

__all__ = ["FrameTiming", "TimelinessController", "TimelinessReport",
           "AdaptiveQualityController"]


@dataclass(frozen=True)
class FrameTiming:
    """One frame's timing verdict."""

    latency_s: float
    energy_j: float
    placement: str
    met_deadline: bool
    decision: PolicyDecision


@dataclass
class TimelinessReport:
    """Aggregate timing over a run."""

    frames: int = 0
    deadline_misses: int = 0
    total_latency_s: float = 0.0
    total_energy_j: float = 0.0
    placements: dict[str, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.frames if self.frames else 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.frames if self.frames else 0.0

    @property
    def mean_energy_j(self) -> float:
        return self.total_energy_j / self.frames if self.frames else 0.0


class AdaptiveQualityController:
    """Graceful degradation: step frame quality down when the deadline
    slips, back up when there is headroom.

    Section 4.1's real-time contract must survive bad conditions — the
    AR session "continues at reduced rate rather than dying".  The
    controller holds a ladder of resolutions; after ``window`` frames it
    steps down if the miss rate exceeds ``down_threshold`` and steps up
    if every frame met the deadline with ``up_margin`` slack.
    """

    #: (width, height) ladder, best first.
    LADDER = ((1280, 720), (640, 480), (320, 240), (160, 120))

    def __init__(self, timeliness: "TimelinessController",
                 window: int = 10, down_threshold: float = 0.3,
                 up_margin: float = 0.5, start_level: int = 0) -> None:
        if not 0 <= start_level < len(self.LADDER):
            raise PipelineError("start_level out of range")
        self.timeliness = timeliness
        self.window = window
        self.down_threshold = down_threshold
        self.up_margin = up_margin
        self.level = start_level
        self._recent: list[FrameTiming] = []
        self.downshifts = 0
        self.upshifts = 0

    @property
    def resolution(self) -> tuple[int, int]:
        return self.LADDER[self.level]

    def profile_for_level(self) -> StageProfile:
        """Vision workload at the current quality level."""
        width, height = self.resolution
        pixels = width * height
        features = min(1200, int(80 * (pixels / (160 * 120)) ** 0.5))
        return StageProfile(pixels=pixels, features=features,
                            matches=int(features * 0.4),
                            ransac_iterations=80)

    def admit_frame(self) -> FrameTiming:
        """Admit one frame at the current quality and adapt."""
        timing = self.timeliness.admit_frame(self.profile_for_level())
        self._recent.append(timing)
        if len(self._recent) >= self.window:
            misses = sum(1 for t in self._recent if not t.met_deadline)
            miss_rate = misses / len(self._recent)
            deadline = self.timeliness.deadline_s
            max_latency = max(t.latency_s for t in self._recent)
            if (miss_rate > self.down_threshold
                    and self.level < len(self.LADDER) - 1):
                self.level += 1
                self.downshifts += 1
            elif (misses == 0
                  and max_latency < deadline * (1.0 - self.up_margin)
                  and self.level > 0):
                self.level -= 1
                self.upshifts += 1
            self._recent.clear()
        return timing


class TimelinessController:
    """Applies an offload policy per frame and tracks the deadline."""

    def __init__(self, planner: OffloadPlanner, policy: OffloadPolicy,
                 deadline_s: float = 1.0 / 30.0) -> None:
        if deadline_s <= 0:
            raise PipelineError("deadline must be positive")
        self.planner = planner
        self.policy = policy
        self.deadline_s = deadline_s
        self.report = TimelinessReport()
        self.latency_p95 = P2Quantile(0.95)

    def admit_frame(self, profile: StageProfile) -> FrameTiming:
        """Place and price one frame."""
        pipeline = vision_pipeline(profile)
        decision = self.policy.decide(self.planner, pipeline)
        outcome = decision.outcome
        met = outcome.latency_s <= self.deadline_s
        self.report.frames += 1
        self.report.total_latency_s += outcome.latency_s
        self.report.total_energy_j += outcome.energy_j
        if not met:
            self.report.deadline_misses += 1
        placement = outcome.tier_node if not outcome.is_local else "local"
        self.report.placements[placement] = \
            self.report.placements.get(placement, 0) + 1
        self.latency_p95.add(outcome.latency_s)
        return FrameTiming(latency_s=outcome.latency_s,
                           energy_j=outcome.energy_j,
                           placement=placement, met_deadline=met,
                           decision=decision)
