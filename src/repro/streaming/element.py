"""Stream elements: data records and watermarks.

Everything flowing through the dataflow graph is either an
:class:`Element` (a value with an event timestamp and optional key) or a
:class:`Watermark` asserting "no element with timestamp <= t will arrive
after me".  Watermarks drive event-time windowing — the mechanism that
lets the timeliness experiments (T2, A3) trade latency against
completeness exactly the way the paper's Section 4.1 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Element", "Watermark", "StreamItem"]


@dataclass(frozen=True)
class Element:
    """A data record in flight."""

    value: Any
    timestamp: float
    key: Any = None

    def with_value(self, value: Any) -> "Element":
        return Element(value=value, timestamp=self.timestamp, key=self.key)

    def with_key(self, key: Any) -> "Element":
        return Element(value=self.value, timestamp=self.timestamp, key=key)


@dataclass(frozen=True)
class Watermark:
    """Event-time progress marker."""

    timestamp: float


StreamItem = Element | Watermark
