"""Columnar batches: the zero-copy hot-path record representation.

A :class:`RecordBatch` stores a run of consecutive :class:`Element`\\ s
as parallel columns — a ``float64`` timestamp array, a value column, and
a dictionary-encoded key column — instead of a Python list of Element
objects.  Batches flow through channels next to plain stream items
(watermarks, barriers, loose elements), and operators that implement a
columnar kernel (``has_columnar_kernel = True``) consume them whole;
everything else sees decoded Elements via the per-item fallback, so the
representation is invisible above the channel layer (see
docs/ARCHITECTURE.md, "Columnar batch representation").

Layout rules that keep columnar execution **bit-identical** to per-item
execution:

- *Timestamps* are always encoded from Python floats and decoded with
  ``ndarray.tolist()``, which round-trips ``float`` exactly.
- *Values* use a ``float64`` array only when every source value is a
  Python ``float`` (``py_values=True``, decoded via ``tolist``); arrays
  produced by vectorized kernels keep ``py_values=False`` and decode to
  numpy scalars — exactly what the per-item vectorized path
  (``fn(np.asarray([v]))[0]``) produces.  Anything else (ints, dicts,
  mixed types) stays a Python list: the *opaque* path.
- *Keys* are dictionary-encoded: ``key_codes[i]`` indexes ``key_dict``,
  which holds the **original key objects** — never numpy conversions —
  so ``repr``-based shuffle hashing and state snapshots are unchanged.

Slicing is zero-copy (numpy views); all mutation-style operations
(``with_values`` etc.) return new batches sharing unchanged columns.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .element import Element, StreamItem, Watermark

__all__ = [
    "RecordBatch",
    "ColumnarStream",
    "item_weight",
    "items_weight",
    "take_prefix",
    "decode_items",
    "elements_of",
]


class RecordBatch:
    """A columnar run of elements (no watermarks/barriers inside)."""

    __slots__ = ("timestamps", "values", "py_values", "key_codes",
                 "key_dict")

    def __init__(self, timestamps: np.ndarray, values: Any,
                 py_values: bool = False,
                 key_codes: np.ndarray | None = None,
                 key_dict: list | None = None) -> None:
        self.timestamps = timestamps
        self.values = values  # ndarray (numeric/vectorized) or list (opaque)
        self.py_values = py_values
        self.key_codes = key_codes
        self.key_dict = key_dict

    def __len__(self) -> int:
        return len(self.timestamps)

    def __repr__(self) -> str:  # debug aid only
        kind = ("f64" if isinstance(self.values, np.ndarray)
                else "opaque")
        keyed = "keyed" if self.key_codes is not None else "unkeyed"
        return f"RecordBatch(n={len(self)}, {kind}, {keyed})"

    # -- construction --------------------------------------------------------

    @classmethod
    def from_elements(cls, elements: Sequence[Element],
                      key_index: dict | None = None,
                      key_dict: list | None = None) -> "RecordBatch":
        """Encode a run of Elements.

        ``key_index``/``key_dict`` (both mutated) let several batches of
        one source share a key dictionary, so merged batches can gather
        codes directly.  Without a shared dictionary an all-``None`` key
        column is elided entirely.
        """
        n = len(elements)
        ts = np.fromiter((e.timestamp for e in elements),
                         dtype=np.float64, count=n)
        vals = [e.value for e in elements]
        numeric = set(map(type, vals)) == {float}
        values: Any = np.asarray(vals, dtype=np.float64) if numeric else vals
        shared = key_index is not None
        if not shared and all(e.key is None for e in elements):
            codes = None
            kd = None
        else:
            if not shared:
                key_index = {}
                key_dict = []
            kd = key_dict
            codes_list = []
            for e in elements:
                k = e.key
                code = key_index.get(k)
                if code is None and k not in key_index:
                    code = len(kd)
                    key_index[k] = code
                    kd.append(k)
                codes_list.append(code)
            codes = np.asarray(codes_list, dtype=np.int64)
        return cls(ts, values, py_values=numeric, key_codes=codes,
                   key_dict=kd)

    # -- decoding ------------------------------------------------------------

    def keys_list(self) -> list:
        if self.key_codes is None:
            return [None] * len(self)
        kd = self.key_dict
        return [kd[c] for c in self.key_codes.tolist()]

    def values_list(self) -> list:
        """Values as the per-item path would see them: Python floats for
        source-encoded numerics, numpy scalars for vectorized outputs,
        the original objects for the opaque path."""
        values = self.values
        if isinstance(values, np.ndarray):
            return values.tolist() if self.py_values else list(values)
        return values if isinstance(values, list) else list(values)

    def values_array(self) -> np.ndarray:
        """Values as one numpy array — the same array a batched
        vectorized operator would build from the element run."""
        values = self.values
        if isinstance(values, np.ndarray):
            return values
        return np.asarray(values)

    def to_elements(self) -> list[Element]:
        ts = self.timestamps.tolist()
        vals = self.values_list()
        if self.key_codes is None:
            return [Element(v, t) for v, t in zip(vals, ts)]
        kd = self.key_dict
        return [Element(v, t, kd[c])
                for v, t, c in zip(vals, ts, self.key_codes.tolist())]

    def extend_elements(self, out: list) -> None:
        out.extend(self.to_elements())

    # -- transforms (share unchanged columns) --------------------------------

    def _narrowed_keys(self, codes: np.ndarray) -> tuple[np.ndarray, list]:
        """Compact the key dictionary when a row subset can no longer
        reference most of it.

        Without this, every ``slice``/``compress`` inherits the full
        dictionary, so a long-running keyed job drags every key it has
        ever seen through every shuffle and spill.  When the surviving
        rows number fewer than half the table (so live codes are
        necessarily below half too), rebuild the table from the codes
        actually present.  The new dictionary holds the *same key
        objects* (no copies), so downstream identity-keyed caches and
        ``is``-based fast paths stay correct — they just miss once on
        the new, smaller dict.
        """
        kd = self.key_dict
        if kd is None or 2 * len(codes) >= len(kd):
            return codes, kd
        live, inverse = np.unique(codes, return_inverse=True)
        return inverse.astype(np.int64, copy=False), \
            [kd[c] for c in live.tolist()]

    def slice(self, i: int, j: int) -> "RecordBatch":
        """Zero-copy sub-range (numpy views; opaque lists are sliced).
        Narrow slices of wide-key batches compact the dictionary."""
        values = self.values
        vals = values[i:j]
        codes = self.key_codes
        kd = self.key_dict
        if codes is not None:
            codes, kd = self._narrowed_keys(codes[i:j])
        return RecordBatch(self.timestamps[i:j], vals,
                           py_values=self.py_values,
                           key_codes=codes, key_dict=kd)

    def compress(self, mask: np.ndarray) -> "RecordBatch":
        """Keep rows where ``mask`` is True; a heavy filter also
        compacts the key dictionary (see :meth:`_narrowed_keys`)."""
        values = self.values
        if isinstance(values, np.ndarray):
            vals: Any = values[mask]
        else:
            vals = [v for v, m in zip(values, mask) if m]
        codes = self.key_codes
        kd = self.key_dict
        if codes is not None:
            codes, kd = self._narrowed_keys(codes[mask])
        return RecordBatch(self.timestamps[mask], vals,
                           py_values=self.py_values,
                           key_codes=codes, key_dict=kd)

    def with_values(self, values: Any,
                    py_values: bool = False) -> "RecordBatch":
        return RecordBatch(self.timestamps, values, py_values=py_values,
                           key_codes=self.key_codes, key_dict=self.key_dict)

    def with_timestamps(self, timestamps: np.ndarray) -> "RecordBatch":
        return RecordBatch(timestamps, self.values,
                           py_values=self.py_values,
                           key_codes=self.key_codes, key_dict=self.key_dict)

    def with_keys(self, key_codes: np.ndarray,
                  key_dict: list) -> "RecordBatch":
        return RecordBatch(self.timestamps, self.values,
                           py_values=self.py_values, key_codes=key_codes,
                           key_dict=key_dict)


# -- mixed-item helpers (channels carry RecordBatch | StreamItem) -------------

def item_weight(item: Any) -> int:
    """Element weight of one channel item: markers and loose elements
    weigh 1, a batch weighs its row count — so per-item accounting
    (backpressure, drops, chaos schedules) is representation-blind."""
    return len(item) if type(item) is RecordBatch else 1


def items_weight(items: Iterable[Any]) -> int:
    return sum(len(item) if type(item) is RecordBatch else 1
               for item in items)


def take_prefix(items: Iterable[Any], k: int) -> list:
    """First ``k`` element-weights of ``items``, splitting a batch at
    the cut so the prefix holds exactly ``k`` records/markers."""
    out: list = []
    need = k
    for item in items:
        if need <= 0:
            break
        w = item_weight(item)
        if w <= need:
            out.append(item)
            need -= w
        else:
            out.append(item.slice(0, need))
            need = 0
    return out


def decode_items(items: Iterable[Any]) -> list[StreamItem]:
    """Expand batches back to Elements (markers pass through)."""
    out: list[StreamItem] = []
    for item in items:
        if type(item) is RecordBatch:
            item.extend_elements(out)
        else:
            out.append(item)
    return out


def elements_of(items: Iterable[Any]) -> list[Element]:
    """Only the data records of a mixed item sequence, decoded — what a
    sink receives."""
    out: list[Element] = []
    for item in items:
        if type(item) is RecordBatch:
            item.extend_elements(out)
        elif isinstance(item, Element):
            out.append(item)
    return out


class ColumnarStream:
    """A materialized source buffer, pre-encoded for columnar pulls.

    Positions are *element positions* — identical to indices into the
    flat per-item buffer — so checkpointed source offsets mean the same
    thing in every execution mode.  Watermarks (and any item without a
    columnar encoding) occupy one position each, exactly like the flat
    buffer.  ``slice`` returns zero-copy batch views interleaved with
    the markers of the range.
    """

    __slots__ = ("_segments", "_starts", "total")

    def __init__(self, items: Sequence[Any],
                 key_index: dict | None = None,
                 key_dict: list | None = None,
                 encode: Callable[..., RecordBatch] | None = None) -> None:
        encode = encode if encode is not None else RecordBatch.from_elements
        self._segments: list[tuple[int, Any]] = []
        self._starts: list[int] = []
        # Fast path: a pure-Element buffer (the common source shape)
        # encodes as one segment without the per-item walk.  Watermarks,
        # barriers and RecordBatches all lack one of the attributes the
        # encoder reads, so mixed buffers fall through cleanly.
        if items and type(items[0]) is Element:
            try:
                batch = (encode(items, key_index, key_dict)
                         if key_index is not None else encode(items))
            except AttributeError:
                batch = None
            if batch is not None:
                self._segments.append((0, batch))
                self._starts.append(0)
                self.total = len(batch)
                return
        pos = 0
        run: list[Element] = []

        def _flush_run() -> None:
            nonlocal pos
            if not run:
                return
            batch = encode(run, key_index, key_dict) \
                if key_index is not None else encode(run)
            self._starts.append(pos)
            self._segments.append((pos, batch))
            pos += len(run)
            run.clear()

        for item in items:
            if type(item) is RecordBatch:
                _flush_run()
                self._starts.append(pos)
                self._segments.append((pos, item))
                pos += len(item)
            elif isinstance(item, Element):
                run.append(item)
            else:  # watermark / barrier: one position
                _flush_run()
                self._starts.append(pos)
                self._segments.append((pos, item))
                pos += 1
        _flush_run()
        self.total = pos

    def __len__(self) -> int:
        return self.total

    def slice(self, pos: int, limit: int) -> list:
        """Items covering element positions [pos, min(limit, total))."""
        end = min(limit, self.total)
        if pos >= end:
            return []
        out: list = []
        i = bisect.bisect_right(self._starts, pos) - 1
        while i < len(self._segments):
            seg_start, item = self._segments[i]
            if seg_start >= end:
                break
            if type(item) is RecordBatch:
                lo = max(0, pos - seg_start)
                hi = min(len(item), end - seg_start)
                out.append(item if lo == 0 and hi == len(item)
                           else item.slice(lo, hi))
            else:
                out.append(item)
            i += 1
        return out
