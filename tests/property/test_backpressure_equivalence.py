"""Property tests: backpressure/drop accounting is mode-independent.

``backpressure_events`` and ``dropped_overflow`` are accounted per
*item* in every execution mode — the batched channel offer computes the
same arithmetic in O(1) that the per-item offer performs one append at a
time.  These tests pin the contract under small channel capacities,
including the overflow-raise path: ``_offer_batch`` used to count every
item of a raising batch as backpressure and extend nothing, diverging
from per-item execution in both the counter and the channel contents.

Chaining removes the channels between fused operators, so a chained run
observes backpressure only at chain boundaries: its counters are bounded
by the batched run's, equal when nothing fuses.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import Element, Executor, JobBuilder, TumblingWindows
from repro.util.errors import BackpressureOverflow

MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched": dict(batch_mode=True, chaining=False),
    "chained": dict(batch_mode=True, chaining=True),
}

stream_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
    min_size=1, max_size=60)


def _to_elements(rows):
    return [Element(value={"k": k, "v": float(i)}, timestamp=ts)
            for i, (k, ts) in enumerate(rows)]


def _window_builder(elements):
    builder = JobBuilder("bp")
    (builder.source("s", elements)
            .with_watermarks(2.0, emit_every=3)
            .key_by(lambda v: v["k"])
            .window(TumblingWindows(10.0), "count")
            .sink("out"))
    return builder


def _chain_free_builder(elements):
    """key_by alone cannot fuse (window breaks the chain, sources are
    not operators) — the chained plan is the batched plan."""
    builder = JobBuilder("bp-free")
    (builder.source("s", elements)
            .key_by(lambda v: v["k"])
            .window(TumblingWindows(10.0), "count")
            .sink("out"))
    return builder


def _chainable_builder(elements):
    """map/filter/key_by fuse under chaining; window breaks the chain."""
    builder = JobBuilder("bp-chain")
    (builder.source("s", elements)
            .map(lambda v: {"k": v["k"], "v": v["v"] + 1.0})
            .filter(lambda v: v["v"] >= 0.0)
            .with_watermarks(2.0, emit_every=3)
            .key_by(lambda v: v["k"])
            .window(TumblingWindows(10.0), "count")
            .sink("out"))
    return builder


def _run(make_builder, elements, mode, capacity, drop, source_batch):
    executor = Executor(make_builder(elements).build(),
                        channel_capacity=capacity,
                        drop_on_overflow=drop, **MODES[mode])
    raised = False
    try:
        executor.run(source_batch=source_batch)
    except BackpressureOverflow:
        raised = True
    return executor, raised


def _outcome(executor, raised):
    return (raised,
            executor.backpressure_events,
            executor.dropped_overflow,
            {name: sink.elements for name, sink in executor.sinks.items()})


class TestPerItemBatchedEquality:
    @given(stream_strategy,
           st.integers(min_value=1, max_value=6),     # channel capacity
           st.integers(min_value=1, max_value=40),    # source batch
           st.booleans())                             # drop_on_overflow
    @settings(max_examples=60, deadline=None)
    def test_counters_and_sinks_match(self, rows, capacity, source_batch,
                                      drop):
        """For any stream/capacity/batch/drop-flag combination the
        per-item and batched executors agree exactly — on whether they
        raise, on both counters, and on sink contents."""
        elements = _to_elements(rows)
        per_item = _outcome(*_run(_window_builder, elements, "per_item",
                                  capacity, drop, source_batch))
        batched = _outcome(*_run(_window_builder, elements, "batched",
                                 capacity, drop, source_batch))
        assert batched == per_item

    @given(stream_strategy, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_drop_decisions_are_per_item(self, rows, capacity):
        """Under drop_on_overflow the *same elements* survive in both
        modes (the batch path keeps the first ``room`` items, exactly
        like ``room`` successful per-item offers)."""
        elements = _to_elements(rows)
        executors = {}
        for mode in ("per_item", "batched"):
            executor, raised = _run(_window_builder, elements, mode,
                                    capacity, True, 16)
            assert not raised  # dropping never overflows
            executors[mode] = executor
        assert (executors["batched"].sinks["out"].elements
                == executors["per_item"].sinks["out"].elements)
        assert (executors["batched"].dropped_overflow
                == executors["per_item"].dropped_overflow)


class TestChainedBounds:
    @given(stream_strategy,
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=24))
    @settings(max_examples=40, deadline=None)
    def test_chained_backpressure_bounded_by_batched(self, rows, capacity,
                                                     source_batch):
        """No drops: all modes produce identical sinks; fusing removes
        intra-chain channels so chained backpressure never exceeds
        batched, and per-item equals batched exactly."""
        elements = _to_elements(rows)
        results = {}
        for mode in MODES:
            executor, raised = _run(_chainable_builder, elements, mode,
                                    capacity, False, source_batch)
            if raised:  # raise-path equality is pinned separately below
                return
            results[mode] = executor
        base = results["per_item"]
        assert (results["batched"].backpressure_events
                == base.backpressure_events)
        assert (results["chained"].backpressure_events
                <= results["batched"].backpressure_events)
        for mode in ("batched", "chained"):
            assert (results[mode].sinks["out"].elements
                    == base.sinks["out"].elements), mode

    @given(stream_strategy, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_chain_free_graph_all_modes_equal(self, rows, capacity):
        """On a graph where nothing fuses the chained plan is the
        batched plan — counters match across all three modes."""
        elements = _to_elements(rows)
        guard = Executor(_chain_free_builder(elements).build(),
                         chaining=True)
        assert guard.chained_nodes() == {}  # the graph really is chain-free
        outcomes = {mode: _outcome(*_run(_chain_free_builder, elements, mode,
                                         capacity, False, 8))
                    for mode in MODES}
        assert outcomes["batched"] == outcomes["per_item"]
        assert outcomes["chained"] == outcomes["per_item"]


class TestOverflowRaise:
    @given(st.integers(min_value=1, max_value=3),     # channel capacity
           st.integers(min_value=0, max_value=5))     # extra items past 10x
    @settings(max_examples=30, deadline=None)
    def test_raise_path_counter_and_channel_equality(self, capacity, extra):
        """A source batch larger than 10x capacity must raise in both
        modes with identical backpressure counts and identical channel
        occupancy (the _offer_batch regression: it counted all n items
        and appended none)."""
        n = capacity * 10 + 1 + extra
        elements = _to_elements([(0, float(i)) for i in range(n)])
        states = {}
        for mode in ("per_item", "batched"):
            executor, raised = _run(_window_builder, elements, mode,
                                    capacity, False, n)
            assert raised, mode
            states[mode] = executor
        per_item, batched = states["per_item"], states["batched"]
        assert batched.backpressure_events == per_item.backpressure_events
        per_item_channels = {key: list(ch)
                             for key, ch in per_item._channels.items()}
        batched_channels = {key: list(ch)
                            for key, ch in batched._channels.items()}
        assert batched_channels == per_item_channels
        # the channel stalled exactly at the 10x limit, not at 0 or n
        assert sum(len(ch) for ch in per_item_channels.values()) \
            == capacity * 10

    def test_raise_message_names_the_node(self):
        elements = _to_elements([(0, float(i)) for i in range(25)])
        executor = Executor(_window_builder(elements).build(),
                            channel_capacity=2)
        with pytest.raises(BackpressureOverflow, match="10x capacity"):
            executor.run(source_batch=25)
