"""RecordBatch dictionary compaction: narrow slices drop dead keys.

Regression for the columnar hot path (satellite #2): ``slice`` and
``compress`` used to carry the *full* key table into every derived
batch, so a heavily filtered stream hauled thousands of dead dictionary
entries through every downstream operator (and every ``np.isin`` /
remap over them).  Now a derived batch whose live codes cover less than
half the table gets a compacted dictionary — while preserving the
**identity** of the surviving key objects, which the engine's
identity-keyed caches (hash memo, window remap cache) rely on.
"""

import numpy as np
import pytest

from repro.streaming.batch import RecordBatch
from repro.streaming.element import Element
from repro.util.rng import make_rng


def _batch(n=400, keys=100, seed=3):
    rng = make_rng(seed)
    elements = [Element(value=float(rng.uniform(0, 10)),
                        timestamp=float(i),
                        key=f"k-{int(rng.integers(keys))}")
                for i in range(n)]
    return elements, RecordBatch.from_elements(elements)


class TestCompaction:
    def test_narrow_compress_shrinks_the_dictionary(self):
        elements, batch = _batch()
        assert batch.key_dict is not None
        wanted = {"k-1", "k-2", "k-3"}
        mask = np.asarray([e.key in wanted for e in elements])
        narrow = batch.compress(mask)
        assert len(narrow.key_dict) <= len(wanted)
        assert len(narrow.key_dict) < len(batch.key_dict) // 2

    def test_narrow_slice_shrinks_the_dictionary(self):
        elements, batch = _batch(n=400, keys=100)
        narrow = batch.slice(0, 5)
        assert len(narrow.key_dict) <= 5

    def test_wide_derivations_keep_the_table(self):
        # >= half the table live: compaction would churn for no win
        elements, batch = _batch(n=400, keys=10)
        wide = batch.slice(0, 300)
        assert wide.key_dict is batch.key_dict

    def test_key_objects_keep_identity(self):
        elements, batch = _batch()
        narrow = batch.compress(
            np.asarray([e.key in {"k-4", "k-7"} for e in elements]))
        originals = {id(k) for k in batch.key_dict}
        for key in narrow.key_dict:
            assert id(key) in originals

    def test_decoded_stream_is_unchanged(self):
        """Property: any slice/compress chain decodes to exactly the
        same elements as the plain-python path, compacted or not."""
        rng = make_rng(11)
        for trial in range(20):
            elements, batch = _batch(n=200, keys=int(rng.integers(2, 80)),
                                     seed=trial)
            mask = rng.uniform(size=len(elements)) < rng.uniform(0.02, 0.9)
            if not mask.any():
                mask[0] = True
            expected = [e for e, m in zip(elements, mask) if m]
            got = batch.compress(np.asarray(mask)).to_elements()
            assert got == expected
            i, j = sorted(rng.integers(0, len(elements) + 1, size=2))
            if i < j:
                assert batch.slice(int(i), int(j)).to_elements() \
                    == elements[i:j]

    def test_compaction_composes_with_further_derivations(self):
        elements, batch = _batch()
        wanted = {"k-1", "k-2", "k-3", "k-4"}
        mask = np.asarray([e.key in wanted for e in elements])
        narrow = batch.compress(mask)
        kept = [e for e, m in zip(elements, mask) if m]
        # compress-of-compress and slice-of-compress stay correct
        sub = narrow.compress(np.arange(len(narrow)) % 2 == 0)
        assert sub.to_elements() == kept[::2]
        assert narrow.slice(1, 4).to_elements() == kept[1:4]

    def test_keyless_batches_are_untouched(self):
        elements = [Element(value=1.0, timestamp=float(i))
                    for i in range(10)]
        batch = RecordBatch.from_elements(elements)
        assert batch.slice(0, 3).to_elements() == elements[:3]
