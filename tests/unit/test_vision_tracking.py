"""Unit tests: feature detection, descriptors, markers, planar tracker,
synthetic renderer."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.util.errors import TrackingLost, VisionError
from repro.vision import (
    BriefDescriptor,
    CameraIntrinsics,
    MarkerSpec,
    PlanarTarget,
    PlanarTracker,
    decode_marker,
    detect_corners,
    estimate_homography,
    generate_marker,
    look_at,
    make_texture,
    match_descriptors,
    render_plane,
)

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)


def _checkerboard(size=128, cell=16):
    ys, xs = np.mgrid[0:size, 0:size]
    return (((xs // cell) + (ys // cell)) % 2).astype(float)


class TestDetectCorners:
    def test_finds_checkerboard_corners(self):
        corners = detect_corners(_checkerboard(), max_corners=100)
        assert len(corners) >= 20
        # Corners should sit near cell intersections (multiples of 16).
        near = sum(1 for kp in corners
                   if min(kp.x % 16, 16 - kp.x % 16) < 3
                   and min(kp.y % 16, 16 - kp.y % 16) < 3)
        assert near / len(corners) > 0.8

    def test_flat_image_no_corners(self):
        assert detect_corners(np.full((64, 64), 0.5)) == []

    def test_max_corners_respected(self):
        corners = detect_corners(_checkerboard(), max_corners=10)
        assert len(corners) <= 10

    def test_corners_sorted_by_response(self):
        corners = detect_corners(_checkerboard(), max_corners=50)
        responses = [kp.response for kp in corners]
        assert responses == sorted(responses, reverse=True)

    def test_too_small_image_rejected(self):
        with pytest.raises(VisionError):
            detect_corners(np.zeros((4, 4)))


class TestBriefDescriptor:
    def test_descriptor_shape(self):
        image = _checkerboard()
        keypoints = detect_corners(image, max_corners=50)
        descriptor = BriefDescriptor(n_bits=128)
        kept, desc = descriptor.compute(image, keypoints)
        assert desc.shape == (len(kept), 128)
        assert desc.dtype == bool

    def test_border_keypoints_dropped(self):
        image = _checkerboard()
        descriptor = BriefDescriptor(patch_size=24)
        from repro.vision.features import Keypoint
        kept, desc = descriptor.compute(image, [Keypoint(2.0, 2.0, 1.0)])
        assert kept == []
        assert desc.shape == (0, 128) or desc.shape == (0, 256)

    def test_same_patch_same_descriptor(self):
        image = _checkerboard()
        keypoints = detect_corners(image, max_corners=20)
        descriptor = BriefDescriptor()
        _k1, d1 = descriptor.compute(image, keypoints)
        _k2, d2 = descriptor.compute(image, keypoints)
        assert np.array_equal(d1, d2)


class TestMatching:
    def test_identical_sets_match_mostly(self):
        # A random texture gives distinctive descriptors (a checkerboard
        # would not: its corners all look alike and fail the ratio test).
        image = make_texture(make_rng(9), size=128)
        keypoints = detect_corners(image, max_corners=30)
        descriptor = BriefDescriptor()
        _kept, desc = descriptor.compute(image, keypoints)
        matches = match_descriptors(desc, desc)
        assert len(matches) >= 0.8 * len(desc)
        assert all(m.query_idx == m.train_idx for m in matches)
        assert all(m.distance == 0 for m in matches)

    def test_empty_inputs(self):
        assert match_descriptors(np.zeros((0, 8)), np.zeros((5, 8))) == []

    def test_width_mismatch_rejected(self):
        with pytest.raises(VisionError):
            match_descriptors(np.zeros((2, 8), dtype=bool),
                              np.zeros((2, 16), dtype=bool))


class TestMarkers:
    def test_roundtrip_all_small_ids(self):
        spec = MarkerSpec(grid=4)
        for marker_id in [0, 1, 37, 511, spec.max_id]:
            texture = generate_marker(marker_id, spec)
            # Identity homography decodes the texture itself.
            h = np.eye(3)
            assert decode_marker(texture, h, spec) == marker_id

    def test_id_out_of_range_rejected(self):
        spec = MarkerSpec(grid=4)
        with pytest.raises(VisionError):
            generate_marker(spec.max_id + 1, spec)

    def test_decode_through_projection(self):
        rng = make_rng(0)
        spec = MarkerSpec()
        texture = generate_marker(123, spec)
        target = PlanarTarget(texture, 0.2, 0.2)
        pose = look_at(eye=[0.1, 0.12, -0.45], target=[0.1, 0.1, 0.0])
        frame = render_plane(target, INTR, pose, rng=rng,
                             noise_sigma=0.005)
        corners_tex = np.array([[0, 0], [texture.shape[1], 0],
                                [0, texture.shape[0]],
                                [texture.shape[1], texture.shape[0]],
                                [texture.shape[1] / 2,
                                 texture.shape[0] / 2]])
        pixels = INTR.project(pose.transform(
            target.texture_to_world(corners_tex)))
        h = estimate_homography(corners_tex, pixels)
        assert decode_marker(frame, h, spec) == 123

    def test_decode_flat_image_fails(self):
        spec = MarkerSpec()
        assert decode_marker(np.full((240, 320), 0.5), np.eye(3),
                             spec) is None

    def test_parity_rejects_corruption(self):
        spec = MarkerSpec()
        texture = generate_marker(37, spec)
        # Flip one full data cell: parity must fail (or decode to wrong id
        # that parity catches — with row parity a single cell flip always
        # breaks that row's parity).
        cell = spec.cell_px
        r0 = (0 + spec.border_cells) * cell
        c0 = (0 + spec.border_cells) * cell
        corrupted = texture.copy()
        corrupted[r0:r0 + cell, c0:c0 + cell] = \
            1.0 - corrupted[r0:r0 + cell, c0:c0 + cell]
        assert decode_marker(corrupted, np.eye(3), spec) != 37


class TestRendererAndTracker:
    def test_render_shape_and_range(self):
        rng = make_rng(1)
        target = PlanarTarget(make_texture(rng), 0.5, 0.5)
        pose = look_at(eye=[0.25, 0.25, -1.0], target=[0.25, 0.25, 0.0])
        frame = render_plane(target, INTR, pose)
        assert frame.shape == (240, 320)
        assert 0.0 <= frame.min() and frame.max() <= 1.0

    def test_gain_scales_brightness(self):
        rng = make_rng(1)
        target = PlanarTarget(make_texture(rng), 0.5, 0.5)
        pose = look_at(eye=[0.25, 0.25, -1.0], target=[0.25, 0.25, 0.0])
        bright = render_plane(target, INTR, pose, gain=1.0, background=0.0)
        dim = render_plane(target, INTR, pose, gain=0.5, background=0.0)
        assert dim.mean() < bright.mean()

    def test_tracker_recovers_pose(self):
        rng = make_rng(42)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = PlanarTracker(target, INTR, rng)
        pose_true = look_at(eye=[0.2, 0.3, -0.8], target=[0.25, 0.25, 0.0])
        frame = render_plane(target, INTR, pose_true, rng=rng,
                             noise_sigma=0.01)
        result = tracker.track(frame)
        assert result.num_inliers >= tracker.min_inliers
        assert tracker.registration_error_px(result, pose_true) < 3.0
        assert pose_true.translation_distance_to(result.pose) < 0.05

    def test_tracker_multi_frame_sequence(self):
        rng = make_rng(43)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = PlanarTracker(target, INTR, rng)
        errors = []
        for i in range(5):
            eye = [0.15 + 0.03 * i, 0.25, -0.8 + 0.02 * i]
            pose_true = look_at(eye=eye, target=[0.25, 0.25, 0.0])
            frame = render_plane(target, INTR, pose_true, rng=rng,
                                 noise_sigma=0.01)
            result = tracker.track(frame)
            errors.append(tracker.registration_error_px(result, pose_true))
        assert np.mean(errors) < 3.0
        assert tracker.frames == 5
        assert tracker.failures == 0

    def test_tracking_lost_on_blank_frame(self):
        rng = make_rng(44)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = PlanarTracker(target, INTR, rng)
        with pytest.raises(TrackingLost):
            tracker.track(np.full((240, 320), 0.5))
        assert tracker.failures == 1

    def test_tracking_lost_when_target_out_of_view(self):
        rng = make_rng(45)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = PlanarTracker(target, INTR, rng)
        pose_away = look_at(eye=[5.0, 5.0, -1.0], target=[5.0, 5.0, 1.0])
        frame = render_plane(target, INTR, pose_away, rng=rng)
        with pytest.raises(TrackingLost):
            tracker.track(frame)

    def test_profile_populated(self):
        rng = make_rng(46)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = PlanarTracker(target, INTR, rng)
        pose_true = look_at(eye=[0.25, 0.25, -0.8],
                            target=[0.25, 0.25, 0.0])
        tracker.track(render_plane(target, INTR, pose_true, rng=rng))
        profile = tracker.last_profile
        assert profile.pixels == 320 * 240
        assert profile.features > 0
        assert profile.matches > 0
        assert profile.ransac_iterations > 0

    def test_feature_poor_reference_rejected(self):
        rng = make_rng(47)
        flat = PlanarTarget(np.full((64, 64), 0.5), 0.5, 0.5)
        with pytest.raises(VisionError):
            PlanarTracker(flat, INTR, rng)
