"""Ablation A10: tracking robustness vs ambient lighting and sensor
noise.

Section 2.1 lists "ambient lighting" among the things seamless AR must
handle.  We sweep illumination gain (dusk to over-exposure) and sensor
noise and measure tracking success and registration error — mapping the
envelope inside which the registered overlay the paper envisions
actually survives.
"""

import numpy as np

from repro.util.errors import TrackingLost
from repro.util.rng import make_rng
from repro.vision import (
    CameraIntrinsics,
    PlanarTarget,
    PlanarTracker,
    look_at,
    make_texture,
    render_plane,
)

from tableprint import print_table

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)
GAINS = [1.0, 0.6, 0.35, 0.2, 0.1]
NOISES = [0.01, 0.05]
FRAMES = 10


def run_experiment():
    rng = make_rng(99)
    target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
    rows = []
    for noise in NOISES:
        for gain in GAINS:
            tracker = PlanarTracker(target, INTR, make_rng(100))
            errors = []
            lost = 0
            for i in range(FRAMES):
                pose_true = look_at(eye=[0.2 + 0.01 * i, 0.27, -0.85],
                                    target=[0.25, 0.25, 0.0])
                frame = render_plane(target, INTR, pose_true,
                                     rng=rng, noise_sigma=noise,
                                     gain=gain)
                try:
                    result = tracker.track(frame)
                except TrackingLost:
                    lost += 1
                    continue
                errors.append(tracker.registration_error_px(result,
                                                            pose_true))
            rows.append([noise, gain, (FRAMES - lost) / FRAMES,
                         float(np.mean(errors)) if errors else
                         float("nan"),
                         float(np.max(errors)) if errors else
                         float("nan")])
    return rows


def bench_a10_lighting(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A10 Sec 2.1: tracking vs illumination gain and sensor noise",
        ["noise sigma", "gain", "track success", "mean reg err px",
         "max reg err px"],
        rows,
        note="the registered overlay survives dimming until the "
             "signal-to-noise floor; heavier sensor noise pulls the "
             "failure point up the gain ladder")
    by_key = {(r[0], r[1]): r for r in rows}
    # Bright, clean frames: perfect tracking, sub-pixel registration.
    best = by_key[(0.01, 1.0)]
    assert best[2] == 1.0
    assert best[3] < 1.0
    # Tracking degrades monotonically-ish as light dims (low noise row).
    low_noise = [by_key[(0.01, g)][2] for g in GAINS]
    assert low_noise[0] >= low_noise[-1]
    # At heavy noise the darkest setting fails outright.
    worst = by_key[(0.05, 0.1)]
    assert worst[2] < 1.0
    # Where tracking still succeeds, registration stays bounded.
    for row in rows:
        if row[2] > 0 and np.isfinite(row[3]):
            assert row[3] < 10.0
