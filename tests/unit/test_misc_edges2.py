"""Edge-path tests, second batch: keyed state, record sizing of custom
objects, scene-graph removal, trace helpers, summary percentiles."""

import numpy as np
import pytest

from repro.datagen import MobilityConfig, generate_trace
from repro.eventlog import estimate_size
from repro.render import Annotation, SceneGraph, SceneNode
from repro.streaming import KeyedState
from repro.util.errors import RenderError, StreamError
from repro.util.rng import make_rng


class TestKeyedState:
    def test_get_is_non_mutating(self):
        # A read-only probe of a missing key must not materialize an
        # entry — that would change snapshot()/len() on a *read*.
        state = KeyedState(default_factory=list)
        assert state.get("a") == []
        assert len(state) == 0
        assert state.snapshot() == {}
        assert "a" not in state

    def test_get_or_create_materializes(self):
        state = KeyedState(default_factory=list)
        state.get_or_create("a").append(1)
        assert state.get("a") == [1]
        assert len(state) == 1

    def test_no_factory_returns_none(self):
        state = KeyedState()
        assert state.get("missing") is None
        assert state.get_or_create("missing") is None
        assert "missing" not in state

    def test_snapshot_is_deep(self):
        state = KeyedState(default_factory=list)
        state.get_or_create("a").append(1)
        snapshot = state.snapshot()
        state.get_or_create("a").append(2)
        assert snapshot["a"] == [1]

    def test_snapshot_by_group_round_trip(self):
        state = KeyedState()
        for i in range(40):
            state.put(f"k{i}", i)
        groups = state.snapshot_by_group(8)
        assert sum(len(g) for g in groups.values()) == 40
        restored = KeyedState()
        restored.restore_groups(groups.values())
        assert restored.snapshot() == state.snapshot()

    def test_restore_replaces_content(self):
        state = KeyedState()
        state.put("a", 1)
        snapshot = state.snapshot()
        state.put("b", 2)
        state.restore(snapshot)
        assert state.keys() == ["a"]

    def test_remove_and_clear(self):
        state = KeyedState()
        state.put("a", 1)
        state.remove("a")
        state.remove("a")  # idempotent
        state.put("b", 2)
        state.clear()
        assert len(state) == 0


class TestEstimateSizeCustomObjects:
    def test_object_with_dict_priced_by_attributes(self):
        class Thing:
            def __init__(self):
                self.name = "abc"
                self.value = 7

        assert estimate_size(Thing()) == estimate_size(
            {"name": "abc", "value": 7})

    def test_slotted_object_fallback(self):
        class Slotted:
            __slots__ = ("x",)

            def __init__(self):
                self.x = 1

        assert estimate_size(Slotted()) == 16

    def test_nested_structures(self):
        nested = {"a": [1, 2, {"b": "cd"}]}
        assert estimate_size(nested) > estimate_size({"a": [1, 2]})


class TestSceneGraphRemoval:
    def test_remove_from_nested_node(self):
        scene = SceneGraph()
        child = SceneNode(name="child")
        annotation = Annotation(annotation_id="deep",
                                anchor=np.zeros(3), text="x")
        child.annotations.append(annotation)
        parent = SceneNode(name="parent", children=[child])
        scene.add_node(parent)
        assert len(scene) == 1
        scene.remove("deep")
        assert len(scene) == 0
        assert scene.all_world_annotations() == []

    def test_add_node_detects_duplicate_ids(self):
        scene = SceneGraph()
        scene.add(Annotation(annotation_id="a", anchor=np.zeros(3)))
        node = SceneNode(name="n")
        node.annotations.append(Annotation(annotation_id="a",
                                           anchor=np.ones(3)))
        with pytest.raises(RenderError):
            scene.add_node(node)


class TestTraceHelpers:
    def test_displacement_lengths(self):
        trace = generate_trace("u", make_rng(0),
                               MobilityConfig(steps=50))
        assert len(trace.displacement_m) == 49
        assert (trace.displacement_m >= 0).all()

    def test_len(self):
        trace = generate_trace("u", make_rng(1),
                               MobilityConfig(steps=25))
        assert len(trace) == 25


class TestWindowResultConvenience:
    def test_window_aggregate_value_fn_error_propagates(self):
        """A crashing value_fn must surface, not be swallowed."""
        from repro.streaming import (Element, TumblingWindows,
                                     WindowAggregateOperator)
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "sum",
                                     value_fn=lambda v: v["missing"])
        with pytest.raises(KeyError):
            op.process(Element(value={}, timestamp=1.0, key="k"))

    def test_allowed_lateness_negative_rejected(self):
        from repro.streaming import TumblingWindows, WindowAggregateOperator
        with pytest.raises(StreamError):
            WindowAggregateOperator("w", TumblingWindows(10.0), "sum",
                                    allowed_lateness=-1.0)
