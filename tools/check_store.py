#!/usr/bin/env python
"""Serving-store gate: exactly-once state, fast lookups, determinism.

Runs the store-marked chaos suite, then three direct checks over the
tiered serving store (:mod:`repro.store`):

1. **exactly-once under chaos** — a serving job crashed mid-stage,
   mid-apply and during compaction (plus a coordinator crash) converges
   to hot-store contents and analytical row counts bit-identical to the
   fault-free run, at parallelism 1 and 2;
2. **lookup tail under ingest** — the ``benchmarks/bench_p8_store.py``
   experiment (>= 1M distinct keys, point lookups interleaved with
   sustained columnar ingest) holds p99 point-lookup latency under the
   committed floor, and its results merge into
   ``benchmarks/BENCH_streaming.json``;
3. **determinism** — the same seeded chaos schedule reproduces the
   same store state and fault trace on a second run.

Exit 0 when all hold, 1 otherwise.

Usage:  python tools/check_store.py [--skip-tests] [--skip-bench]
"""

from __future__ import annotations

import argparse
import sys

from gatelib import Gate, ensure_paths, run_suite

ensure_paths()

from repro.chaos import (  # noqa: E402
    SITE_COORDINATOR,
    SITE_STORE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.eventlog import LogCluster, Producer, TopicConfig  # noqa: E402
from repro.store import canonical_contents, serve_topic  # noqa: E402
from repro.util.rng import make_rng  # noqa: E402

N_RECORDS = 300
KEYS = 7

CHAOS_PLANS = {
    "mid-stage": FaultPlan(specs=(
        FaultSpec("store_crash", SITE_STORE, at=1, target="stage"),)),
    "mid-apply": FaultPlan(specs=(
        FaultSpec("store_crash", SITE_STORE, at=1, target="apply"),)),
    "during-compaction": FaultPlan(specs=(
        FaultSpec("store_crash", SITE_STORE, at=0, target="compact"),)),
    "mid-commit": FaultPlan(specs=(
        FaultSpec("coordinator_crash", SITE_COORDINATOR, at=1),)),
}


def _cluster() -> LogCluster:
    cluster = LogCluster(num_brokers=1)
    cluster.create_topic(TopicConfig(name="gate.events", partitions=2))
    producer = Producer(cluster)
    rng = make_rng(17)
    for i in range(N_RECORDS):
        producer.send("gate.events",
                      {"m": float(rng.uniform(0, 100)), "u": f"u-{i % KEYS}"},
                      key=f"u-{i % KEYS}", timestamp=float(i))
    return cluster


def _run(plan: FaultPlan | None, parallelism: int):
    injector = FaultInjector(plan) if plan is not None else None
    store, report = serve_topic(
        _cluster(), "gate.events", key_fn=lambda v: v["u"],
        metric_fn=lambda v: v["m"], parallelism=parallelism,
        source_batch=32, interval_cycles=1, injector=injector)
    trace = injector.trace_tuples() if injector is not None else ()
    return (canonical_contents(store), store.analytical.rows), report, trace


def check_exactly_once() -> bool:
    print("\n== exactly-once under chaos ==")
    ok = True
    for parallelism in (1, 2):
        golden, golden_report, _ = _run(None, parallelism)
        for label, plan in CHAOS_PLANS.items():
            state, report, _ = _run(plan, parallelism)
            fired = report.crashes + report.coordinator_crashes
            identical = state == golden
            ok &= identical and fired >= 1
            print(f"  p={parallelism} {label:<18} crashes={fired} "
                  f"restores={report.full_restores} "
                  f"{'IDENTICAL' if identical else 'DIVERGED'}")
    return ok


def check_latency_floor() -> bool:
    print("\n== lookup tail under sustained columnar ingest ==")
    import benchlib
    from bench_p8_store import P99_FLOOR_US, run_experiment

    results = run_experiment()
    stats = results["store"]
    p99 = stats["lookup_p99_us"]
    print(f"  {results['config']['keys']:,} keys, "
          f"{stats['ingest_rows']:,} rows ingested concurrently: "
          f"p50={stats['lookup_p50_us']} us p99={p99} us "
          f"(floor {P99_FLOOR_US:.0f} us)")
    benchlib.merge_section(benchlib.DEFAULT_OUT, "store", results)
    return p99 < P99_FLOOR_US


def check_determinism() -> bool:
    print("\n== determinism (same seeded schedule, second run) ==")
    plan = CHAOS_PLANS["mid-apply"]
    first = _run(plan, 2)
    second = _run(plan, 2)
    same = (first[0], first[2]) == (second[0], second[2])
    print(f"  store state + fault trace {'MATCH' if same else 'DIFFER'}")
    return same


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-tests", action="store_true",
                        help="skip the store-marked pytest suite")
    parser.add_argument("--skip-bench", action="store_true",
                        help="skip the 1M-key latency benchmark")
    args = parser.parse_args()

    gate = Gate("check_store")
    if not args.skip_tests and not run_suite("store test suite", "store"):
        return gate.fail("store suite")
    if not check_exactly_once():
        return gate.fail("state diverged or faults unfired")
    if not args.skip_bench and not check_latency_floor():
        return gate.fail("p99 point lookup above floor")
    if not check_determinism():
        return gate.fail("state not reproducible")
    return gate.ok()


if __name__ == "__main__":
    sys.exit(main())
