"""Correlation discovery over streams.

"Big data is good at discovering correlations ... but it does not tell
us which correlations are meaningful" (Section 4.2).  We provide the
discovery half — streaming Pearson correlation and association-rule
lift — and leave meaning to :mod:`repro.context`, which binds results to
semantic entities.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from ..util.errors import ConfigError

__all__ = ["StreamingPearson", "LiftMiner", "AssociationRule"]


class StreamingPearson:
    """Online Pearson correlation between two paired series."""

    def __init__(self) -> None:
        self.count = 0
        self._mean_x = 0.0
        self._mean_y = 0.0
        self._m2_x = 0.0
        self._m2_y = 0.0
        self._cov = 0.0

    def add(self, x: float, y: float) -> None:
        x, y = float(x), float(y)
        self.count += 1
        dx = x - self._mean_x
        self._mean_x += dx / self.count
        self._m2_x += dx * (x - self._mean_x)
        dy = y - self._mean_y
        self._mean_y += dy / self.count
        self._m2_y += dy * (y - self._mean_y)
        self._cov += dx * (y - self._mean_y)

    def correlation(self) -> float:
        if self.count < 2:
            return math.nan
        denom = math.sqrt(self._m2_x * self._m2_y)
        if denom == 0.0:
            return math.nan
        return self._cov / denom


@dataclass(frozen=True)
class AssociationRule:
    """A mined co-occurrence rule with support/confidence/lift."""

    antecedent: str
    consequent: str
    support: float
    confidence: float
    lift: float


class LiftMiner:
    """Pairwise association rules from transaction baskets.

    Counts singleton and pair frequencies incrementally; ``rules()``
    returns pairs passing the support/confidence floors, ranked by lift.
    """

    def __init__(self, min_support: float = 0.01,
                 min_confidence: float = 0.1) -> None:
        if not 0 < min_support <= 1 or not 0 < min_confidence <= 1:
            raise ConfigError("support/confidence must be in (0, 1]")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self._item_counts: dict[str, int] = defaultdict(int)
        self._pair_counts: dict[tuple[str, str], int] = defaultdict(int)
        self.baskets = 0

    def add_basket(self, items) -> None:
        unique = sorted(set(items))
        if not unique:
            return
        self.baskets += 1
        for item in unique:
            self._item_counts[item] += 1
        for i, a in enumerate(unique):
            for b in unique[i + 1:]:
                self._pair_counts[(a, b)] += 1

    def rules(self, limit: int | None = None) -> list[AssociationRule]:
        if self.baskets == 0:
            return []
        out: list[AssociationRule] = []
        for (a, b), pair_n in self._pair_counts.items():
            support = pair_n / self.baskets
            if support < self.min_support:
                continue
            for antecedent, consequent in ((a, b), (b, a)):
                confidence = pair_n / self._item_counts[antecedent]
                if confidence < self.min_confidence:
                    continue
                expected = self._item_counts[consequent] / self.baskets
                lift = confidence / expected if expected > 0 else math.inf
                out.append(AssociationRule(antecedent, consequent,
                                           support, confidence, lift))
        out.sort(key=lambda r: (-r.lift, r.antecedent, r.consequent))
        return out[:limit] if limit is not None else out
