"""Multi-core FIFO processing queue on the discrete-event kernel.

Models a node executing tasks: ``cores`` tasks run concurrently; further
arrivals queue.  Used for the cloud tier under contention (Sec 4.1's
"fixed time cap" is only achievable while the cloud is not saturated —
the experiments show exactly that knee) and for the Figure-9 security
screening lanes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..util.errors import SimulationError
from .kernel import Simulator

__all__ = ["QueuedTask", "ProcessingQueue"]


@dataclass
class QueuedTask:
    """A unit of work with bookkeeping timestamps filled in by the queue."""

    name: str
    service_time: float
    on_done: Callable[["QueuedTask"], None] | None = None
    arrived_at: float = field(default=float("nan"))
    started_at: float = field(default=float("nan"))
    finished_at: float = field(default=float("nan"))

    @property
    def wait_time(self) -> float:
        return self.started_at - self.arrived_at

    @property
    def sojourn_time(self) -> float:
        """Total time in system (wait + service)."""
        return self.finished_at - self.arrived_at


class ProcessingQueue:
    """FIFO queue with ``cores`` parallel servers on a simulator."""

    def __init__(self, sim: Simulator, cores: int = 1, name: str = "queue") -> None:
        if cores < 1:
            raise SimulationError("cores must be >= 1")
        self.sim = sim
        self.cores = cores
        self.name = name
        self._waiting: deque[QueuedTask] = deque()
        self._busy = 0
        self.completed: list[QueuedTask] = []

    @property
    def depth(self) -> int:
        """Tasks waiting (excludes in-service)."""
        return len(self._waiting)

    @property
    def busy(self) -> int:
        return self._busy

    def submit(self, task: QueuedTask) -> None:
        """Enqueue a task at the current simulated time."""
        if task.service_time < 0:
            raise SimulationError("service_time must be non-negative")
        task.arrived_at = self.sim.now
        self._waiting.append(task)
        self._try_start()

    def _try_start(self) -> None:
        while self._busy < self.cores and self._waiting:
            task = self._waiting.popleft()
            task.started_at = self.sim.now
            self._busy += 1
            self.sim.schedule_after(
                task.service_time,
                lambda t=task: self._finish(t),
                label=f"{self.name}:{task.name}",
            )

    def _finish(self, task: QueuedTask) -> None:
        task.finished_at = self.sim.now
        self._busy -= 1
        self.completed.append(task)
        if task.on_done is not None:
            task.on_done(task)
        self._try_start()
