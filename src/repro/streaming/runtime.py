"""Job execution: channels, backpressure accounting, checkpoints.

The executor runs a :class:`~repro.streaming.graph.JobGraph` by pulling
batches from the sources and pushing items through bounded channels in
topological order.  Single-threaded and deterministic — "parallelism" is
a modelled quantity (channel occupancy / backpressure counters), not OS
threads, which keeps every experiment reproducible.

Checkpointing takes an aligned snapshot between drain cycles (at that
point no items are in flight, so the snapshot is globally consistent by
construction) — the moral equivalent of Chandy–Lamport barriers in a
single-threaded world.  ``restore`` rewinds sources to their
checkpointed positions, so replay-after-failure delivers exactly-once
results for deterministic operators.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..util.errors import BackpressureOverflow, CheckpointError
from .element import Element, StreamItem, Watermark
from .graph import JobGraph
from .join import IntervalJoinOperator

__all__ = ["Executor", "Checkpoint", "SinkBuffer"]


@dataclass
class Checkpoint:
    """A consistent snapshot of a running job."""

    checkpoint_id: int
    source_positions: dict[str, int]
    operator_state: dict[str, Any]
    emitted_to_sinks: dict[str, int]


@dataclass
class SinkBuffer:
    """Collects elements delivered to a named sink."""

    name: str
    elements: list[Element] = field(default_factory=list)

    @property
    def values(self) -> list[Any]:
        return [e.value for e in self.elements]

    def __len__(self) -> int:
        return len(self.elements)


class Executor:
    """Runs a job graph to completion (or incrementally)."""

    def __init__(self, job: JobGraph, channel_capacity: int = 10_000,
                 drop_on_overflow: bool = False) -> None:
        job.validate()
        self.job = job
        self.channel_capacity = channel_capacity
        self.drop_on_overflow = drop_on_overflow
        self.sinks: dict[str, SinkBuffer] = {
            s: SinkBuffer(s) for s in job.sinks
        }
        # (node, side) -> queue of pending items
        self._channels: dict[tuple[str, str | None], deque[StreamItem]] = {}
        for up, down, side in job.edges:
            if down in job.operators:
                self._channels.setdefault((down, side), deque())
        self._source_iters: dict[str, Any] = {}
        self._source_positions: dict[str, int] = {}
        self._source_buffers: dict[str, list[Element]] = {}
        self.backpressure_events = 0
        self.dropped_overflow = 0
        self._checkpoint_seq = 0
        self._finished_sources: set[str] = set()
        self._flushed = False

    # -- source handling -----------------------------------------------------

    def _materialize_source(self, name: str) -> list[Element]:
        """Sources are materialized on first touch so checkpoint/restore can
        rewind by index.  Real systems rewind via log offsets; our
        eventlog-backed sources do exactly that through ``log_source``."""
        if name not in self._source_buffers:
            self._source_buffers[name] = list(self.job.sources[name].iterate())
            self._source_positions.setdefault(name, 0)
        return self._source_buffers[name]

    def _pull_sources(self, batch: int) -> list[tuple[str, Element]]:
        pulled: list[tuple[str, Element]] = []
        for name in sorted(self.job.sources):
            if name in self._finished_sources:
                continue
            buffer = self._materialize_source(name)
            pos = self._source_positions[name]
            take = buffer[pos:pos + batch]
            self._source_positions[name] = pos + len(take)
            pulled.extend((name, e) for e in take)
            if self._source_positions[name] >= len(buffer):
                self._finished_sources.add(name)
        return pulled

    # -- channel plumbing ---------------------------------------------------------

    def _offer(self, node: str, side: str | None, item: StreamItem) -> None:
        channel = self._channels[(node, side)]
        if len(channel) >= self.channel_capacity:
            if self.drop_on_overflow:
                self.dropped_overflow += 1
                return
            # Backpressure: in the single-threaded model the producer
            # stalls, which we account for and then proceed (the channel
            # grows — the counter is the signal the benchmarks read).
            self.backpressure_events += 1
            if len(channel) >= self.channel_capacity * 10:
                raise BackpressureOverflow(
                    f"channel into {node!r} exceeded 10x capacity; "
                    "the job cannot keep up and dropping is disabled"
                )
        channel.append(item)

    def _route(self, node: str, items: list[StreamItem]) -> None:
        """Deliver ``items`` from ``node`` to its downstream edges."""
        for item in items:
            for down, side in self.job.downstream(node):
                if down in self.sinks:
                    if isinstance(item, Element):
                        self.sinks[down].elements.append(item)
                else:
                    self._offer(down, side, item)

    def _drain_cycle(self) -> int:
        """One pass through all operators in topological order."""
        moved = 0
        for name in self.job.topological_operators():
            op = self.job.operators[name]
            for side in ([None] if not isinstance(op, IntervalJoinOperator)
                         else ["left", "right"]):
                channel = self._channels.get((name, side))
                if not channel:
                    continue
                pending = list(channel)
                channel.clear()
                for item in pending:
                    moved += 1
                    if isinstance(op, IntervalJoinOperator):
                        if isinstance(item, Watermark):
                            out = op.on_watermark_side(side, item)
                        else:
                            out = op.process_side(side, item)
                    else:
                        out = op.handle(item)
                    self._route(name, out)
        return moved

    # -- run loop --------------------------------------------------------------------

    def run(self, source_batch: int = 256, max_cycles: int | None = None) -> dict[str, SinkBuffer]:
        """Run until sources are exhausted and channels drained."""
        cycles = 0
        while True:
            pulled = self._pull_sources(source_batch)
            for name, element in pulled:
                self._route(name, [element])
            moved = self._drain_cycle()
            # Keep draining until quiescent this cycle.
            while self._drain_cycle():
                pass
            cycles += 1
            done_sources = len(self._finished_sources) == len(self.job.sources)
            if done_sources and not pulled and moved == 0:
                break
            if max_cycles is not None and cycles >= max_cycles:
                break
        if len(self._finished_sources) == len(self.job.sources):
            self._flush()
        return self.sinks

    def _flush(self) -> None:
        """End-of-stream: give every operator a chance to emit pendings."""
        if self._flushed:
            return
        self._flushed = True
        for name in self.job.topological_operators():
            op = self.job.operators[name]
            out = op.flush()
            if out:
                self._route(name, out)
                while self._drain_cycle():
                    pass

    # -- checkpoints -------------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Take an aligned snapshot.  Channels must be drained first."""
        if any(self._channels.values()):
            raise CheckpointError("cannot checkpoint with items in flight; "
                                  "call run() or drain first")
        self._checkpoint_seq += 1
        return Checkpoint(
            checkpoint_id=self._checkpoint_seq,
            source_positions=dict(self._source_positions),
            operator_state={name: op.snapshot()
                            for name, op in self.job.operators.items()},
            emitted_to_sinks={s: len(buf) for s, buf in self.sinks.items()},
        )

    def restore(self, checkpoint: Checkpoint) -> None:
        """Rewind the job to a snapshot (sources, state, sink truncation)."""
        for name, pos in checkpoint.source_positions.items():
            if name not in self.job.sources:
                raise CheckpointError(f"snapshot references unknown source "
                                      f"{name!r}")
            self._materialize_source(name)
            self._source_positions[name] = pos
            if pos < len(self._source_buffers[name]):
                self._finished_sources.discard(name)
        for name, state in checkpoint.operator_state.items():
            if name not in self.job.operators:
                raise CheckpointError(f"snapshot references unknown operator "
                                      f"{name!r}")
            self.job.operators[name].restore(state)
        for sink, count in checkpoint.emitted_to_sinks.items():
            del self.sinks[sink].elements[count:]
        for channel in self._channels.values():
            channel.clear()
        self._flushed = False
