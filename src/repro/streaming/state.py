"""Operator state: keyed state with snapshot/restore.

Operators keep their mutable state in a :class:`KeyedState` so the
checkpoint coordinator can snapshot and restore the whole job.  Values
must be copyable via :func:`copy.deepcopy`; our state values are plain
dicts/lists/numbers so this is exact.

For parallel plans the state can also be snapshotted *by key group*
(:meth:`KeyedState.snapshot_by_group`) — the unit of redistribution
when a job is rescaled; see :mod:`repro.streaming.shuffle`.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Iterable

from .shuffle import group_by_key_group, merge_key_groups

__all__ = ["KeyedState"]


class KeyedState:
    """Per-key mutable state with deep snapshot semantics."""

    def __init__(self, default_factory: Callable[[], Any] | None = None) -> None:
        self._data: dict[Any, Any] = {}
        self._default_factory = default_factory

    def get(self, key: Any) -> Any:
        """Read-only lookup: a missing key returns the factory's default
        (or ``None``) **without** materializing an entry, so probing
        never changes ``snapshot()``/``len()``.  Use
        :meth:`get_or_create` when the entry should persist.
        """
        try:
            return self._data[key]
        except KeyError:
            if self._default_factory is not None:
                return self._default_factory()
            return None

    def get_or_create(self, key: Any) -> Any:
        """Lookup that materializes (and returns) the factory default for
        a missing key — the explicitly-mutating twin of :meth:`get`."""
        if key not in self._data and self._default_factory is not None:
            self._data[key] = self._default_factory()
        return self._data.get(key)

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value

    # -- bulk access (columnar kernels) --------------------------------------

    def get_existing(self, key: Any, default: Any = None) -> Any:
        """Raw lookup without the default factory — what a grouped
        reduction wants: distinguish "no accumulator yet" from a
        factory-made empty one without materializing anything."""
        return self._data.get(key, default)

    def put_many(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Bulk insert — one C-level dict update for a whole grouped
        reduction instead of one ``put`` per group."""
        self._data.update(pairs)

    def remove(self, key: Any) -> None:
        self._data.pop(key, None)

    def keys(self) -> list[Any]:
        return list(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> dict[Any, Any]:
        """Deep copy of the full state."""
        return copy.deepcopy(self._data)

    def restore(self, snapshot: dict[Any, Any]) -> None:
        self._data = copy.deepcopy(snapshot)

    def clear(self) -> None:
        self._data.clear()

    # -- key-group snapshots (parallel plans) ---------------------------------

    def snapshot_by_group(self, num_key_groups: int) -> dict[int, dict]:
        """Deep-copied state regrouped by key group — the redistribution
        unit for rescaling."""
        return group_by_key_group(copy.deepcopy(self._data), num_key_groups)

    def restore_groups(self, groups: Iterable[dict[Any, Any]]) -> None:
        """Replace state with the union of key-group blobs (disjoint by
        construction)."""
        self._data = copy.deepcopy(merge_key_groups(groups))
